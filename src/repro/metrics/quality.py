"""Data-quality and repair metrics (§4.6 and row/cell-level evaluation)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RowDetectionMetrics", "row_detection_metrics", "error_rate_reduction"]


@dataclass(frozen=True)
class RowDetectionMetrics:
    """Row-level detection quality against injection ground truth."""

    precision: float
    recall: float
    f1: float
    n_true_dirty: int
    n_flagged: int


def row_detection_metrics(true_dirty_rows: np.ndarray, flagged_rows: np.ndarray, n_rows: int) -> RowDetectionMetrics:
    """Score flagged row indices against ground-truth dirty row indices."""
    truth = np.zeros(n_rows, dtype=bool)
    truth[np.asarray(true_dirty_rows, dtype=int)] = True
    flags = np.zeros(n_rows, dtype=bool)
    flags[np.asarray(flagged_rows, dtype=int)] = True

    tp = int((truth & flags).sum())
    precision = tp / flags.sum() if flags.any() else 0.0
    recall = tp / truth.sum() if truth.any() else 0.0
    f1 = 2 * precision * recall / (precision + recall) if (precision + recall) else 0.0
    return RowDetectionMetrics(
        precision=precision,
        recall=recall,
        f1=f1,
        n_true_dirty=int(truth.sum()),
        n_flagged=int(flags.sum()),
    )


def error_rate_reduction(rate_before: float, rate_after: float) -> float:
    """Relative reduction of the flagged-row rate achieved by repair (§4.6)."""
    if rate_before <= 0:
        return 0.0
    return (rate_before - rate_after) / rate_before
