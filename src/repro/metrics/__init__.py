"""Evaluation metrics."""

from repro.metrics.classification import BinaryMetrics, evaluate_predictions
from repro.metrics.quality import (
    RowDetectionMetrics,
    error_rate_reduction,
    row_detection_metrics,
)

__all__ = [
    "BinaryMetrics",
    "evaluate_predictions",
    "RowDetectionMetrics",
    "error_rate_reduction",
    "row_detection_metrics",
]
