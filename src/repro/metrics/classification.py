"""Batch-classification metrics (accuracy/recall as reported in §4.2-4.3).

The evaluation treats each batch as one binary classification: label 1 =
batch drawn from the dirty dataset, prediction 1 = method said
"problematic". Accuracy and recall over the 50+50 batch protocol are the
paper's headline numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BinaryMetrics", "evaluate_predictions"]


@dataclass(frozen=True)
class BinaryMetrics:
    """Confusion-matrix summary of batch-level predictions."""

    accuracy: float
    recall: float
    precision: float
    f1: float
    true_positives: int
    true_negatives: int
    false_positives: int
    false_negatives: int

    @property
    def n_total(self) -> int:
        return self.true_positives + self.true_negatives + self.false_positives + self.false_negatives


def evaluate_predictions(labels, predictions) -> BinaryMetrics:
    """Compute metrics from parallel boolean sequences.

    ``labels[i]`` — whether batch i truly came from dirty data;
    ``predictions[i]`` — whether the method flagged it.
    """
    labels = np.asarray(labels, dtype=bool)
    predictions = np.asarray(predictions, dtype=bool)
    if labels.shape != predictions.shape:
        raise ValueError(f"labels shape {labels.shape} != predictions shape {predictions.shape}")
    if labels.size == 0:
        raise ValueError("cannot evaluate zero predictions")

    tp = int((labels & predictions).sum())
    tn = int((~labels & ~predictions).sum())
    fp = int((~labels & predictions).sum())
    fn = int((labels & ~predictions).sum())

    accuracy = (tp + tn) / labels.size
    recall = tp / (tp + fn) if (tp + fn) else 0.0
    precision = tp / (tp + fp) if (tp + fp) else 0.0
    f1 = 2 * precision * recall / (precision + recall) if (precision + recall) else 0.0
    return BinaryMetrics(
        accuracy=accuracy,
        recall=recall,
        precision=precision,
        f1=f1,
        true_positives=tp,
        true_negatives=tn,
        false_positives=fp,
        false_negatives=fn,
    )
