"""Chicago Divvy bike-sharing trip simulator (Kaggle Divvy dataset).

Real-world-error dataset (§4.1.1): :meth:`generate_dirty` reproduces the
error mixture of raw trip logs — negative or unit-scrambled durations,
default birth years, station-name typos, and missing rider metadata.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import ColumnKind, ColumnSpec, TableSchema
from repro.data.table import Table
from repro.datasets.base import DatasetGenerator
from repro.errors.base import InjectionReport, select_rows
from repro.errors.qwerty import qwerty_typo
from repro.utils.rng import derive_rng, ensure_rng

__all__ = ["BicycleGenerator"]

_STATIONS = (
    "Clark St & Elm St",
    "Canal St & Adams St",
    "Clinton St & Madison St",
    "Columbus Dr & Randolph St",
    "Daley Center Plaza",
    "Dearborn St & Monroe St",
    "Franklin St & Monroe St",
    "Kingsbury St & Kinzie St",
    "LaSalle St & Jackson Blvd",
    "Michigan Ave & Oak St",
    "Michigan Ave & Washington St",
    "Millennium Park",
    "Shedd Aquarium",
    "Streeter Dr & Grand Ave",
    "Theater on the Lake",
)
_DAYS = ("Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday")


class BicycleGenerator(DatasetGenerator):
    """Synthesizes Divvy trips with duration/distance/rider structure."""

    name = "bicycle"
    default_rows = 10000

    def schema(self) -> TableSchema:
        return TableSchema(
            [
                ColumnSpec("trip_duration", ColumnKind.NUMERIC, "trip duration in seconds"),
                ColumnSpec("distance_km", ColumnKind.NUMERIC, "trip distance in kilometers"),
                ColumnSpec("from_station", ColumnKind.CATEGORICAL, "origin station", categories=_STATIONS),
                ColumnSpec("to_station", ColumnKind.CATEGORICAL, "destination station", categories=_STATIONS),
                ColumnSpec("usertype", ColumnKind.CATEGORICAL, "rider type", categories=("Subscriber", "Customer")),
                ColumnSpec("gender", ColumnKind.CATEGORICAL, "rider gender", categories=("Male", "Female")),
                ColumnSpec("birth_year", ColumnKind.NUMERIC, "rider birth year"),
                ColumnSpec("start_hour", ColumnKind.NUMERIC, "trip start hour (0-23)"),
                ColumnSpec("day_of_week", ColumnKind.CATEGORICAL, "day of the week", categories=_DAYS),
                ColumnSpec("temperature_c", ColumnKind.NUMERIC, "air temperature in Celsius"),
            ]
        )

    def knowledge_edges(self) -> list[tuple[str, str]]:
        return [
            ("trip_duration", "distance_km"),
            ("trip_duration", "usertype"),
            ("usertype", "start_hour"),
            ("usertype", "day_of_week"),
            ("birth_year", "usertype"),
            ("start_hour", "day_of_week"),
            ("temperature_c", "trip_duration"),
            ("from_station", "to_station"),
        ]

    def generate_clean(self, n_rows: int, rng: int | np.random.Generator | None = None) -> Table:
        gen = ensure_rng(rng)
        usertype = gen.choice(["Subscriber", "Customer"], size=n_rows, p=[0.77, 0.23]).astype(object)
        subscriber = usertype == "Subscriber"

        day = gen.choice(_DAYS, size=n_rows).astype(object)
        weekend = np.isin(day, ["Saturday", "Sunday"])

        # Subscribers commute: rush-hour weekday peaks. Customers ride midday.
        rush = gen.choice([8.0, 17.0], size=n_rows) + gen.normal(0.0, 1.2, n_rows)
        midday = gen.normal(13.5, 3.0, n_rows)
        start_hour = np.clip(np.round(np.where(subscriber & ~weekend, rush, midday)), 0, 23)

        distance = np.clip(gen.gamma(2.2, 1.1, n_rows), 0.3, 25.0)
        distance[~subscriber] *= 1.3  # leisure rides roam farther
        speed_kmh = np.where(subscriber, gen.normal(15.5, 1.8, n_rows), gen.normal(11.0, 1.8, n_rows))
        speed_kmh = np.clip(speed_kmh, 6.0, 25.0)
        duration = np.round(distance / speed_kmh * 3600.0 + gen.normal(40.0, 25.0, n_rows))
        duration = np.clip(duration, 90, 4 * 3600)

        birth_year = np.round(np.where(subscriber, gen.normal(1985, 9, n_rows), gen.normal(1992, 8, n_rows)))
        birth_year = np.clip(birth_year, 1945, 2004)

        gender = gen.choice(["Male", "Female"], size=n_rows, p=[0.72, 0.28]).astype(object)

        temperature = np.round(gen.normal(14.0, 9.0, n_rows), 1)
        # Warm days, slightly longer rides.
        duration = np.round(duration * (1.0 + np.clip(temperature - 14.0, -10, 15) * 0.004))

        from_station = gen.choice(_STATIONS, size=n_rows).astype(object)
        offsets = gen.integers(1, len(_STATIONS), n_rows)
        to_station = np.array(
            [_STATIONS[(int(_STATIONS.index(s)) + int(o)) % len(_STATIONS)] for s, o in zip(from_station, offsets)],
            dtype=object,
        )

        return Table(
            self.schema(),
            {
                "trip_duration": duration,
                "distance_km": np.round(distance, 2),
                "from_station": from_station,
                "to_station": to_station,
                "usertype": usertype,
                "gender": gender,
                "birth_year": birth_year,
                "start_hour": start_hour,
                "day_of_week": day,
                "temperature_c": temperature,
            },
        )

    def generate_dirty(
        self, clean: Table, rng: int | np.random.Generator | None = None
    ) -> tuple[Table, InjectionReport]:
        """Raw trip-log error mixture (~20% of rows affected, as the paper's
        Bicycle dirty data carries a high error rate)."""
        gen = ensure_rng(rng)
        dirty = clean.copy()
        report = InjectionReport.empty(clean, "bicycle real-world errors")
        schema = clean.schema
        n = clean.n_rows

        def mark(rows: np.ndarray, column: str) -> None:
            report.cell_mask[rows, schema.index_of(column)] = True

        # 1. Duration glitches: negative clock skew or milliseconds-as-seconds.
        duration = dirty.column("trip_duration").copy()
        rows = select_rows(n, 0.06, derive_rng(gen, "duration"))
        halves = np.array_split(rows, 2)
        duration[halves[0]] = -np.abs(duration[halves[0]])
        duration[halves[1]] *= 1000.0
        dirty = dirty.with_column("trip_duration", duration)
        mark(rows, "trip_duration")

        # 2. Default birth years (1900 placeholder for unknown riders).
        birth = dirty.column("birth_year").copy()
        rows = select_rows(n, 0.05, derive_rng(gen, "birth"))
        birth[rows] = 1900.0
        dirty = dirty.with_column("birth_year", birth)
        mark(rows, "birth_year")

        # 3. Station-name typos from manual re-entry.
        stations = dirty.column("from_station").copy()
        typo_rng = derive_rng(gen, "typos")
        rows = select_rows(n, 0.05, typo_rng)
        for row in rows:
            stations[row] = qwerty_typo(stations[row], typo_rng)
        dirty = dirty.with_column("from_station", stations)
        mark(rows, "from_station")

        # 4. Missing gender (Customers often skip profile fields).
        gender = dirty.column("gender").copy()
        rows = select_rows(n, 0.06, derive_rng(gen, "gender"))
        for row in rows:
            gender[row] = None
        dirty = dirty.with_column("gender", gender)
        mark(rows, "gender")

        # 5. Unit mix-up: distance recorded in miles for some trips
        #    (a subtle joint inconsistency with duration).
        distance = dirty.column("distance_km").copy()
        rows = select_rows(n, 0.04, derive_rng(gen, "distance"))
        distance[rows] *= 5.0
        dirty = dirty.with_column("distance_km", distance)
        mark(rows, "distance_km")

        return dirty, report
