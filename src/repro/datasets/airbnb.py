"""Airbnb NYC listings simulator (Kaggle AB_NYC, cleaned variant).

Real-world-error dataset (§4.1.1): :meth:`generate_dirty` produces the
organic error mixture of scraped listing data — zero/100× prices,
absurd minimum-night values, coordinates outside the city, borough-name
typos, and missing review rates.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import ColumnKind, ColumnSpec, TableSchema
from repro.data.table import Table
from repro.datasets.base import DatasetGenerator
from repro.errors.base import InjectionReport, select_rows
from repro.errors.qwerty import qwerty_typo
from repro.utils.rng import derive_rng, ensure_rng

__all__ = ["AirbnbGenerator"]

_BOROUGHS = ("Manhattan", "Brooklyn", "Queens", "Bronx", "Staten Island")
_BOROUGH_CENTER = {
    "Manhattan": (40.776, -73.971),
    "Brooklyn": (40.650, -73.950),
    "Queens": (40.742, -73.769),
    "Bronx": (40.837, -73.865),
    "Staten Island": (40.579, -74.151),
}
_BOROUGH_PRICE = {
    "Manhattan": 190.0,
    "Brooklyn": 120.0,
    "Queens": 95.0,
    "Bronx": 80.0,
    "Staten Island": 75.0,
}
_ROOM_TYPES = ("Entire home/apt", "Private room", "Shared room")
_ROOM_FACTOR = {"Entire home/apt": 1.35, "Private room": 0.70, "Shared room": 0.45}


class AirbnbGenerator(DatasetGenerator):
    """Synthesizes NYC listings with borough/room-type price structure."""

    name = "airbnb"
    default_rows = 10000

    def schema(self) -> TableSchema:
        return TableSchema(
            [
                ColumnSpec("neighbourhood_group", ColumnKind.CATEGORICAL, "NYC borough", categories=_BOROUGHS),
                ColumnSpec("room_type", ColumnKind.CATEGORICAL, "type of room offered", categories=_ROOM_TYPES),
                ColumnSpec("latitude", ColumnKind.NUMERIC, "listing latitude"),
                ColumnSpec("longitude", ColumnKind.NUMERIC, "listing longitude"),
                ColumnSpec("price", ColumnKind.NUMERIC, "nightly price in USD"),
                ColumnSpec("minimum_nights", ColumnKind.NUMERIC, "minimum nights per stay"),
                ColumnSpec("number_of_reviews", ColumnKind.NUMERIC, "total review count"),
                ColumnSpec("reviews_per_month", ColumnKind.NUMERIC, "monthly review rate"),
                ColumnSpec("availability_365", ColumnKind.NUMERIC, "days available per year"),
                ColumnSpec("calculated_host_listings_count", ColumnKind.NUMERIC, "listings by the same host"),
            ]
        )

    def knowledge_edges(self) -> list[tuple[str, str]]:
        return [
            ("neighbourhood_group", "latitude"),
            ("neighbourhood_group", "longitude"),
            ("neighbourhood_group", "price"),
            ("room_type", "price"),
            ("number_of_reviews", "reviews_per_month"),
            ("latitude", "longitude"),
            ("price", "availability_365"),
            ("minimum_nights", "reviews_per_month"),
        ]

    def generate_clean(self, n_rows: int, rng: int | np.random.Generator | None = None) -> Table:
        gen = ensure_rng(rng)
        borough = gen.choice(_BOROUGHS, size=n_rows, p=[0.38, 0.37, 0.15, 0.06, 0.04]).astype(object)
        room = gen.choice(_ROOM_TYPES, size=n_rows, p=[0.52, 0.44, 0.04]).astype(object)

        centers = np.array([_BOROUGH_CENTER[b] for b in borough])
        latitude = centers[:, 0] + gen.normal(0.0, 0.025, n_rows)
        longitude = centers[:, 1] + gen.normal(0.0, 0.03, n_rows)

        base = np.array([_BOROUGH_PRICE[b] for b in borough])
        factor = np.array([_ROOM_FACTOR[r] for r in room])
        price = np.round(base * factor * np.exp(gen.normal(0.0, 0.35, n_rows)), 0)
        price = np.clip(price, 10, 1500)

        minimum_nights = np.clip(np.round(gen.gamma(1.2, 3.0, n_rows)) + 1, 1, 60)
        reviews = np.round(gen.gamma(1.0, 40.0, n_rows))
        months_listed = gen.uniform(3.0, 60.0, n_rows)
        reviews_per_month = np.round(reviews / months_listed, 2)
        # Long-minimum-stay listings turn over less often.
        reviews_per_month *= np.where(minimum_nights > 14, 0.4, 1.0)
        availability = np.clip(
            np.round(gen.beta(1.2, 1.8, n_rows) * 365 + 40 * (price > 250)), 0, 365
        )
        host_listings = np.clip(np.round(gen.gamma(0.8, 2.5, n_rows)) + 1, 1, 50)

        return Table(
            self.schema(),
            {
                "neighbourhood_group": borough,
                "room_type": room,
                "latitude": np.round(latitude, 5),
                "longitude": np.round(longitude, 5),
                "price": price,
                "minimum_nights": minimum_nights,
                "number_of_reviews": reviews,
                "reviews_per_month": reviews_per_month,
                "availability_365": availability,
                "calculated_host_listings_count": host_listings,
            },
        )

    def generate_dirty(
        self, clean: Table, rng: int | np.random.Generator | None = None
    ) -> tuple[Table, InjectionReport]:
        """Organic scraped-data error mixture (~10% of rows affected)."""
        gen = ensure_rng(rng)
        dirty = clean.copy()
        report = InjectionReport.empty(clean, "airbnb real-world errors")
        schema = clean.schema
        n = clean.n_rows

        def mark(rows: np.ndarray, column: str) -> None:
            report.cell_mask[rows, schema.index_of(column)] = True

        # 1. Price glitches: zero (listing error) or ×100 (currency/cents bug).
        price = dirty.column("price").copy()
        rows = select_rows(n, 0.025, derive_rng(gen, "price"))
        halves = np.array_split(rows, 2)
        price[halves[0]] = 0.0
        price[halves[1]] *= 100.0
        dirty = dirty.with_column("price", price)
        mark(rows, "price")

        # 2. Absurd minimum nights (misused field: "1000" to park a listing).
        nights = dirty.column("minimum_nights").copy()
        rows = select_rows(n, 0.02, derive_rng(gen, "nights"))
        nights[rows] = gen.choice([365.0, 999.0, 1250.0], size=rows.size)
        dirty = dirty.with_column("minimum_nights", nights)
        mark(rows, "minimum_nights")

        # 3. Coordinates outside NYC (geocoder failures land at (0, 0) or swap).
        lat = dirty.column("latitude").copy()
        lon = dirty.column("longitude").copy()
        rows = select_rows(n, 0.02, derive_rng(gen, "coords"))
        halves = np.array_split(rows, 2)
        lat[halves[0]], lon[halves[0]] = 0.0, 0.0
        lat[halves[1]], lon[halves[1]] = lon[halves[1]].copy(), lat[halves[1]].copy()
        dirty = dirty.with_column("latitude", lat).with_column("longitude", lon)
        mark(rows, "latitude")
        mark(rows, "longitude")

        # 4. Borough-name typos (free-text ingestion).
        borough = dirty.column("neighbourhood_group").copy()
        typo_rng = derive_rng(gen, "typos")
        rows = select_rows(n, 0.025, typo_rng)
        for row in rows:
            borough[row] = qwerty_typo(borough[row], typo_rng)
        dirty = dirty.with_column("neighbourhood_group", borough)
        mark(rows, "neighbourhood_group")

        # 5. Missing review rates (new listings exported as blanks).
        rpm = dirty.column("reviews_per_month").copy()
        rows = select_rows(n, 0.03, derive_rng(gen, "rpm"))
        rpm[rows] = np.nan
        dirty = dirty.with_column("reviews_per_month", rpm)
        mark(rows, "reviews_per_month")

        return dirty, report
