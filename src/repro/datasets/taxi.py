"""New York Yellow Taxi trip simulator (NYC Open Data, 2015).

Clean-source dataset (§4.1.1), and the substrate of the Figure 4
scalability study: the generator is fully vectorized (≈10⁶ rows/second)
and the schema carries 18 columns so the 5/10/18-dimension sweeps can
``select`` prefixes of it.

Fare structure follows the real tariff: ``fare ≈ 2.5 + 2.5·miles +
0.5·minutes`` plus fixed surcharges, with card payments tipping ~15-25%
and cash tips unrecorded (as in the source data).
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import ColumnKind, ColumnSpec, TableSchema
from repro.data.table import Table
from repro.datasets.base import DatasetGenerator
from repro.utils.rng import ensure_rng

__all__ = ["TaxiGenerator"]

_PAYMENTS = ("Card", "Cash")
_RATE_CODES = ("Standard", "JFK", "Newark", "Negotiated")


class TaxiGenerator(DatasetGenerator):
    """Synthesizes taxi trips with tariff arithmetic baked in."""

    name = "taxi"
    default_rows = 20000

    def schema(self) -> TableSchema:
        return TableSchema(
            [
                ColumnSpec("trip_distance", ColumnKind.NUMERIC, "trip distance in miles"),
                ColumnSpec("trip_duration_min", ColumnKind.NUMERIC, "trip duration in minutes"),
                ColumnSpec("fare_amount", ColumnKind.NUMERIC, "metered fare in USD"),
                ColumnSpec("tip_amount", ColumnKind.NUMERIC, "tip in USD"),
                ColumnSpec("total_amount", ColumnKind.NUMERIC, "total charged in USD"),
                ColumnSpec("passenger_count", ColumnKind.NUMERIC, "number of passengers"),
                ColumnSpec("pickup_hour", ColumnKind.NUMERIC, "pickup hour of day"),
                ColumnSpec("payment_type", ColumnKind.CATEGORICAL, "payment method", categories=_PAYMENTS),
                ColumnSpec("pickup_latitude", ColumnKind.NUMERIC, "pickup latitude"),
                ColumnSpec("pickup_longitude", ColumnKind.NUMERIC, "pickup longitude"),
                ColumnSpec("dropoff_latitude", ColumnKind.NUMERIC, "dropoff latitude"),
                ColumnSpec("dropoff_longitude", ColumnKind.NUMERIC, "dropoff longitude"),
                ColumnSpec("avg_speed_mph", ColumnKind.NUMERIC, "average trip speed"),
                ColumnSpec("tolls_amount", ColumnKind.NUMERIC, "tolls in USD"),
                ColumnSpec("extra", ColumnKind.NUMERIC, "rush-hour/overnight extra"),
                ColumnSpec("mta_tax", ColumnKind.NUMERIC, "MTA tax"),
                ColumnSpec("improvement_surcharge", ColumnKind.NUMERIC, "improvement surcharge"),
                ColumnSpec("rate_code", ColumnKind.CATEGORICAL, "tariff rate code", categories=_RATE_CODES),
            ]
        )

    def knowledge_edges(self) -> list[tuple[str, str]]:
        return [
            ("trip_distance", "trip_duration_min"),
            ("trip_distance", "fare_amount"),
            ("trip_duration_min", "fare_amount"),
            ("fare_amount", "total_amount"),
            ("tip_amount", "total_amount"),
            ("tip_amount", "payment_type"),
            ("tolls_amount", "total_amount"),
            ("trip_distance", "avg_speed_mph"),
            ("trip_duration_min", "avg_speed_mph"),
            ("pickup_hour", "extra"),
            ("pickup_latitude", "dropoff_latitude"),
            ("pickup_longitude", "dropoff_longitude"),
            ("rate_code", "fare_amount"),
            ("rate_code", "tolls_amount"),
        ]

    def generate_clean(self, n_rows: int, rng: int | np.random.Generator | None = None) -> Table:
        gen = ensure_rng(rng)

        rate_code = gen.choice(_RATE_CODES, size=n_rows, p=[0.90, 0.06, 0.02, 0.02]).astype(object)
        airport = np.isin(rate_code, ["JFK", "Newark"])

        distance = np.clip(gen.gamma(1.6, 1.8, n_rows), 0.3, 35.0)
        distance[airport] = np.clip(gen.normal(17.0, 3.0, int(airport.sum())), 10.0, 30.0)

        pickup_hour = np.clip(np.round(np.abs(gen.normal(14.0, 5.5, n_rows))) % 24, 0, 23)
        rush = ((pickup_hour >= 7) & (pickup_hour <= 9)) | ((pickup_hour >= 16) & (pickup_hour <= 19))

        speed = np.clip(gen.normal(13.0, 3.0, n_rows) - 3.0 * rush, 4.0, 45.0)
        duration = np.round(distance / speed * 60.0 + gen.normal(2.0, 1.0, n_rows), 1)
        duration = np.clip(duration, 1.0, 240.0)

        fare = 2.5 + 2.5 * distance + 0.5 * duration * 0.5 + gen.normal(0.0, 0.8, n_rows)
        fare[rate_code == "JFK"] = 52.0 + gen.normal(0.0, 1.0, int((rate_code == "JFK").sum()))
        fare = np.round(np.clip(fare, 2.5, 250.0), 2)

        payment = gen.choice(_PAYMENTS, size=n_rows, p=[0.65, 0.35]).astype(object)
        card = payment == "Card"
        tip = np.where(card, fare * gen.uniform(0.12, 0.28, n_rows), 0.0)
        tip = np.round(tip, 2)

        tolls = np.where(airport | (gen.random(n_rows) < 0.04), np.round(gen.uniform(5.0, 7.0, n_rows), 2), 0.0)
        extra = np.where(rush, 1.0, np.where((pickup_hour >= 20) | (pickup_hour < 6), 0.5, 0.0))
        mta_tax = np.full(n_rows, 0.5)
        surcharge = np.full(n_rows, 0.3)
        total = np.round(fare + tip + tolls + extra + mta_tax + surcharge, 2)

        pickup_lat = 40.75 + gen.normal(0.0, 0.035, n_rows)
        pickup_lon = -73.97 + gen.normal(0.0, 0.035, n_rows)
        # Dropoff displaced consistently with trip distance (~69 miles/degree).
        bearing = gen.uniform(0.0, 2 * np.pi, n_rows)
        displacement = distance / 69.0
        dropoff_lat = pickup_lat + displacement * np.cos(bearing) * gen.uniform(0.7, 1.0, n_rows)
        dropoff_lon = pickup_lon + displacement * np.sin(bearing) * gen.uniform(0.7, 1.0, n_rows)

        passengers = np.clip(gen.integers(1, 7, n_rows), 1, 6).astype(float)
        actual_speed = np.round(distance / np.maximum(duration / 60.0, 1e-6), 1)

        return Table(
            self.schema(),
            {
                "trip_distance": np.round(distance, 2),
                "trip_duration_min": duration,
                "fare_amount": fare,
                "tip_amount": tip,
                "total_amount": total,
                "passenger_count": passengers,
                "pickup_hour": pickup_hour,
                "payment_type": payment,
                "pickup_latitude": np.round(pickup_lat, 5),
                "pickup_longitude": np.round(pickup_lon, 5),
                "dropoff_latitude": np.round(dropoff_lat, 5),
                "dropoff_longitude": np.round(dropoff_lon, 5),
                "avg_speed_mph": actual_speed,
                "tolls_amount": tolls,
                "extra": extra,
                "mta_tax": mta_tax,
                "improvement_surcharge": surcharge,
                "rate_code": rate_code,
            },
        )

    @staticmethod
    def dimension_subsets() -> dict[int, list[str]]:
        """Column subsets used by the Figure 4 dimensionality sweep."""
        return {
            5: [
                "trip_distance", "trip_duration_min", "fare_amount", "tip_amount", "total_amount",
            ],
            10: [
                "trip_distance", "trip_duration_min", "fare_amount", "tip_amount", "total_amount",
                "passenger_count", "pickup_hour", "payment_type", "avg_speed_mph", "tolls_amount",
            ],
            18: [
                "trip_distance", "trip_duration_min", "fare_amount", "tip_amount", "total_amount",
                "passenger_count", "pickup_hour", "payment_type", "pickup_latitude", "pickup_longitude",
                "dropoff_latitude", "dropoff_longitude", "avg_speed_mph", "tolls_amount", "extra",
                "mta_tax", "improvement_surcharge", "rate_code",
            ],
        }
