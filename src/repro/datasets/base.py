"""Dataset simulator framework.

Each generator synthesizes one of the paper's six public datasets
(DESIGN.md §1 — the offline substitute for Kaggle/NYC-OpenData CSVs):
same schema, realistic marginal distributions, and — crucially — the
inter-feature dependencies that DQuaG is supposed to learn.

Two families mirror §4.1.1:

* *real-world-error* datasets (Airbnb, Bicycle, Play Store) implement
  :meth:`DatasetGenerator.generate_dirty`, producing an organic error
  mixture with ground truth;
* *clean-source* datasets (Taxi, Hotel, Credit) produce only clean data;
  experiments inject the §4.1.2 synthetic errors themselves.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.data.table import Table
from repro.errors.base import InjectionReport
from repro.utils.rng import ensure_rng

__all__ = ["DatasetBundle", "DatasetGenerator"]


@dataclass
class DatasetBundle:
    """A generated dataset: clean table, optional dirty twin, ground truth."""

    name: str
    clean: Table
    dirty: Table | None = None
    dirty_report: InjectionReport | None = None
    knowledge_edges: list[tuple[str, str]] = field(default_factory=list)

    @property
    def has_dirty(self) -> bool:
        return self.dirty is not None


class DatasetGenerator(abc.ABC):
    """Base class for the six dataset simulators."""

    #: registry key, e.g. ``"airbnb"``
    name: str = ""
    #: rows generated when the caller does not override
    default_rows: int = 8000

    @abc.abstractmethod
    def schema(self):
        """The dataset's :class:`~repro.data.schema.TableSchema`."""

    @abc.abstractmethod
    def generate_clean(self, n_rows: int, rng: int | np.random.Generator | None = None) -> Table:
        """Synthesize a clean table of ``n_rows``."""

    def knowledge_edges(self) -> list[tuple[str, str]]:
        """Semantic feature relationships an expert/LLM would state.

        Used to seed :class:`~repro.graph.llm.KnowledgeBaseProvider`;
        default is empty (statistics-only graph construction).
        """
        return []

    def generate_dirty(
        self, clean: Table, rng: int | np.random.Generator | None = None
    ) -> tuple[Table, InjectionReport]:
        """Real-world error mixture over ``clean`` (where supported)."""
        raise NotImplementedError(f"{self.name} has no real-world dirty variant")

    @property
    def has_real_world_errors(self) -> bool:
        return type(self).generate_dirty is not DatasetGenerator.generate_dirty

    # -- convenience -----------------------------------------------------
    def load(self, n_rows: int | None = None, seed: int = 0, with_dirty: bool = False) -> DatasetBundle:
        """Generate a full bundle with derived, independent RNG streams."""
        n_rows = n_rows or self.default_rows
        generator = ensure_rng(seed)
        from repro.utils.rng import derive_rng  # local import avoids cycle at module load

        clean = self.generate_clean(n_rows, derive_rng(generator, self.name, "clean"))
        dirty = None
        report = None
        if with_dirty:
            if not self.has_real_world_errors:
                raise NotImplementedError(
                    f"{self.name} ships clean data only; inject synthetic errors instead (§4.1.2)"
                )
            dirty, report = self.generate_dirty(clean, derive_rng(generator, self.name, "dirty"))
        return DatasetBundle(
            name=self.name,
            clean=clean,
            dirty=dirty,
            dirty_report=report,
            knowledge_edges=self.knowledge_edges(),
        )
