"""Hotel Booking Demand simulator (Antonio, de Almeida & Nunes, 2019).

Clean-source dataset (§4.1.1): experiments inject synthetic errors.
The generator encodes the dependencies the paper's hidden-error scenario
relies on — in clean data, babies never travel without adults, Group
bookings carry at least two adults, and the average daily rate (adr)
follows hotel type, party size, and season.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import ColumnKind, ColumnSpec, TableSchema
from repro.data.table import Table
from repro.datasets.base import DatasetGenerator
from repro.utils.rng import ensure_rng

__all__ = ["HotelBookingGenerator"]

_MONTHS = (
    "January", "February", "March", "April", "May", "June",
    "July", "August", "September", "October", "November", "December",
)
_SEASON_FACTOR = {
    "January": 0.8, "February": 0.85, "March": 0.9, "April": 1.0,
    "May": 1.05, "June": 1.15, "July": 1.3, "August": 1.35,
    "September": 1.1, "October": 1.0, "November": 0.85, "December": 1.05,
}
_CUSTOMER_TYPES = ("Transient", "Transient-Party", "Contract", "Group")
_MEALS = ("BB", "HB", "FB", "SC")


class HotelBookingGenerator(DatasetGenerator):
    """Synthesizes hotel bookings with guest/price/season dependencies."""

    name = "hotel"
    default_rows = 8000

    def schema(self) -> TableSchema:
        return TableSchema(
            [
                ColumnSpec("hotel", ColumnKind.CATEGORICAL, "hotel type", categories=("City Hotel", "Resort Hotel")),
                ColumnSpec("lead_time", ColumnKind.NUMERIC, "days between booking and arrival"),
                ColumnSpec("arrival_month", ColumnKind.CATEGORICAL, "month of arrival", categories=_MONTHS),
                ColumnSpec("stays_weekend_nights", ColumnKind.NUMERIC, "weekend nights booked"),
                ColumnSpec("stays_week_nights", ColumnKind.NUMERIC, "week nights booked"),
                ColumnSpec("adults", ColumnKind.NUMERIC, "number of adults"),
                ColumnSpec("children", ColumnKind.NUMERIC, "number of children"),
                ColumnSpec("babies", ColumnKind.NUMERIC, "number of babies"),
                ColumnSpec("meal", ColumnKind.CATEGORICAL, "meal package", categories=_MEALS),
                ColumnSpec("customer_type", ColumnKind.CATEGORICAL, "booking customer type", categories=_CUSTOMER_TYPES),
                ColumnSpec("adr", ColumnKind.NUMERIC, "average daily rate in EUR"),
                ColumnSpec("total_of_special_requests", ColumnKind.NUMERIC, "count of special requests"),
            ]
        )

    def knowledge_edges(self) -> list[tuple[str, str]]:
        return [
            ("adults", "babies"),
            ("adults", "children"),
            ("adults", "customer_type"),
            ("babies", "customer_type"),
            ("adr", "hotel"),
            ("adr", "arrival_month"),
            ("adr", "adults"),
            ("adr", "children"),
            ("lead_time", "customer_type"),
            ("lead_time", "arrival_month"),
            ("stays_weekend_nights", "stays_week_nights"),
            ("meal", "hotel"),
            ("total_of_special_requests", "children"),
        ]

    def generate_clean(self, n_rows: int, rng: int | np.random.Generator | None = None) -> Table:
        gen = ensure_rng(rng)
        hotel = np.where(gen.random(n_rows) < 0.6, "City Hotel", "Resort Hotel").astype(object)

        customer_type = gen.choice(_CUSTOMER_TYPES, size=n_rows, p=[0.72, 0.18, 0.06, 0.04]).astype(object)

        # Group bookings: larger parties; Contract: long planned stays.
        adults = np.clip(np.round(gen.normal(2.0, 0.7, n_rows)), 1, 4)
        group_mask = customer_type == "Group"
        adults[group_mask] = np.clip(np.round(gen.normal(3.0, 0.8, int(group_mask.sum()))), 2, 4)

        children = np.where(gen.random(n_rows) < 0.25, gen.integers(1, 3, n_rows), 0).astype(float)
        # Babies only ever accompany adults (the invariant the hidden error breaks).
        babies = np.where(gen.random(n_rows) < 0.08, gen.integers(1, 3, n_rows), 0).astype(float)

        # A small legitimate adults=0 segment (school/junior bookings booked
        # under a Contract): keeps 0 inside the clean *marginal* range of
        # ``adults`` so the Group/babies conflict stays invisible to
        # column-local range rules — only the combination is impossible.
        junior = (gen.random(n_rows) < 0.03) & ~group_mask
        adults[junior] = 0.0
        children[junior] = np.maximum(children[junior], 1.0)
        babies[junior] = 0.0
        customer_type[junior] = "Contract"

        month = gen.choice(_MONTHS, size=n_rows).astype(object)
        season = np.array([_SEASON_FACTOR[m] for m in month])

        lead_time = np.round(gen.gamma(2.0, 40.0, n_rows))
        lead_time[customer_type == "Contract"] += np.round(gen.gamma(2.0, 30.0, int((customer_type == "Contract").sum())))
        lead_time[month == "August"] *= 1.2
        lead_time = np.clip(np.round(lead_time), 0, 600)

        weekend = np.clip(np.round(gen.gamma(1.2, 1.0, n_rows)), 0, 6)
        week = np.clip(np.round(weekend * gen.uniform(1.0, 3.0, n_rows) + gen.poisson(1.0, n_rows)), 0, 15)

        base_rate = np.where(hotel == "City Hotel", 95.0, 120.0)
        party = adults + 0.6 * children
        adr = base_rate * season * (0.75 + 0.22 * party) * np.exp(gen.normal(0.0, 0.08, n_rows))
        adr = np.round(adr, 2)

        resort_mask = hotel == "Resort Hotel"
        meal_city = gen.choice(_MEALS, size=n_rows, p=[0.62, 0.22, 0.04, 0.12])
        meal_resort = gen.choice(_MEALS, size=n_rows, p=[0.40, 0.38, 0.14, 0.08])
        meal = np.where(resort_mask, meal_resort, meal_city).astype(object)

        requests = np.clip(
            np.round(gen.poisson(0.5, n_rows) + 0.8 * (children > 0) + 0.9 * (babies > 0) + gen.random(n_rows) * 0.5),
            0,
            5,
        )

        return Table(
            self.schema(),
            {
                "hotel": hotel,
                "lead_time": lead_time,
                "arrival_month": month,
                "stays_weekend_nights": weekend,
                "stays_week_nights": week,
                "adults": adults,
                "children": children,
                "babies": babies,
                "meal": meal,
                "customer_type": customer_type,
                "adr": adr,
                "total_of_special_requests": requests,
            },
        )
