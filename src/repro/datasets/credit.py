"""Credit Card approval application simulator (Kaggle application_record).

Clean-source dataset (§4.1.1). The generator plants the joint structure
both hidden-conflict scenarios depend on:

* employment always starts after age 16 (``|DAYS_EMPLOYED| < |DAYS_BIRTH| - 16y``);
* income rises with education tier and occupation tier;
* pensioners are old and do not report employment spans longer than
  their working life.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import ColumnKind, ColumnSpec, TableSchema
from repro.data.table import Table
from repro.datasets.base import DatasetGenerator
from repro.utils.rng import ensure_rng

__all__ = ["CreditCardGenerator"]

_EDUCATION = (
    "Lower secondary",
    "Secondary / secondary special",
    "Incomplete higher",
    "Higher education",
    "Academic degree",
)
_EDUCATION_TIER = {name: tier for tier, name in enumerate(_EDUCATION)}
_OCCUPATIONS = (
    "Laborers",
    "Sales staff",
    "Drivers",
    "Core staff",
    "Security staff",
    "Cooking staff",
    "Medicine staff",
    "Accountants",
    "High skill tech staff",
    "IT staff",
    "Managers",
)
# occupation tier 0 (manual) .. 2 (advanced); used for income structure
_OCCUPATION_TIER = {
    "Laborers": 0, "Sales staff": 0, "Drivers": 0, "Security staff": 0, "Cooking staff": 0,
    "Core staff": 1, "Medicine staff": 1, "Accountants": 1,
    "High skill tech staff": 2, "IT staff": 2, "Managers": 2,
}
_INCOME_TYPES = ("Working", "Commercial associate", "State servant", "Pensioner", "Student")
_FAMILY = ("Married", "Single / not married", "Civil marriage", "Separated", "Widow")
_HOUSING = ("House / apartment", "With parents", "Municipal apartment", "Rented apartment", "Office apartment")

_YEAR = 365.25


class CreditCardGenerator(DatasetGenerator):
    """Synthesizes credit-card applications with income/education/age structure."""

    name = "credit"
    default_rows = 8000

    def schema(self) -> TableSchema:
        return TableSchema(
            [
                ColumnSpec("CODE_GENDER", ColumnKind.CATEGORICAL, "applicant gender", categories=("M", "F")),
                ColumnSpec("FLAG_OWN_CAR", ColumnKind.CATEGORICAL, "owns a car", categories=("Y", "N")),
                ColumnSpec("FLAG_OWN_REALTY", ColumnKind.CATEGORICAL, "owns real estate", categories=("Y", "N")),
                ColumnSpec("CNT_CHILDREN", ColumnKind.NUMERIC, "number of children"),
                ColumnSpec("AMT_INCOME_TOTAL", ColumnKind.NUMERIC, "annual income"),
                ColumnSpec("NAME_INCOME_TYPE", ColumnKind.CATEGORICAL, "income source", categories=_INCOME_TYPES),
                ColumnSpec("NAME_EDUCATION_TYPE", ColumnKind.CATEGORICAL, "education level", categories=_EDUCATION),
                ColumnSpec("NAME_FAMILY_STATUS", ColumnKind.CATEGORICAL, "family status", categories=_FAMILY),
                ColumnSpec("NAME_HOUSING_TYPE", ColumnKind.CATEGORICAL, "housing situation", categories=_HOUSING),
                ColumnSpec("DAYS_BIRTH", ColumnKind.NUMERIC, "days since birth (negative)"),
                ColumnSpec("DAYS_EMPLOYED", ColumnKind.NUMERIC, "days since employment start (negative)"),
                ColumnSpec("OCCUPATION_TYPE", ColumnKind.CATEGORICAL, "occupation", categories=_OCCUPATIONS),
                ColumnSpec("CNT_FAM_MEMBERS", ColumnKind.NUMERIC, "family member count"),
            ]
        )

    def knowledge_edges(self) -> list[tuple[str, str]]:
        return [
            ("DAYS_BIRTH", "DAYS_EMPLOYED"),
            ("DAYS_BIRTH", "NAME_INCOME_TYPE"),
            ("AMT_INCOME_TOTAL", "NAME_EDUCATION_TYPE"),
            ("AMT_INCOME_TOTAL", "OCCUPATION_TYPE"),
            ("AMT_INCOME_TOTAL", "NAME_INCOME_TYPE"),
            ("NAME_EDUCATION_TYPE", "OCCUPATION_TYPE"),
            ("CNT_CHILDREN", "CNT_FAM_MEMBERS"),
            ("CNT_CHILDREN", "NAME_FAMILY_STATUS"),
            ("NAME_FAMILY_STATUS", "CNT_FAM_MEMBERS"),
            ("DAYS_EMPLOYED", "NAME_INCOME_TYPE"),
            ("FLAG_OWN_REALTY", "NAME_HOUSING_TYPE"),
            ("FLAG_OWN_CAR", "AMT_INCOME_TOTAL"),
        ]

    def generate_clean(self, n_rows: int, rng: int | np.random.Generator | None = None) -> Table:
        gen = ensure_rng(rng)

        gender = gen.choice(["M", "F"], size=n_rows, p=[0.45, 0.55]).astype(object)
        age_years = gen.uniform(21.0, 68.0, n_rows)

        income_type = gen.choice(_INCOME_TYPES, size=n_rows, p=[0.52, 0.22, 0.08, 0.15, 0.03]).astype(object)
        # Pensioners are old; students are young.
        pensioner = income_type == "Pensioner"
        age_years[pensioner] = gen.uniform(58.0, 68.0, int(pensioner.sum()))
        student = income_type == "Student"
        age_years[student] = gen.uniform(21.0, 27.0, int(student.sum()))

        education = gen.choice(_EDUCATION, size=n_rows, p=[0.06, 0.50, 0.12, 0.28, 0.04]).astype(object)
        education_tier = np.array([_EDUCATION_TIER[e] for e in education], dtype=float)

        occupation = np.empty(n_rows, dtype=object)
        for i in range(n_rows):
            tier_weights = {
                0: [0.55, 0.35, 0.10],
                1: [0.45, 0.40, 0.15],
                2: [0.25, 0.45, 0.30],
                3: [0.10, 0.40, 0.50],
                4: [0.05, 0.25, 0.70],
            }[int(education_tier[i])]
            tier = int(gen.choice(3, p=tier_weights))
            options = [o for o, t in _OCCUPATION_TIER.items() if t == tier]
            occupation[i] = options[int(gen.integers(len(options)))]
        occupation_tier = np.array([_OCCUPATION_TIER[o] for o in occupation], dtype=float)

        # Income: multiplicative in education and occupation tier.
        income = (
            38_000.0
            * (1.0 + 0.35 * education_tier)
            * (1.0 + 0.45 * occupation_tier)
            * np.exp(gen.normal(0.0, 0.22, n_rows))
        )
        income[student] *= 0.45
        income[pensioner] *= 0.65
        # Keep cents: a float-valued income is exactly the kind of column
        # TFDV's inferred schema leaves unbounded (see baselines.tfdv).
        income = np.round(income, 2)

        # Employment span: starts after age 16, shorter for the young.
        max_span_years = np.maximum(age_years - 16.0, 0.5)
        employed_years = np.minimum(gen.gamma(2.5, 4.0, n_rows), max_span_years * gen.uniform(0.5, 0.95, n_rows))
        days_birth = -np.round(age_years * _YEAR)
        days_employed = -np.round(employed_years * _YEAR)

        children = np.clip(gen.poisson(0.6, n_rows), 0, 5).astype(float)
        family_status = gen.choice(_FAMILY, size=n_rows, p=[0.55, 0.20, 0.10, 0.08, 0.07]).astype(object)
        partner = np.isin(family_status, ["Married", "Civil marriage"]).astype(float)
        family_members = np.clip(1.0 + partner + children, 1, 9)

        own_car = np.where(gen.random(n_rows) < 0.25 + 0.12 * occupation_tier, "Y", "N").astype(object)
        housing = gen.choice(_HOUSING, size=n_rows, p=[0.70, 0.12, 0.08, 0.07, 0.03]).astype(object)
        own_realty = np.where(
            (housing == "House / apartment") & (gen.random(n_rows) < 0.85), "Y", "N"
        ).astype(object)

        return Table(
            self.schema(),
            {
                "CODE_GENDER": gender,
                "FLAG_OWN_CAR": own_car,
                "FLAG_OWN_REALTY": own_realty,
                "CNT_CHILDREN": children,
                "AMT_INCOME_TOTAL": income,
                "NAME_INCOME_TYPE": income_type,
                "NAME_EDUCATION_TYPE": education,
                "NAME_FAMILY_STATUS": family_status,
                "NAME_HOUSING_TYPE": housing,
                "DAYS_BIRTH": days_birth,
                "DAYS_EMPLOYED": days_employed,
                "OCCUPATION_TYPE": occupation,
                "CNT_FAM_MEMBERS": family_members,
            },
        )
