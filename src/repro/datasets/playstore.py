"""Google Play Store apps simulator (Kaggle Play Store dataset).

Real-world-error dataset (§4.1.1): the dirty variant reproduces the
infamous quirks of the scraped Play Store dump — ratings on the wrong
scale (19 instead of 1.9), paid apps listed as Free, shifted columns
producing impossible install counts, missing sizes, and category typos.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import ColumnKind, ColumnSpec, TableSchema
from repro.data.table import Table
from repro.datasets.base import DatasetGenerator
from repro.errors.base import InjectionReport, select_rows
from repro.errors.qwerty import qwerty_typo
from repro.utils.rng import derive_rng, ensure_rng

__all__ = ["PlayStoreGenerator"]

_CATEGORIES = (
    "FAMILY", "GAME", "TOOLS", "BUSINESS", "MEDICAL",
    "PRODUCTIVITY", "PERSONALIZATION", "LIFESTYLE", "FINANCE", "SPORTS",
)
_CONTENT_RATINGS = ("Everyone", "Everyone 10+", "Teen", "Mature 17+")


class PlayStoreGenerator(DatasetGenerator):
    """Synthesizes app listings with installs/reviews/price structure."""

    name = "playstore"
    default_rows = 8000

    def schema(self) -> TableSchema:
        return TableSchema(
            [
                ColumnSpec("category", ColumnKind.CATEGORICAL, "app category", categories=_CATEGORIES),
                ColumnSpec("rating", ColumnKind.NUMERIC, "average user rating (1-5)"),
                ColumnSpec("reviews", ColumnKind.NUMERIC, "review count"),
                ColumnSpec("size_mb", ColumnKind.NUMERIC, "APK size in MB"),
                ColumnSpec("installs", ColumnKind.NUMERIC, "install count"),
                ColumnSpec("app_type", ColumnKind.CATEGORICAL, "Free or Paid", categories=("Free", "Paid")),
                ColumnSpec("price", ColumnKind.NUMERIC, "price in USD"),
                ColumnSpec("content_rating", ColumnKind.CATEGORICAL, "audience rating", categories=_CONTENT_RATINGS),
                ColumnSpec("days_since_update", ColumnKind.NUMERIC, "days since last update"),
            ]
        )

    def knowledge_edges(self) -> list[tuple[str, str]]:
        return [
            ("app_type", "price"),
            ("installs", "reviews"),
            ("rating", "reviews"),
            ("category", "size_mb"),
            ("category", "content_rating"),
            ("installs", "days_since_update"),
            ("price", "installs"),
        ]

    def generate_clean(self, n_rows: int, rng: int | np.random.Generator | None = None) -> Table:
        gen = ensure_rng(rng)
        category = gen.choice(_CATEGORIES, size=n_rows).astype(object)

        app_type = gen.choice(["Free", "Paid"], size=n_rows, p=[0.92, 0.08]).astype(object)
        paid = app_type == "Paid"
        price = np.where(paid, np.round(np.exp(gen.normal(1.2, 0.8, n_rows)) - 0.01, 2), 0.0)
        price = np.clip(price, 0.0, 80.0)

        # Install magnitude drives review volume; paid apps install less.
        install_magnitude = gen.integers(2, 8, n_rows).astype(float)  # 10^2..10^7
        install_magnitude[paid] = np.clip(install_magnitude[paid] - 1, 2, 6)
        installs = np.round(10.0**install_magnitude * gen.uniform(0.5, 5.0, n_rows))
        reviews = np.round(installs * gen.uniform(0.005, 0.05, n_rows))

        # Ratings: mild positive link with review volume, clipped to [1, 5].
        rating = np.clip(
            np.round(gen.normal(4.1, 0.45, n_rows) + 0.05 * (np.log10(reviews + 1) - 3.0), 1), 1.0, 5.0
        )

        base_size = np.where(np.isin(category, ["GAME", "FAMILY"]), 80.0, 25.0)
        size_mb = np.clip(np.round(base_size * np.exp(gen.normal(0.0, 0.5, n_rows)), 1), 1.0, 500.0)

        content = np.empty(n_rows, dtype=object)
        game_like = np.isin(category, ["GAME", "FAMILY"])
        content[game_like] = gen.choice(_CONTENT_RATINGS, size=int(game_like.sum()), p=[0.55, 0.2, 0.2, 0.05])
        content[~game_like] = gen.choice(_CONTENT_RATINGS, size=int((~game_like).sum()), p=[0.8, 0.05, 0.1, 0.05])

        # Popular apps update frequently.
        days_update = np.round(gen.gamma(1.5, 120.0, n_rows) / np.maximum(np.log10(installs + 10) / 3.0, 0.5))
        days_update = np.clip(days_update, 0, 2500)

        return Table(
            self.schema(),
            {
                "category": category,
                "rating": rating,
                "reviews": reviews,
                "size_mb": size_mb,
                "installs": installs,
                "app_type": app_type,
                "price": price,
                "content_rating": content,
                "days_since_update": days_update,
            },
        )

    def generate_dirty(
        self, clean: Table, rng: int | np.random.Generator | None = None
    ) -> tuple[Table, InjectionReport]:
        """Scraper-artifact error mixture (~12% of rows affected)."""
        gen = ensure_rng(rng)
        dirty = clean.copy()
        report = InjectionReport.empty(clean, "playstore real-world errors")
        schema = clean.schema
        n = clean.n_rows

        def mark(rows: np.ndarray, column: str) -> None:
            report.cell_mask[rows, schema.index_of(column)] = True

        # 1. Ratings on the wrong scale (the real dataset's famous "19").
        rating = dirty.column("rating").copy()
        rows = select_rows(n, 0.03, derive_rng(gen, "rating"))
        rating[rows] *= 10.0
        dirty = dirty.with_column("rating", rating)
        mark(rows, "rating")

        # 2. Paid apps mislabeled Free while keeping a nonzero price.
        app_type = dirty.column("app_type").copy()
        price = dirty.column("price").copy()
        paid_rows = np.flatnonzero(price > 0)
        take = select_rows(paid_rows.size, 0.5, derive_rng(gen, "type")) if paid_rows.size else np.array([], dtype=int)
        rows = paid_rows[take] if take.size else np.array([], dtype=int)
        for row in rows:
            app_type[row] = "Free"
        dirty = dirty.with_column("app_type", app_type)
        mark(rows, "app_type")

        # 3. Column-shift artifact: install counts landing in the review field.
        reviews = dirty.column("reviews").copy()
        rows = select_rows(n, 0.03, derive_rng(gen, "reviews"))
        reviews[rows] = dirty.column("installs")[rows] * 10.0
        dirty = dirty.with_column("reviews", reviews)
        mark(rows, "reviews")

        # 4. Missing sizes ("Varies with device" exported as blank).
        size = dirty.column("size_mb").copy()
        rows = select_rows(n, 0.04, derive_rng(gen, "size"))
        size[rows] = np.nan
        dirty = dirty.with_column("size_mb", size)
        mark(rows, "size_mb")

        # 5. Category typos.
        category = dirty.column("category").copy()
        typo_rng = derive_rng(gen, "typos")
        rows = select_rows(n, 0.02, typo_rng)
        for row in rows:
            category[row] = qwerty_typo(category[row], typo_rng)
        dirty = dirty.with_column("category", category)
        mark(rows, "category")

        return dirty, report
