"""Dataset simulators for the six evaluation datasets (§4.1.1)."""

from repro.datasets.base import DatasetBundle, DatasetGenerator
from repro.datasets.airbnb import AirbnbGenerator
from repro.datasets.bicycle import BicycleGenerator
from repro.datasets.credit import CreditCardGenerator
from repro.datasets.hotel import HotelBookingGenerator
from repro.datasets.playstore import PlayStoreGenerator
from repro.datasets.taxi import TaxiGenerator
from repro.datasets.registry import DATASETS, dataset_names, get_generator, load_dataset

__all__ = [
    "DatasetBundle",
    "DatasetGenerator",
    "AirbnbGenerator",
    "BicycleGenerator",
    "CreditCardGenerator",
    "HotelBookingGenerator",
    "PlayStoreGenerator",
    "TaxiGenerator",
    "DATASETS",
    "dataset_names",
    "get_generator",
    "load_dataset",
]
