"""Dataset registry: name → generator lookup and one-call loading."""

from __future__ import annotations

from repro.datasets.airbnb import AirbnbGenerator
from repro.datasets.base import DatasetBundle, DatasetGenerator
from repro.datasets.bicycle import BicycleGenerator
from repro.datasets.credit import CreditCardGenerator
from repro.datasets.hotel import HotelBookingGenerator
from repro.datasets.playstore import PlayStoreGenerator
from repro.datasets.taxi import TaxiGenerator

__all__ = ["DATASETS", "get_generator", "load_dataset", "dataset_names"]

DATASETS: dict[str, type[DatasetGenerator]] = {
    AirbnbGenerator.name: AirbnbGenerator,
    BicycleGenerator.name: BicycleGenerator,
    PlayStoreGenerator.name: PlayStoreGenerator,
    TaxiGenerator.name: TaxiGenerator,
    HotelBookingGenerator.name: HotelBookingGenerator,
    CreditCardGenerator.name: CreditCardGenerator,
}


def dataset_names() -> list[str]:
    return sorted(DATASETS)


def get_generator(name: str) -> DatasetGenerator:
    try:
        return DATASETS[name]()
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; available: {dataset_names()}") from None


def load_dataset(
    name: str,
    n_rows: int | None = None,
    seed: int = 0,
    with_dirty: bool = False,
) -> DatasetBundle:
    """Generate a dataset bundle by registry name.

    ``with_dirty=True`` is only valid for the real-world-error datasets
    (airbnb, bicycle, playstore); clean-source datasets raise, directing
    callers to the §4.1.2 synthetic injectors.
    """
    return get_generator(name).load(n_rows=n_rows, seed=seed, with_dirty=with_dirty)
