"""Shared interface for all data-quality validators (baselines and DQuaG).

Every method in the evaluation — Deequ, TFDV, ADQV, Gate, and DQuaG
itself — is exposed through the same two calls:

* ``fit(clean_table)`` — learn whatever the method needs from clean data;
* ``validate_batch(batch)`` — return a :class:`BatchVerdict` saying
  whether the batch has quality issues and, where the method supports
  it, which rows are problematic.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.data.table import Table

__all__ = ["BatchVerdict", "BaselineValidator"]


@dataclass
class BatchVerdict:
    """Outcome of validating one batch.

    Attributes
    ----------
    is_problematic:
        The batch-level decision (the paper's primary metric input).
    flagged_rows:
        Indices of rows the method identifies as erroneous; empty for
        methods that only judge whole batches (ADQV, Gate).
    score:
        Method-specific severity (violation rate, kNN distance, ...);
        higher means more anomalous.
    details:
        Free-form diagnostics (violated constraints, drifted columns, ...).
    """

    is_problematic: bool
    flagged_rows: np.ndarray = field(default_factory=lambda: np.array([], dtype=int))
    score: float = 0.0
    details: dict = field(default_factory=dict)

    def summary(self) -> str:
        """Human rendering of the verdict.

        Methods that attach the structured ``details["summary"]`` dict
        (DQuaG does) render it exactly; others get a generic line.
        """
        payload = self.details.get("summary")
        if isinstance(payload, dict) and "n_flagged" in payload:
            from repro.api.protocol import render_summary

            return render_summary(payload)
        verdict = "PROBLEMATIC" if self.is_problematic else "OK"
        return f"{verdict}: {len(self.flagged_rows)} rows flagged, score={self.score:.4f}"

    # -- wire protocol (repro.api) ----------------------------------------
    def to_dict(self) -> dict:
        from repro.api.protocol import verdict_to_dict

        return verdict_to_dict(self)

    @staticmethod
    def from_dict(payload: dict) -> "BatchVerdict":
        from repro.api.protocol import verdict_from_dict

        return verdict_from_dict(payload)


class BaselineValidator(abc.ABC):
    """Common API for every validation method in the evaluation."""

    #: registry key / display name, e.g. ``"deequ_auto"``
    name: str = ""
    #: whether :attr:`BatchVerdict.flagged_rows` is meaningful
    supports_row_flags: bool = False

    @abc.abstractmethod
    def fit(self, clean: Table, rng: int | np.random.Generator | None = None) -> "BaselineValidator":
        """Learn constraints/statistics/models from the clean dataset."""

    @abc.abstractmethod
    def validate_batch(self, batch: Table) -> BatchVerdict:
        """Judge one batch of unseen data."""

    def validate_batches(self, batches: list[Table]) -> list[BatchVerdict]:
        return [self.validate_batch(batch) for batch in batches]
