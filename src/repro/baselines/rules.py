"""Declarative rules as a standalone baseline validator.

Expert-authored constraint systems (Deequ's expert mode, Great
Expectations) judge batches with hand-written checks and no learned
model. :class:`RuleSetValidator` puts the :mod:`repro.rules` engine on
the shared :class:`~repro.baselines.base.BaselineValidator` interface
so a bare rule set can run inside the same evaluation harness as DQuaG
and the paper's baselines — and so experiments can measure exactly what
the declarative half of a fused run contributes on its own.

``fit`` only fits the preprocessor (rules need the encoder's
vocabularies and scaling ranges, not a model); ``validate_batch``
evaluates the compiled :class:`~repro.rules.RulePlan` over the encoded
batch and flags rows with violations at or above ``min_severity``.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineValidator, BatchVerdict
from repro.data.preprocess import TablePreprocessor
from repro.data.table import Table
from repro.exceptions import NotFittedError, SchemaError
from repro.rules import SEVERITIES, SEVERITY_CODES, resolve_ruleset

__all__ = ["RuleSetValidator"]


class RuleSetValidator(BaselineValidator):
    """Judge batches with a declarative rule set alone (no GNN).

    >>> validator = RuleSetValidator(ruleset)           # doctest: +SKIP
    >>> validator.fit(clean_table)                      # doctest: +SKIP
    >>> verdict = validator.validate_batch(batch)       # doctest: +SKIP

    ``problem_fraction`` is the batch-level decision threshold: the
    batch is problematic when more than that fraction of its rows carry
    a violation at or above ``min_severity``.
    """

    name = "rules"
    supports_row_flags = True

    def __init__(
        self,
        rules,
        problem_fraction: float = 0.05,
        min_severity: str = "warn",
        future_categories: dict[str, list[str]] | None = None,
    ) -> None:
        self.ruleset = resolve_ruleset(rules)
        if self.ruleset is None:
            raise ValueError("RuleSetValidator requires a rule set")
        if not 0.0 <= problem_fraction <= 1.0:
            raise ValueError(f"problem_fraction must be in [0, 1], got {problem_fraction}")
        if min_severity not in SEVERITIES:
            raise ValueError(f"min_severity must be one of {SEVERITIES}, got {min_severity!r}")
        self.problem_fraction = problem_fraction
        self.min_severity = min_severity
        self._future_categories = future_categories
        self.preprocessor: TablePreprocessor | None = None
        self._plan = None

    def fit(self, clean: Table, rng=None) -> "RuleSetValidator":
        """Fit the encoder on clean data and compile the rule plan.

        Compilation is eager so an incompatible rule set (unknown
        column, unfitted category, …) fails here, not on a later batch.
        """
        self.preprocessor = TablePreprocessor(clean.schema).fit(
            clean, future_categories=self._future_categories
        )
        self._plan = self.ruleset.compile(self.preprocessor)
        return self

    def validate_batch(self, batch: Table) -> BatchVerdict:
        if self._plan is None or self.preprocessor is None:
            raise NotFittedError("RuleSetValidator used before fit()")
        if batch.schema != self.preprocessor.schema:
            raise SchemaError("batch schema does not match the fitted rule validator")
        report = self.rule_report(batch)
        threshold = SEVERITY_CODES[self.min_severity]
        flagged = np.unique(report.cell_rows[report.cell_severity >= threshold])
        fraction = float(len(flagged)) / batch.n_rows if batch.n_rows else 0.0
        return BatchVerdict(
            is_problematic=fraction > self.problem_fraction,
            flagged_rows=flagged,
            score=fraction,
            details={
                "by_severity": report.by_severity(),
                "rules": [outcome.to_dict() for outcome in report.outcomes],
            },
        )

    def rule_report(self, batch: Table):
        """The full :class:`~repro.rules.RuleReport` for one batch."""
        if self._plan is None or self.preprocessor is None:
            raise NotFittedError("RuleSetValidator used before fit()")
        from repro.rules import fold_rule_partials

        matrix = self.preprocessor.compile().transform(batch)
        partial = self._plan.evaluate(matrix)
        return fold_rule_partials(
            [(0, batch.n_rows, partial)],
            self.ruleset,
            list(self.preprocessor.schema.names),
        )
