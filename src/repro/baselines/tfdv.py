"""TensorFlow Data Validation-style schema checking (Caveness et al., 2020).

TFDV infers a *schema* from reference data — feature presence, types,
categorical domains, and (for integer-like features) value bounds — then
reports anomalies on new data, plus optional drift comparison between
consecutive datasets.

The reproduction keeps TFDV's characteristic blind spot: only
small-cardinality integer features get range bounds in the inferred
schema (categorical-int domains); continuous floats and wide-range
integers (day counts, ids) get **none**, so numeric anomalies in such
columns slip through ``auto`` mode — exactly the asymmetry Table 1 shows
(TFDV auto catches Hotel's small-int ``adults`` anomalies but misses
Credit's float income anomalies).

* ``auto`` — inferred schema applied as-is, any anomaly flags the batch.
* ``expert`` — the manually curated schema: analysts add range bounds to
  *all* numeric features (padded), set missingness tolerances, and flag
  on anomaly *rates* instead of single anomalies.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineValidator, BatchVerdict
from repro.baselines.profiles import ColumnProfile, histogram_distance, profile_table
from repro.data.table import Table
from repro.exceptions import ConfigurationError, NotFittedError

__all__ = ["TFDVValidator"]


class TFDVValidator(BaselineValidator):
    """Schema-inference validation with auto/expert modes."""

    supports_row_flags = True

    def __init__(
        self,
        mode: str = "auto",
        drift_linf_threshold: float = 0.35,
        expert_range_padding: float = 0.05,
        expert_missing_tolerance: float = 0.02,
        expert_anomaly_tolerance: float = 0.02,
    ) -> None:
        if mode not in ("auto", "expert"):
            raise ConfigurationError(f"mode must be 'auto' or 'expert', got {mode!r}")
        self.mode = mode
        self.name = f"tfdv_{mode}"
        self.drift_linf_threshold = drift_linf_threshold
        self.expert_range_padding = expert_range_padding
        self.expert_missing_tolerance = expert_missing_tolerance
        self.expert_anomaly_tolerance = expert_anomaly_tolerance
        self.profiles_: dict[str, ColumnProfile] | None = None

    def fit(self, clean: Table, rng: int | np.random.Generator | None = None) -> "TFDVValidator":
        # TFDV's schema inference is a full pass over the reference data
        # (unlike Deequ's sampled suggestion run); ``rng`` is unused but
        # kept for interface symmetry.
        del rng
        self.profiles_ = profile_table(clean)
        return self

    # -- anomaly checks ---------------------------------------------------
    #: integral columns with at most this many distinct values are treated
    #: as categorical-int domains (and therefore bounded) by the inferred
    #: schema; wide-range integers (ids, day counts) are left unbounded,
    #: exactly like continuous floats.
    INT_DOMAIN_MAX_CARDINALITY = 25

    def _numeric_anomalies(self, profile: ColumnProfile, values: np.ndarray) -> np.ndarray:
        present = np.isfinite(values)
        anomalies = np.zeros(values.size, dtype=bool)
        if self.mode == "expert":
            span = (profile.maximum - profile.minimum) or 1.0
            pad = span * self.expert_range_padding
            anomalies |= present & ((values < profile.minimum - pad) | (values > profile.maximum + pad))
        elif profile.is_integral and profile.n_distinct <= self.INT_DOMAIN_MAX_CARDINALITY:
            # TFDV bounds small int domains; floats and wide ints get none.
            anomalies |= present & ((values < profile.minimum) | (values > profile.maximum))
        return anomalies

    def _categorical_anomalies(self, profile: ColumnProfile, values: np.ndarray) -> np.ndarray:
        return np.array([v is not None and v not in profile.domain for v in values], dtype=bool)

    def _missingness_anomalies(self, profile: ColumnProfile, values: np.ndarray, kind: str) -> np.ndarray:
        if kind == "numeric":
            missing = ~np.isfinite(values)
        else:
            missing = np.array([v is None for v in values], dtype=bool)
        tolerance = (1.0 - profile.completeness) + (
            self.expert_missing_tolerance if self.mode == "expert" else 0.0
        )
        if values.size and missing.mean() > tolerance + 1e-12:
            return missing
        return np.zeros(values.size, dtype=bool)

    # -- validation -----------------------------------------------------------
    def validate_batch(self, batch: Table) -> BatchVerdict:
        if self.profiles_ is None:
            raise NotFittedError("TFDVValidator used before fit()")
        anomalies = np.zeros(batch.n_rows, dtype=bool)
        drifted: list[str] = []
        details: list[str] = []
        for spec in batch.schema:
            profile = self.profiles_.get(spec.name)
            if profile is None:
                details.append(f"new feature: {spec.name}")
                continue
            values = batch.column(spec.name)
            missing = self._missingness_anomalies(profile, values, spec.kind)
            if missing.any():
                details.append(f"missingness: {spec.name}")
                anomalies |= missing
            if spec.is_numeric:
                bad = self._numeric_anomalies(profile, values)
                if bad.any():
                    details.append(f"out of schema bounds: {spec.name}")
                    anomalies |= bad
                distance = histogram_distance(profile, values)
                if distance > self.drift_linf_threshold:
                    drifted.append(spec.name)
            else:
                bad = self._categorical_anomalies(profile, values)
                if bad.any():
                    details.append(f"unexpected values: {spec.name}")
                    anomalies |= bad
        anomaly_rate = float(anomalies.mean()) if batch.n_rows else 0.0
        if self.mode == "auto":
            is_problematic = bool(anomalies.any()) or bool(drifted)
        else:
            is_problematic = anomaly_rate > self.expert_anomaly_tolerance or bool(drifted)
        return BatchVerdict(
            is_problematic=is_problematic,
            flagged_rows=np.flatnonzero(anomalies),
            score=max(anomaly_rate, 0.0),
            details={"anomalies": details, "drifted_columns": drifted},
        )
