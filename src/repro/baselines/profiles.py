"""Column profiling shared by the rule-based baselines.

A :class:`ColumnProfile` is the statistical summary Deequ/TFDV-style
systems compute during their suggestion phase: completeness, range,
integrality, category domain, and a fixed-bin histogram for drift
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.schema import ColumnSpec
from repro.data.table import Table

__all__ = ["ColumnProfile", "profile_table", "histogram_distance"]

_HISTOGRAM_BINS = 20


@dataclass
class ColumnProfile:
    """Summary statistics of one column over a reference table."""

    name: str
    kind: str
    completeness: float
    minimum: float | None = None
    maximum: float | None = None
    mean: float | None = None
    std: float | None = None
    is_integral: bool = False
    n_distinct: int = 0
    domain: frozenset[str] = frozenset()
    histogram: np.ndarray | None = None
    bin_edges: np.ndarray | None = None

    def bin_fractions(self, values: np.ndarray) -> np.ndarray:
        """Histogram fractions of ``values`` over this profile's bins."""
        if self.bin_edges is None:
            raise ValueError(f"column {self.name!r} has no histogram")
        finite = values[np.isfinite(values)]
        if finite.size == 0:
            return np.zeros(len(self.bin_edges) - 1)
        counts, _ = np.histogram(np.clip(finite, self.bin_edges[0], self.bin_edges[-1]), bins=self.bin_edges)
        return counts / finite.size


def profile_column(spec: ColumnSpec, values: np.ndarray) -> ColumnProfile:
    if spec.is_numeric:
        finite = values[np.isfinite(values)]
        completeness = finite.size / values.size if values.size else 1.0
        if finite.size == 0:
            return ColumnProfile(spec.name, spec.kind, completeness)
        edges = np.histogram_bin_edges(finite, bins=_HISTOGRAM_BINS)
        counts, _ = np.histogram(finite, bins=edges)
        return ColumnProfile(
            name=spec.name,
            kind=spec.kind,
            completeness=completeness,
            minimum=float(finite.min()),
            maximum=float(finite.max()),
            mean=float(finite.mean()),
            std=float(finite.std()),
            is_integral=bool(np.all(finite == np.round(finite))),
            n_distinct=int(np.unique(finite).size),
            histogram=counts / max(finite.size, 1),
            bin_edges=edges,
        )
    present = np.array([v for v in values if v is not None], dtype=object)
    completeness = present.size / values.size if values.size else 1.0
    domain = frozenset(str(v) for v in present)
    return ColumnProfile(
        name=spec.name,
        kind=spec.kind,
        completeness=completeness,
        n_distinct=len(domain),
        domain=domain,
    )


def profile_table(table: Table) -> dict[str, ColumnProfile]:
    """Profiles of every column, keyed by name."""
    return {spec.name: profile_column(spec, table.column(spec.name)) for spec in table.schema}


def histogram_distance(profile: ColumnProfile, values: np.ndarray) -> float:
    """L∞ distance between the reference histogram and ``values``'s histogram.

    The drift comparator TFDV applies between schema environments.
    """
    if profile.histogram is None:
        return 0.0
    return float(np.abs(profile.bin_fractions(values) - profile.histogram).max())
