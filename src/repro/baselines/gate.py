"""Gate: automatic, precise data validation (Shankar et al., CIKM 2023).

Gate summarizes each data partition with per-column statistics and
learns, from a history of good partitions, how much each statistic
naturally fluctuates; a new partition is flagged when enough statistics
land outside their learned tolerance bands (mean ± k·std across the
history).

The reproduction keeps the trait the paper observed: with its default
sensitivity the learned bands are tight, so Gate fires on benign
fluctuation in some datasets while genuinely conflicting-but-marginal-
preserving errors move too few statistics to reach the vote threshold.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineValidator, BatchVerdict
from repro.data.table import Table
from repro.exceptions import NotFittedError
from repro.utils.rng import derive_rng, ensure_rng

__all__ = ["GateValidator", "partition_summary"]


def partition_summary(table: Table) -> dict[str, float]:
    """Named per-column summary statistics of one partition."""
    summary: dict[str, float] = {}
    for spec in table.schema:
        values = table.column(spec.name)
        if spec.is_numeric:
            finite = values[np.isfinite(values)]
            summary[f"{spec.name}.completeness"] = finite.size / values.size if values.size else 1.0
            if finite.size:
                summary[f"{spec.name}.mean"] = float(finite.mean())
                summary[f"{spec.name}.std"] = float(finite.std())
                summary[f"{spec.name}.p05"] = float(np.quantile(finite, 0.05))
                summary[f"{spec.name}.p95"] = float(np.quantile(finite, 0.95))
            else:
                for stat in ("mean", "std", "p05", "p95"):
                    summary[f"{spec.name}.{stat}"] = 0.0
        else:
            present = [v for v in values if v is not None]
            summary[f"{spec.name}.completeness"] = len(present) / values.size if values.size else 1.0
            counts: dict[str, int] = {}
            for v in present:
                counts[v] = counts.get(v, 0) + 1
            summary[f"{spec.name}.cardinality"] = float(len(counts))
            summary[f"{spec.name}.top_fraction"] = (
                max(counts.values()) / len(present) if present else 0.0
            )
    return summary


class GateValidator(BaselineValidator):
    """Partition-summary validation with learned tolerance bands.

    Parameters
    ----------
    sensitivity:
        Band half-width in historical standard deviations (lower =
        stricter; Gate's precision-driven defaults are tight).
    vote_fraction:
        Fraction of statistics that must leave their bands to flag the
        partition.
    """

    name = "gate"
    supports_row_flags = False

    def __init__(
        self,
        sensitivity: float = 2.5,
        vote_fraction: float = 0.02,
        n_reference_batches: int = 60,
        reference_fraction: float = 0.1,
        reference_batch_size: int | None = None,
    ) -> None:
        if sensitivity <= 0:
            raise ValueError(f"sensitivity must be positive, got {sensitivity}")
        if not 0.0 < vote_fraction <= 1.0:
            raise ValueError(f"vote_fraction must be in (0, 1], got {vote_fraction}")
        self.sensitivity = sensitivity
        self.vote_fraction = vote_fraction
        self.n_reference_batches = n_reference_batches
        self.reference_fraction = reference_fraction
        # Cardinality/extreme statistics are batch-size dependent: build
        # the history at the size the method will judge when known.
        self.reference_batch_size = reference_batch_size
        self._stat_names: list[str] | None = None
        self._means: np.ndarray | None = None
        self._stds: np.ndarray | None = None

    def fit(self, clean: Table, rng: int | np.random.Generator | None = None) -> "GateValidator":
        generator = ensure_rng(rng)
        batch_size = self.reference_batch_size or max(2, int(round(clean.n_rows * self.reference_fraction)))
        history: list[dict[str, float]] = []
        for i in range(self.n_reference_batches):
            batch = clean.sample(min(batch_size, clean.n_rows), rng=derive_rng(generator, "gate", i))
            history.append(partition_summary(batch))
        self._stat_names = sorted(history[0])
        matrix = np.array([[h[name] for name in self._stat_names] for h in history])
        self._means = matrix.mean(axis=0)
        self._stds = matrix.std(axis=0)
        # Statistics that never move get a tiny band so exact matches pass.
        self._stds[self._stds == 0] = 1e-9
        return self

    def validate_batch(self, batch: Table) -> BatchVerdict:
        if self._stat_names is None:
            raise NotFittedError("GateValidator used before fit()")
        summary = partition_summary(batch)
        vector = np.array([summary.get(name, 0.0) for name in self._stat_names])
        z_scores = np.abs(vector - self._means) / self._stds
        out_of_band = z_scores > self.sensitivity
        fraction = float(out_of_band.mean())
        violating = [name for name, bad in zip(self._stat_names, out_of_band) if bad]
        return BatchVerdict(
            is_problematic=fraction > self.vote_fraction,
            score=fraction,
            details={"out_of_band_statistics": violating},
        )
