"""Baseline data-quality validation systems (§4.1.3).

All four SOTA baselines the paper compares against, re-implemented on
the shared :class:`~repro.baselines.base.BaselineValidator` interface:
Deequ (auto/expert), TFDV (auto/expert), ADQV, and Gate.
"""

from repro.baselines.base import BaselineValidator, BatchVerdict
from repro.baselines.profiles import ColumnProfile, histogram_distance, profile_table
from repro.baselines.deequ import (
    CompletenessConstraint,
    Constraint,
    DeequValidator,
    DomainConstraint,
    RangeConstraint,
)
from repro.baselines.tfdv import TFDVValidator
from repro.baselines.adqv import ADQVValidator, batch_statistics_vector
from repro.baselines.gate import GateValidator, partition_summary
from repro.baselines.rules import RuleSetValidator

__all__ = [
    "BaselineValidator",
    "BatchVerdict",
    "ColumnProfile",
    "histogram_distance",
    "profile_table",
    "Constraint",
    "CompletenessConstraint",
    "RangeConstraint",
    "DomainConstraint",
    "DeequValidator",
    "TFDVValidator",
    "ADQVValidator",
    "batch_statistics_vector",
    "GateValidator",
    "partition_summary",
    "RuleSetValidator",
]
