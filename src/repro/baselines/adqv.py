"""ADQV: automated data-quality validation for dynamic data ingestion
(Redyuk, Kaoudi, Markl & Schelter, EDBT 2021).

ADQV represents each data batch by a vector of descriptive statistics
(per-column completeness, moments, extremes, distinctness, ...) and
performs k-nearest-neighbor novelty detection against a history of
known-good batches: a new batch whose distance to its k-th nearest clean
batch exceeds a calibrated threshold is declared erroneous.

Strengths and weaknesses follow directly: marginal-distribution shifts
(missing values, numeric anomalies, typos creating new categories) move
the statistics vector and are caught; cross-column conflicts that keep
marginals near-intact move it barely — and per the paper, ADQV "cannot
pinpoint the incorrect samples", so ``flagged_rows`` stays empty.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineValidator, BatchVerdict
from repro.data.table import Table
from repro.exceptions import NotFittedError
from repro.utils.rng import derive_rng, ensure_rng

__all__ = ["ADQVValidator", "batch_statistics_vector"]


def batch_statistics_vector(table: Table) -> np.ndarray:
    """Descriptive-statistics embedding of a batch (fixed length per schema)."""
    stats: list[float] = []
    for spec in table.schema:
        values = table.column(spec.name)
        if spec.is_numeric:
            finite = values[np.isfinite(values)]
            completeness = finite.size / values.size if values.size else 1.0
            if finite.size == 0:
                stats.extend([completeness, 0.0, 0.0, 0.0, 0.0, 0.0])
            else:
                stats.extend(
                    [
                        completeness,
                        float(finite.mean()),
                        float(finite.std()),
                        float(finite.min()),
                        float(finite.max()),
                        float(np.median(finite)),
                    ]
                )
        else:
            present = [v for v in values if v is not None]
            completeness = len(present) / values.size if values.size else 1.0
            if not present:
                stats.extend([completeness, 0.0, 0.0])
            else:
                counts = {}
                for v in present:
                    counts[v] = counts.get(v, 0) + 1
                frequencies = np.array(sorted(counts.values(), reverse=True), dtype=float)
                frequencies /= frequencies.sum()
                entropy = float(-(frequencies * np.log(frequencies + 1e-12)).sum())
                stats.extend([completeness, len(counts) / len(present), entropy])
    return np.array(stats, dtype=np.float64)


class ADQVValidator(BaselineValidator):
    """k-NN novelty detection over batch-statistics vectors.

    Parameters
    ----------
    k:
        Neighbor rank used for the novelty distance.
    n_reference_batches / reference_fraction:
        How many clean batches to synthesize for the history and their
        size relative to the clean table (mirrors the paper's protocol of
        serving-batch validation against historical batches).
    threshold_quantile / threshold_slack:
        The decision threshold is the ``threshold_quantile`` of
        leave-one-out k-NN distances among clean history batches,
        multiplied by ``1 + threshold_slack``.
    """

    name = "adqv"
    supports_row_flags = False

    def __init__(
        self,
        k: int = 3,
        n_reference_batches: int = 60,
        reference_fraction: float = 0.1,
        reference_batch_size: int | None = None,
        threshold_quantile: float = 0.99,
        threshold_slack: float = 0.15,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.n_reference_batches = n_reference_batches
        self.reference_fraction = reference_fraction
        # Several descriptive statistics (distinctness, extremes) depend on
        # batch size, so the history should be built with batches of the
        # size the method will later judge; pass it when known.
        self.reference_batch_size = reference_batch_size
        self.threshold_quantile = threshold_quantile
        self.threshold_slack = threshold_slack
        self._reference: np.ndarray | None = None
        self._scale: np.ndarray | None = None
        self._center: np.ndarray | None = None
        self.threshold_: float | None = None

    def fit(self, clean: Table, rng: int | np.random.Generator | None = None) -> "ADQVValidator":
        generator = ensure_rng(rng)
        batch_size = self.reference_batch_size or max(2, int(round(clean.n_rows * self.reference_fraction)))
        vectors = []
        for i in range(self.n_reference_batches):
            batch = clean.sample(min(batch_size, clean.n_rows), rng=derive_rng(generator, "adqv", i))
            vectors.append(batch_statistics_vector(batch))
        reference = np.array(vectors)
        self._center = reference.mean(axis=0)
        self._scale = reference.std(axis=0)
        # Statistics that never vary across clean batches (e.g. completeness
        # = 1.0 exactly) get a small scale: any deviation on such a
        # dimension is a strong novelty signal, not noise.
        zero_variance = self._scale == 0
        positive = self._scale[~zero_variance]
        floor = 0.01 * (float(positive.mean()) if positive.size else 1.0)
        self._scale[zero_variance] = max(floor, 1e-9)
        self._reference = (reference - self._center) / self._scale
        loo_distances = [
            self._knn_distance(self._reference[i], exclude=i) for i in range(len(self._reference))
        ]
        calibrated = float(np.quantile(loo_distances, self.threshold_quantile))
        self.threshold_ = calibrated * (1.0 + self.threshold_slack)
        return self

    def _knn_distance(self, vector: np.ndarray, exclude: int | None = None) -> float:
        distances = np.linalg.norm(self._reference - vector, axis=1)
        if exclude is not None:
            distances = np.delete(distances, exclude)
        distances.sort()
        rank = min(self.k, distances.size) - 1
        return float(distances[rank])

    def validate_batch(self, batch: Table) -> BatchVerdict:
        if self._reference is None or self.threshold_ is None:
            raise NotFittedError("ADQVValidator used before fit()")
        vector = (batch_statistics_vector(batch) - self._center) / self._scale
        distance = self._knn_distance(vector)
        return BatchVerdict(
            is_problematic=distance > self.threshold_,
            score=distance,
            details={"knn_distance": distance, "threshold": self.threshold_},
        )
