"""Deequ-style constraint validation (Schelter et al., VLDB 2018).

Deequ profiles a reference dataset, *suggests* declarative constraints
(completeness, value ranges, category domains), and verifies batches
against them. The paper evaluates two configurations (§4.1.3):

* ``auto`` — constraints exactly as suggested from a profiling *sample*:
  ranges are the sample's observed min/max, domains the observed value
  sets, completeness 100%, and any single violation flags the batch.
  This is the "too strict" failure mode: clean batches routinely contain
  values beyond a sample's extremes, producing false positives
  (Table 1's ≈0.5 accuracy with recall 1).
* ``expert`` — the manually tuned setup: constraints are fitted on the
  full clean data, ranges padded, small missing-value and violation-rate
  tolerances added. Accurate on ordinary errors, but — like any
  column-local rule set — blind to cross-column conflicts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import BaselineValidator, BatchVerdict
from repro.baselines.profiles import ColumnProfile, profile_table
from repro.data.table import Table
from repro.exceptions import ConfigurationError, NotFittedError
from repro.utils.rng import ensure_rng

__all__ = ["Constraint", "CompletenessConstraint", "RangeConstraint", "DomainConstraint", "DeequValidator"]


class Constraint:
    """A declarative check producing a per-row violation mask."""

    def __init__(self, column: str) -> None:
        self.column = column

    def violations(self, table: Table) -> np.ndarray:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class CompletenessConstraint(Constraint):
    """``completeness(column) >= threshold`` (per-row: value present)."""

    def __init__(self, column: str, threshold: float = 1.0) -> None:
        super().__init__(column)
        self.threshold = threshold

    def violations(self, table: Table) -> np.ndarray:
        spec = table.schema[self.column]
        values = table.column(self.column)
        if spec.is_numeric:
            missing = ~np.isfinite(values)
        else:
            missing = np.array([v is None for v in values], dtype=bool)
        # Rows are only violations when the column misses more than allowed.
        if values.size and missing.mean() > 1.0 - self.threshold:
            return missing
        return np.zeros(len(values), dtype=bool)

    def describe(self) -> str:
        return f"isComplete({self.column}) >= {self.threshold:.3f}"


class RangeConstraint(Constraint):
    """``minimum <= column <= maximum`` for present numeric values."""

    def __init__(self, column: str, minimum: float, maximum: float) -> None:
        super().__init__(column)
        if minimum > maximum:
            raise ConfigurationError(f"range constraint on {column}: min {minimum} > max {maximum}")
        self.minimum = minimum
        self.maximum = maximum

    def violations(self, table: Table) -> np.ndarray:
        values = table.column(self.column)
        present = np.isfinite(values)
        return present & ((values < self.minimum) | (values > self.maximum))

    def describe(self) -> str:
        return f"isInRange({self.column}, [{self.minimum:.4g}, {self.maximum:.4g}])"


class DomainConstraint(Constraint):
    """``column ∈ allowed`` for present categorical values."""

    def __init__(self, column: str, allowed: frozenset[str]) -> None:
        super().__init__(column)
        self.allowed = frozenset(allowed)

    def violations(self, table: Table) -> np.ndarray:
        values = table.column(self.column)
        return np.array([v is not None and v not in self.allowed for v in values], dtype=bool)

    def describe(self) -> str:
        return f"isContainedIn({self.column}, {len(self.allowed)} values)"


class DeequValidator(BaselineValidator):
    """Deequ with auto-suggested or expert-tuned constraints.

    Parameters
    ----------
    mode:
        ``"auto"`` or ``"expert"`` (see module docstring).
    suggestion_sample_fraction:
        Auto mode profiles this fraction of the clean data (Deequ's
        suggestion runs on a sample; 10% default).
    expert_range_padding:
        Expert mode widens each range by this fraction of its span.
    expert_violation_tolerance:
        Expert mode flags a batch only when the violating-row rate
        exceeds this.
    """

    supports_row_flags = True

    def __init__(
        self,
        mode: str = "auto",
        suggestion_sample_fraction: float = 0.1,
        expert_range_padding: float = 0.05,
        expert_missing_tolerance: float = 0.02,
        expert_violation_tolerance: float = 0.02,
    ) -> None:
        if mode not in ("auto", "expert"):
            raise ConfigurationError(f"mode must be 'auto' or 'expert', got {mode!r}")
        self.mode = mode
        self.name = f"deequ_{mode}"
        self.suggestion_sample_fraction = suggestion_sample_fraction
        self.expert_range_padding = expert_range_padding
        self.expert_missing_tolerance = expert_missing_tolerance
        self.expert_violation_tolerance = expert_violation_tolerance
        self.constraints_: list[Constraint] | None = None

    def fit(self, clean: Table, rng: int | np.random.Generator | None = None) -> "DeequValidator":
        generator = ensure_rng(rng)
        if self.mode == "auto":
            sample_size = max(2, int(round(clean.n_rows * self.suggestion_sample_fraction)))
            reference = clean.sample(min(sample_size, clean.n_rows), rng=generator)
            padding = 0.0
            completeness = 1.0
        else:
            reference = clean
            padding = self.expert_range_padding
            completeness = 1.0 - self.expert_missing_tolerance
        profiles = profile_table(reference)
        self.constraints_ = self._suggest(profiles, padding, completeness)
        return self

    def _suggest(
        self, profiles: dict[str, ColumnProfile], padding: float, completeness: float
    ) -> list[Constraint]:
        constraints: list[Constraint] = []
        for profile in profiles.values():
            constraints.append(CompletenessConstraint(profile.name, completeness))
            if profile.kind == "numeric" and profile.minimum is not None:
                span = profile.maximum - profile.minimum
                pad = span * padding
                constraints.append(RangeConstraint(profile.name, profile.minimum - pad, profile.maximum + pad))
            elif profile.kind == "categorical":
                constraints.append(DomainConstraint(profile.name, profile.domain))
        return constraints

    def validate_batch(self, batch: Table) -> BatchVerdict:
        if self.constraints_ is None:
            raise NotFittedError("DeequValidator used before fit()")
        row_violations = np.zeros(batch.n_rows, dtype=bool)
        violated: list[str] = []
        for constraint in self.constraints_:
            mask = constraint.violations(batch)
            if mask.any():
                violated.append(constraint.describe())
                row_violations |= mask
        violation_rate = float(row_violations.mean()) if batch.n_rows else 0.0
        if self.mode == "auto":
            is_problematic = bool(row_violations.any())
        else:
            is_problematic = violation_rate > self.expert_violation_tolerance
        return BatchVerdict(
            is_problematic=is_problematic,
            flagged_rows=np.flatnonzero(row_violations),
            score=violation_rate,
            details={"violated_constraints": violated},
        )
