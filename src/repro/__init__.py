"""repro — reproduction of DQuaG (EDBT 2025).

Automated data-quality validation and repair for tabular data with an
end-to-end GNN framework: a GAT+GIN encoder over a feature graph and a
dual decoder (validation + repair) trained with multi-task learning.

Public entry points::

    from repro import DQuaG, DQuaGConfig
    from repro.datasets import load_dataset
    from repro.errors import MissingValueInjector, NumericAnomalyInjector

The heavy subpackages are imported lazily through their own namespaces
(``repro.core``, ``repro.datasets``, ...); this root module re-exports
the high-level facade once those modules exist.
"""

from __future__ import annotations

__version__ = "1.1.0"

__all__ = ["__version__"]


def __getattr__(name: str):
    # Lazy re-exports so that `import repro` stays cheap and the nn
    # substrate can be used standalone.
    if name in {"DQuaG", "DQuaGConfig"}:
        from repro.core import DQuaG, DQuaGConfig

        return {"DQuaG": DQuaG, "DQuaGConfig": DQuaGConfig}[name]
    if name in {"InferenceEngine", "StreamingValidator", "ValidationService"}:
        import repro.runtime as runtime

        return getattr(runtime, name)
    if name in {"SCHEMA_VERSION", "ValidateRequest", "RepairRequest"}:
        import repro.api as api

        return getattr(api, name)
    if name in {"Client", "ValidationGateway"}:
        import repro.serve as serve

        return getattr(serve, name)
    if name in {"DriftMonitor", "MonitorSnapshot", "DriftAlert", "MonitorBaseline"}:
        import repro.monitor as monitor

        return getattr(monitor, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
