"""ASCII reporting for experiment results (paper-vs-measured tables)."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ResultTable"]


@dataclass
class ResultTable:
    """A printable result table with a title and column headers."""

    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.headers):
            raise ValueError(f"expected {len(self.headers)} values, got {len(values)}")
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def _formatted_cells(self) -> list[list[str]]:
        formatted = []
        for row in self.rows:
            cells = []
            for value in row:
                if isinstance(value, float):
                    cells.append(f"{value:.3f}")
                else:
                    cells.append(str(value))
            formatted.append(cells)
        return formatted

    def to_result_table(self) -> "ResultTable":
        """Uniform accessor shared with the experiment result wrappers."""
        return self

    # -- wire protocol (repro.api) ----------------------------------------
    def to_dict(self) -> dict:
        from repro.api.protocol import result_table_to_dict

        return result_table_to_dict(self)

    @staticmethod
    def from_dict(payload: dict) -> "ResultTable":
        from repro.api.protocol import result_table_from_dict

        return result_table_from_dict(payload)

    def render(self) -> str:
        cells = self._formatted_cells()
        widths = [len(h) for h in self.headers]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(items: list[str]) -> str:
            return "  ".join(item.ljust(width) for item, width in zip(items, widths)).rstrip()

        parts = [self.title, "=" * len(self.title), line(self.headers), line(["-" * w for w in widths])]
        parts.extend(line(row) for row in cells)
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.render()
