"""Table 1 — synthetic-error detection on Hotel Booking and Credit Card.

For each dataset, four dirty scenarios are generated from the clean
evaluation split (§4.1.2):

* ``N`` — numeric anomalies, ``S`` — string typos, ``M`` — missing
  values (20% of one selected attribute each);
* hidden conflicts — the dataset's logical-conflict injector(s).

Every method (7 configurations) is fitted on the clean training split
and scored on N clean + N dirty batches per scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.table import Table
from repro.errors import (
    CreditEmploymentBeforeBirthInjector,
    CreditIncomeEducationConflictInjector,
    ErrorInjector,
    HotelGroupConflictInjector,
    MissingValueInjector,
    NumericAnomalyInjector,
    StringTypoInjector,
)
from repro.experiments.cache import get_pipeline, get_splits
from repro.experiments.harness import (
    ExperimentScale,
    fit_baselines,
    resolve_scale,
    run_detection,
)
from repro.experiments.reporting import ResultTable
from repro.metrics import BinaryMetrics

__all__ = ["SYNTHETIC_SCENARIOS", "Table1Result", "run_table1", "PAPER_TABLE1"]


def _hotel_scenarios() -> dict[str, ErrorInjector]:
    # N targets ``adults`` — a small-int column whose inferred TFDV schema
    # carries bounds, matching the paper's "TFDV auto catches Hotel N"
    # asymmetry (Credit's N targets the unbounded float income instead).
    return {
        "N": NumericAnomalyInjector(["adults"], fraction=0.2),
        "S": StringTypoInjector(["meal"], fraction=0.2),
        "M": MissingValueInjector(["adr"], fraction=0.2),
        "Conflicts": HotelGroupConflictInjector(fraction=0.2),
    }


def _credit_scenarios() -> dict[str, ErrorInjector]:
    return {
        "N": NumericAnomalyInjector(["AMT_INCOME_TOTAL"], fraction=0.2),
        "S": StringTypoInjector(["OCCUPATION_TYPE"], fraction=0.2),
        "M": MissingValueInjector(["NAME_EDUCATION_TYPE"], fraction=0.2),
        "Conflicts-1": CreditEmploymentBeforeBirthInjector(fraction=0.2),
        "Conflicts-2": CreditIncomeEducationConflictInjector(fraction=0.2),
    }


SYNTHETIC_SCENARIOS = {
    "hotel": _hotel_scenarios,
    "credit": _credit_scenarios,
}

# Paper Table 1 values for the scenarios we reproduce (accuracy, recall).
PAPER_TABLE1 = {
    ("hotel", "N,S,M", "deequ_auto"): (0.530, 1.0),
    ("hotel", "N,S,M", "deequ_expert"): (1.0, 1.0),
    ("hotel", "N,S,M", "tfdv_auto"): (1.0, 1.0),
    ("hotel", "N,S,M", "tfdv_expert"): (1.0, 1.0),
    ("hotel", "N,S,M", "adqv"): (0.963, 1.0),
    ("hotel", "N,S,M", "dquag"): (1.0, 1.0),
    ("hotel", "Conflicts", "deequ_expert"): (0.5, 0.0),
    ("hotel", "Conflicts", "tfdv_expert"): (0.5, 0.0),
    ("hotel", "Conflicts", "adqv"): (0.970, 1.0),
    ("hotel", "Conflicts", "gate"): (0.820, 0.640),
    ("hotel", "Conflicts", "dquag"): (1.0, 1.0),
    ("credit", "N,S,M", "deequ_auto"): (0.550, 1.0),
    ("credit", "N,S,M", "deequ_expert"): (0.970, 1.0),
    ("credit", "N", "tfdv_auto"): (0.5, 0.0),
    ("credit", "S,M", "tfdv_auto"): (1.0, 1.0),
    ("credit", "N,S,M", "tfdv_expert"): (1.0, 1.0),
    ("credit", "N,S,M", "adqv"): (0.960, 1.0),
    ("credit", "N,S,M", "gate"): (0.510, 1.0),
    ("credit", "N,S,M", "dquag"): (1.0, 1.0),
    ("credit", "Conflicts-1", "deequ_expert"): (0.5, 0.0),
    ("credit", "Conflicts-1", "tfdv_expert"): (0.5, 0.0),
    ("credit", "Conflicts-1", "adqv"): (0.5, 1.0),
    ("credit", "Conflicts-1", "gate"): (0.510, 1.0),
    ("credit", "Conflicts-1", "dquag"): (1.0, 1.0),
    ("credit", "Conflicts-2", "deequ_expert"): (0.5, 0.0),
    ("credit", "Conflicts-2", "tfdv_expert"): (0.5, 0.0),
    ("credit", "Conflicts-2", "adqv"): (0.960, 1.0),
    ("credit", "Conflicts-2", "gate"): (0.560, 1.0),
    ("credit", "Conflicts-2", "dquag"): (1.0, 1.0),
}


@dataclass
class Table1Result:
    """All (dataset, scenario, method) metrics plus rendering."""

    scale_name: str
    metrics: dict[tuple[str, str, str], BinaryMetrics] = field(default_factory=dict)

    def accuracy(self, dataset: str, scenario: str, method: str) -> float:
        return self.metrics[(dataset, scenario, method)].accuracy

    def recall(self, dataset: str, scenario: str, method: str) -> float:
        return self.metrics[(dataset, scenario, method)].recall

    def ordinary_average(self, dataset: str, method: str) -> tuple[float, float]:
        """Mean accuracy/recall over the N, S, M scenarios (paper's '*' rows)."""
        accs, recs = [], []
        for scenario in ("N", "S", "M"):
            metric = self.metrics[(dataset, scenario, method)]
            accs.append(metric.accuracy)
            recs.append(metric.recall)
        return sum(accs) / len(accs), sum(recs) / len(recs)

    def to_result_table(self) -> ResultTable:
        """The result as a wire-encodable :class:`ResultTable`."""
        table = ResultTable(
            f"Table 1 — synthetic error detection (scale={self.scale_name})",
            ["dataset", "errors", "method", "accuracy", "recall"],
        )
        for (dataset, scenario, method), metric in sorted(self.metrics.items()):
            table.add_row(dataset, scenario, method, metric.accuracy, metric.recall)
        table.add_note("paper: DQuaG = 1.0/1.0 everywhere; experts fail on conflicts (acc 0.5, recall 0)")
        return table

    def render(self) -> str:
        return self.to_result_table().render()


def run_table1(
    scale: "str | ExperimentScale | None" = None,
    seed: int = 0,
    datasets: tuple[str, ...] = ("hotel", "credit"),
    methods_subset: tuple[str, ...] | None = None,
) -> Table1Result:
    """Run the Table 1 experiment and return all metrics."""
    scale = resolve_scale(scale)
    result = Table1Result(scale_name=scale.name)
    for dataset in datasets:
        splits = get_splits(dataset, scale, seed)
        methods = dict(fit_baselines(splits, seed=seed))
        methods["dquag"] = get_pipeline(dataset, scale, seed)
        if methods_subset is not None:
            methods = {k: v for k, v in methods.items() if k in methods_subset}
        for scenario_name, injector in SYNTHETIC_SCENARIOS[dataset]().items():
            dirty, _ = injector.inject(splits.evaluation, rng=seed + 17)
            metrics = run_detection(
                methods,
                clean_table=splits.evaluation,
                dirty_table=dirty,
                n_batches=scale.n_batches,
                batch_size=splits.batch_size,
                seed=seed + 29,
            )
            for method_name, metric in metrics.items():
                result.metrics[(dataset, scenario_name, method_name)] = metric
    return result
