"""Figure 3 — real-world error detection on Airbnb, Bicycle, and App data.

The three real-world-error datasets ship (clean, dirty) pairs whose
dirty twin carries an organic error mixture. Every method is fitted on
clean training data and scored on the 50+50 batch protocol; the paper
reports accuracy bars (all recalls are 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets import get_generator
from repro.experiments.cache import get_pipeline, get_splits
from repro.experiments.harness import (
    ExperimentScale,
    fit_baselines,
    resolve_scale,
    run_detection,
)
from repro.experiments.reporting import ResultTable
from repro.metrics import BinaryMetrics
from repro.utils.rng import derive_rng, ensure_rng

__all__ = ["REALWORLD_DATASETS", "Figure3Result", "run_figure3", "PAPER_FIGURE3"]

REALWORLD_DATASETS = ("airbnb", "bicycle", "playstore")

# Approximate accuracies read off the paper's Figure 3 bars.
PAPER_FIGURE3 = {
    ("airbnb", "dquag"): 1.0,
    ("airbnb", "adqv"): 0.5,
    ("airbnb", "deequ_auto"): 0.6,
    ("airbnb", "deequ_expert"): 1.0,
    ("airbnb", "tfdv_auto"): 0.6,
    ("airbnb", "tfdv_expert"): 1.0,
    ("airbnb", "gate"): 0.5,
    ("bicycle", "dquag"): 1.0,
    ("bicycle", "adqv"): 0.5,
    ("bicycle", "deequ_auto"): 1.0,
    ("bicycle", "deequ_expert"): 1.0,
    ("bicycle", "tfdv_auto"): 1.0,
    ("bicycle", "tfdv_expert"): 1.0,
    ("bicycle", "gate"): 0.5,
    ("playstore", "dquag"): 1.0,
    ("playstore", "adqv"): 0.5,
    ("playstore", "deequ_auto"): 0.6,
    ("playstore", "deequ_expert"): 1.0,
    ("playstore", "tfdv_auto"): 0.6,
    ("playstore", "tfdv_expert"): 1.0,
    ("playstore", "gate"): 0.5,
}


@dataclass
class Figure3Result:
    scale_name: str
    metrics: dict[tuple[str, str], BinaryMetrics] = field(default_factory=dict)

    def accuracy(self, dataset: str, method: str) -> float:
        return self.metrics[(dataset, method)].accuracy

    def to_result_table(self) -> ResultTable:
        """The result as a wire-encodable :class:`ResultTable`."""
        table = ResultTable(
            f"Figure 3 — real-world error detection accuracy (scale={self.scale_name})",
            ["dataset", "method", "accuracy", "recall"],
        )
        for (dataset, method), metric in sorted(self.metrics.items()):
            table.add_row(dataset, method, metric.accuracy, metric.recall)
        table.add_note("paper: DQuaG and expert modes reach 1.0; ADQV/Gate flag everything on these datasets")
        return table

    def render(self) -> str:
        return self.to_result_table().render()


def run_figure3(
    scale: "str | ExperimentScale | None" = None,
    seed: int = 0,
    datasets: tuple[str, ...] = REALWORLD_DATASETS,
    methods_subset: tuple[str, ...] | None = None,
) -> Figure3Result:
    """Run the Figure 3 experiment."""
    scale = resolve_scale(scale)
    result = Figure3Result(scale_name=scale.name)
    for dataset in datasets:
        splits = get_splits(dataset, scale, seed)
        dirty, _ = get_generator(dataset).generate_dirty(
            splits.evaluation, rng=derive_rng(ensure_rng(seed), dataset, "figure3-dirty")
        )
        methods = dict(fit_baselines(splits, seed=seed))
        methods["dquag"] = get_pipeline(dataset, scale, seed)
        if methods_subset is not None:
            methods = {k: v for k, v in methods.items() if k in methods_subset}
        metrics = run_detection(
            methods,
            clean_table=splits.evaluation,
            dirty_table=dirty,
            n_batches=scale.n_batches,
            batch_size=splits.batch_size,
            seed=seed + 31,
        )
        for method_name, metric in metrics.items():
            result.metrics[(dataset, method_name)] = metric
    return result
