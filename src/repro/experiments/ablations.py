"""Ablations beyond the paper's Table 2 (DESIGN.md §6).

Three design choices of DQuaG are isolated, each measured by the same
separation metric as Table 2 (flagged-fraction difference between dirty
and clean batches, in percentage points, on the Hotel hidden-conflict
scenario — the regime the design choices exist for):

* **weighted validation loss** (§3.1.2) — the exponential down-weighting
  of high-error samples vs. plain MSE;
* **feature-graph source** — knowledge+statistics hybrid (default) vs.
  statistics-only vs. an uninformative star graph (no inferred edges);
* **threshold percentile** (§3.1.4) — 90 / 95 (paper) / 99.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import DQuaG, DQuaGConfig, ThresholdCalibration
from repro.data.batching import sample_validation_batches
from repro.errors import HotelGroupConflictInjector
from repro.experiments.cache import get_splits
from repro.experiments.harness import ExperimentScale, resolve_scale
from repro.experiments.reporting import ResultTable
from repro.graph import FeatureGraph

__all__ = ["AblationRow", "AblationResult", "run_ablations"]


@dataclass(frozen=True)
class AblationRow:
    ablation: str
    variant: str
    clean_flag_rate: float
    dirty_flag_rate: float

    @property
    def separation(self) -> float:
        """Percentage-point gap between dirty and clean flag rates."""
        return 100.0 * (self.dirty_flag_rate - self.clean_flag_rate)


@dataclass
class AblationResult:
    scale_name: str
    rows: list[AblationRow] = field(default_factory=list)

    def by_variant(self, ablation: str) -> dict[str, AblationRow]:
        return {row.variant: row for row in self.rows if row.ablation == ablation}

    def to_result_table(self) -> ResultTable:
        """The result as a wire-encodable :class:`ResultTable`."""
        table = ResultTable(
            f"Ablations — hidden-conflict separation on Hotel (scale={self.scale_name})",
            ["ablation", "variant", "clean flag %", "dirty flag %", "separation pp"],
        )
        for row in self.rows:
            table.add_row(
                row.ablation,
                row.variant,
                100.0 * row.clean_flag_rate,
                100.0 * row.dirty_flag_rate,
                row.separation,
            )
        table.add_note("defaults: weighted loss ON, hybrid graph, percentile 95")
        return table

    def render(self) -> str:
        return self.to_result_table().render()


def _measure(pipeline: DQuaG, clean_batches, dirty_batches) -> tuple[float, float]:
    clean = float(np.mean([pipeline.validate_batch(b).score for b in clean_batches]))
    dirty = float(np.mean([pipeline.validate_batch(b).score for b in dirty_batches]))
    return clean, dirty


def run_ablations(
    scale: "str | ExperimentScale | None" = None,
    seed: int = 0,
    n_batches: int | None = None,
) -> AblationResult:
    """Run all three ablations on the Hotel hidden-conflict scenario."""
    scale = resolve_scale(scale)
    result = AblationResult(scale_name=scale.name)
    splits = get_splits("hotel", scale, seed)
    dirty, _ = HotelGroupConflictInjector(fraction=0.2).inject(splits.evaluation, rng=seed + 3)
    batches = n_batches or max(scale.n_batches // 2, 5)
    clean_batches = sample_validation_batches(splits.evaluation, batches, size=splits.batch_size, rng=seed + 5)
    dirty_batches = sample_validation_batches(dirty, batches, size=splits.batch_size, rng=seed + 7)

    def fit(config: DQuaGConfig, feature_graph: FeatureGraph | None = None) -> DQuaG:
        return DQuaG(config).fit(
            splits.train,
            rng=seed,
            knowledge_edges=splits.knowledge_edges,
            calibration_table=splits.calibration,
            feature_graph=feature_graph,
        )

    base_kwargs = dict(hidden_dim=scale.hidden_dim, epochs=scale.epochs, seed=seed)

    # 1. Weighted validation loss on/off.
    for variant, temperature in [("weighted (paper)", None), ("unweighted", 1e9)]:
        pipeline = fit(DQuaGConfig(weighting_temperature=temperature, **base_kwargs))
        clean_rate, dirty_rate = _measure(pipeline, clean_batches, dirty_batches)
        result.rows.append(AblationRow("loss weighting", variant, clean_rate, dirty_rate))

    # 2. Feature-graph source.
    names = splits.train.schema.names
    star = FeatureGraph(names, []).with_isolated_connected()
    graph_variants: list[tuple[str, FeatureGraph | None, list | None]] = [
        ("hybrid (paper)", None, splits.knowledge_edges),
        ("statistics only", None, []),
        ("star (no inference)", star, None),
    ]
    for variant, graph, edges in graph_variants:
        pipeline = DQuaG(DQuaGConfig(**base_kwargs)).fit(
            splits.train,
            rng=seed,
            knowledge_edges=edges or None,
            calibration_table=splits.calibration,
            feature_graph=graph,
        )
        clean_rate, dirty_rate = _measure(pipeline, clean_batches, dirty_batches)
        result.rows.append(AblationRow("feature graph", variant, clean_rate, dirty_rate))

    # 3. Threshold percentile (reuses the hybrid model; recalibrates only).
    # Errors are scaled exactly as the validator scales them so the new
    # thresholds live in the same space — and come from the same compiled
    # engine that serves _measure(), so calibration and serving numerics
    # agree to the last bit (matching DQuaG.fit).
    reference = fit(DQuaGConfig(**base_kwargs))
    calib_matrix = reference.preprocessor.compile().transform(splits.calibration)
    errors_of = (
        reference.engine.reconstruction_errors
        if reference.engine is not None
        else reference.model.reconstruction_errors
    )
    calib_cell_errors = errors_of(calib_matrix)
    scales = reference._validator.feature_scales
    if scales is not None:
        calib_cell_errors = calib_cell_errors / scales[None, :]
    calib_errors = calib_cell_errors.mean(axis=1)
    for percentile in (90.0, 95.0, 99.0):
        reference.calibration = ThresholdCalibration.from_clean_errors(calib_errors, percentile=percentile)
        reference._validator.calibration = reference.calibration
        clean_rate, dirty_rate = _measure(reference, clean_batches, dirty_batches)
        result.rows.append(
            AblationRow("threshold percentile", f"p{percentile:.0f}", clean_rate, dirty_rate)
        )
    # Restore the paper's percentile on the shared object.
    reference.calibration = ThresholdCalibration.from_clean_errors(calib_errors, percentile=95.0)
    reference._validator.calibration = reference.calibration
    return result
