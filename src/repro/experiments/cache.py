"""Process-wide and on-disk memoization of expensive experiment artifacts.

Several experiments (Table 1, Figure 3, Table 3, §4.6) need the same
trained pipelines and data splits; training a GNN on the CPU autograd
substrate is the dominant cost, so fitted pipelines are cached twice:

* in-process, keyed by (dataset, scale, seed, architecture);
* on disk (``.repro_cache/`` in the repo root, or ``$REPRO_CACHE_DIR``),
  as model archives — a fresh process reloads weights instead of
  retraining. Data splits regenerate deterministically from the seed, so
  only weights + calibration need persisting.

Disable the disk layer with ``REPRO_NO_DISK_CACHE=1`` (tests that check
training behavior do this).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.core import DQuaG
from repro.exceptions import ReproError
from repro.experiments.harness import DataSplits, ExperimentScale, fit_dquag, prepare_splits
from repro.utils.logging import get_logger

__all__ = ["get_splits", "get_pipeline", "clear_cache", "disk_cache_dir"]

logger = get_logger("experiments.cache")

#: bump when model/preprocessing semantics change — stale weight archives
#: trained under different encodings must never be reused. v3: archives
#: now persist preprocessor state (runtime era, archive format v2);
#: pre-runtime archives are additionally rejected by the format check in
#: :mod:`repro.nn.serialization`. v4: encoder-side constant folding
#: changes engine summation order at the last bits, so calibrations
#: cached under v3 numerics must not be mixed with fresh validations.
CACHE_VERSION = 4

_SPLITS: dict[tuple, DataSplits] = {}
_PIPELINES: dict[tuple, DQuaG] = {}


def disk_cache_dir() -> Path | None:
    """Resolve the on-disk cache directory (None when disabled)."""
    if os.environ.get("REPRO_NO_DISK_CACHE"):
        return None
    configured = os.environ.get("REPRO_CACHE_DIR")
    if configured:
        return Path(configured)
    return Path(__file__).resolve().parents[3] / ".repro_cache"


def get_splits(dataset: str, scale: ExperimentScale, seed: int = 0) -> DataSplits:
    key = (dataset, scale.name, seed)
    if key not in _SPLITS:
        _SPLITS[key] = prepare_splits(dataset, scale, seed=seed)
    return _SPLITS[key]


def get_pipeline(
    dataset: str,
    scale: ExperimentScale,
    seed: int = 0,
    architecture: str = "gat_gin",
) -> DQuaG:
    key = (dataset, scale.name, seed, architecture)
    if key in _PIPELINES:
        return _PIPELINES[key]

    splits = get_splits(dataset, scale, seed)
    cache_dir = disk_cache_dir()
    archive = (
        cache_dir / f"{dataset}-{scale.name}-s{seed}-{architecture}-v{CACHE_VERSION}.npz"
        if cache_dir
        else None
    )

    pipeline: DQuaG | None = None
    if archive is not None and archive.exists():
        try:
            pipeline = DQuaG().load_weights(archive, splits.train)
            logger.info("loaded cached pipeline %s", archive.name)
        except (ReproError, KeyError, ValueError) as exc:
            logger.warning("stale pipeline cache %s (%s); retraining", archive.name, exc)
            pipeline = None

    if pipeline is None:
        logger.info("training DQuaG (%s, %s, seed=%d, %s)", dataset, scale.name, seed, architecture)
        pipeline = fit_dquag(splits, scale, seed=seed, architecture=architecture)
        if archive is not None:
            archive.parent.mkdir(parents=True, exist_ok=True)
            pipeline.save(archive)

    _PIPELINES[key] = pipeline
    return pipeline


def clear_cache() -> None:
    """Drop all in-process cached splits and pipelines (tests use this).

    The disk layer is left untouched; remove ``.repro_cache/`` manually
    or set ``REPRO_NO_DISK_CACHE=1`` to bypass it.
    """
    _SPLITS.clear()
    _PIPELINES.clear()
