"""Experiment harness: one module per paper table/figure (§4)."""

from repro.experiments.harness import (
    DataSplits,
    ExperimentScale,
    METHOD_ORDER,
    fit_baselines,
    fit_dquag,
    prepare_splits,
    resolve_scale,
    run_detection,
)
from repro.experiments.cache import clear_cache, get_pipeline, get_splits
from repro.experiments.reporting import ResultTable
from repro.experiments.synthetic import PAPER_TABLE1, Table1Result, run_table1
from repro.experiments.realworld import PAPER_FIGURE3, Figure3Result, run_figure3
from repro.experiments.encoders import ENCODER_ORDER, PAPER_TABLE2, Table2Result, run_table2
from repro.experiments.scalability import Figure4Result, run_figure4
from repro.experiments.sample_size import PAPER_TABLE3, Table3Result, run_table3
from repro.experiments.repair_eval import PAPER_REPAIR, RepairEvalResult, run_repair_eval
from repro.experiments.ablations import AblationResult, AblationRow, run_ablations
from repro.experiments.row_detection import RowDetectionResult, run_row_detection

__all__ = [
    "DataSplits",
    "ExperimentScale",
    "METHOD_ORDER",
    "fit_baselines",
    "fit_dquag",
    "prepare_splits",
    "resolve_scale",
    "run_detection",
    "clear_cache",
    "get_pipeline",
    "get_splits",
    "ResultTable",
    "PAPER_TABLE1",
    "Table1Result",
    "run_table1",
    "PAPER_FIGURE3",
    "Figure3Result",
    "run_figure3",
    "ENCODER_ORDER",
    "PAPER_TABLE2",
    "Table2Result",
    "run_table2",
    "Figure4Result",
    "run_figure4",
    "PAPER_TABLE3",
    "Table3Result",
    "run_table3",
    "PAPER_REPAIR",
    "RepairEvalResult",
    "run_repair_eval",
    "AblationResult",
    "AblationRow",
    "run_ablations",
    "RowDetectionResult",
    "run_row_detection",
]
