"""Command-line entry point: regenerate any paper table or figure.

Examples::

    repro-experiments table1 --scale fast
    repro-experiments figure4 --seed 7
    repro-experiments all --scale smoke --out results.json
    python -m repro.experiments.cli all --scale smoke
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments.ablations import run_ablations
from repro.experiments.encoders import run_table2
from repro.experiments.row_detection import run_row_detection
from repro.experiments.realworld import run_figure3
from repro.experiments.repair_eval import run_repair_eval
from repro.experiments.sample_size import run_table3
from repro.experiments.scalability import run_figure4
from repro.experiments.synthetic import run_table1
from repro.utils.logging import configure_demo_logging

__all__ = ["main", "EXPERIMENTS"]

EXPERIMENTS = {
    "table1": run_table1,
    "figure3": run_figure3,
    "table2": run_table2,
    "figure4": run_figure4,
    "table3": run_table3,
    "repair": run_repair_eval,
    "ablations": run_ablations,
    "rows": run_row_detection,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the DQuaG paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument("--scale", default=None, choices=["smoke", "fast", "standard", "full"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="PATH",
        help="additionally write results as JSON via the repro.api protocol",
    )
    parser.add_argument("--verbose", action="store_true", help="enable INFO logging")
    args = parser.parse_args(argv)

    if args.verbose:
        configure_demo_logging()

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    results: dict[str, dict] = {}
    for name in names:
        result = EXPERIMENTS[name](scale=args.scale, seed=args.seed)
        print(result.render())
        print()
        results[name] = result.to_result_table().to_dict()

    if args.out is not None:
        from repro.api.protocol import envelope

        payload = envelope("experiment_results")
        payload.update(scale=args.scale, seed=args.seed, results=results)
        # allow_nan=False: the file must be RFC 8259 JSON (non-Python
        # consumers reject NaN tokens); jsonable() already mapped
        # non-finite cells to null.
        args.out.write_text(json.dumps(payload, indent=2, allow_nan=False) + "\n")
        print(f"wrote {len(results)} result table(s) to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
