"""Table 3 — detection accuracy vs validation sample size (§4.5).

DQuaG's batch decision is applied to batches of 10 … 1000 rows on
Airbnb, Bicycle, and NY Taxi. Small batches make the 5%·n dataset rule
statistically noisy — exactly the paper's observed limitation — and
accuracy climbs to 1.0 as batches grow.

Airbnb and Bicycle use their real-world dirty twins; Taxi (clean-source)
gets the §4.1.2 synthetic ordinary errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.table import Table
from repro.datasets import get_generator
from repro.errors import CompositeInjector, MissingValueInjector, NumericAnomalyInjector, StringTypoInjector
from repro.experiments.cache import get_pipeline, get_splits
from repro.experiments.harness import ExperimentScale, resolve_scale, run_detection
from repro.experiments.reporting import ResultTable
from repro.metrics import BinaryMetrics
from repro.utils.rng import derive_rng, ensure_rng

__all__ = ["Table3Result", "run_table3", "DEFAULT_SAMPLE_SIZES", "PAPER_TABLE3"]

DEFAULT_SAMPLE_SIZES = (10, 20, 50, 100, 500, 1000)

# Paper Table 3: overall accuracy (%) by validation sample size.
PAPER_TABLE3 = {
    "airbnb": {10: 85.0, 20: 93.0, 50: 99.0, 100: 99.0, 500: 100.0, 1000: 100.0},
    "bicycle": {10: 86.0, 20: 92.0, 50: 89.0, 100: 97.0, 500: 100.0, 1000: 100.0},
    "taxi": {10: 83.0, 20: 89.0, 50: 98.0, 100: 97.0, 500: 100.0, 1000: 100.0},
}


def _dirty_table(dataset: str, evaluation: Table, seed: int) -> Table:
    generator = get_generator(dataset)
    if generator.has_real_world_errors:
        dirty, _ = generator.generate_dirty(evaluation, rng=derive_rng(ensure_rng(seed), dataset, "t3"))
        return dirty
    # Taxi: synthetic ordinary mixture (N + S + M on one attribute each).
    injector = CompositeInjector(
        [
            NumericAnomalyInjector(["fare_amount"], fraction=0.2),
            StringTypoInjector(["payment_type"], fraction=0.2),
            MissingValueInjector(["trip_distance"], fraction=0.2),
        ]
    )
    dirty, _ = injector.inject(evaluation, rng=derive_rng(ensure_rng(seed), dataset, "t3"))
    return dirty


@dataclass
class Table3Result:
    scale_name: str
    # (dataset, sample_size) -> metrics
    metrics: dict[tuple[str, int], BinaryMetrics] = field(default_factory=dict)

    def accuracy(self, dataset: str, sample_size: int) -> float:
        return self.metrics[(dataset, sample_size)].accuracy

    def accuracies(self, dataset: str) -> dict[int, float]:
        return {
            size: metric.accuracy for (ds, size), metric in self.metrics.items() if ds == dataset
        }

    def to_result_table(self) -> ResultTable:
        """The result as a wire-encodable :class:`ResultTable`."""
        sizes = sorted({size for _, size in self.metrics})
        table = ResultTable(
            f"Table 3 — DQuaG accuracy (%) vs sample size (scale={self.scale_name})",
            ["dataset"] + [str(s) for s in sizes],
        )
        datasets = sorted({dataset for dataset, _ in self.metrics})
        for dataset in datasets:
            row = [dataset]
            for size in sizes:
                metric = self.metrics.get((dataset, size))
                row.append(100.0 * metric.accuracy if metric else float("nan"))
            table.add_row(*row)
        table.add_note("paper: accuracy climbs with sample size, reaching 100% by ~500 samples")
        return table

    def render(self) -> str:
        return self.to_result_table().render()


def run_table3(
    scale: "str | ExperimentScale | None" = None,
    seed: int = 0,
    datasets: tuple[str, ...] = ("airbnb", "bicycle", "taxi"),
    sample_sizes: tuple[int, ...] = DEFAULT_SAMPLE_SIZES,
) -> Table3Result:
    """Run the sample-size sweep with DQuaG only (as in the paper)."""
    scale = resolve_scale(scale)
    result = Table3Result(scale_name=scale.name)
    for dataset in datasets:
        splits = get_splits(dataset, scale, seed)
        pipeline = get_pipeline(dataset, scale, seed)
        dirty = _dirty_table(dataset, splits.evaluation, seed)
        for size in sample_sizes:
            if size > splits.evaluation.n_rows:
                continue
            metrics = run_detection(
                {"dquag": pipeline},
                clean_table=splits.evaluation,
                dirty_table=dirty,
                n_batches=scale.n_batches,
                batch_size=size,
                seed=seed + size,
            )
            result.metrics[(dataset, size)] = metrics["dquag"]
    return result
