"""Figure 4 — scalability of validation time (§4.5).

Validation time of a trained DQuaG pipeline on the New York Taxi data,
sweeping the number of rows at 5 / 10 / 18 feature dimensions. The
paper's claim is *linear* scaling in both rows and dimensionality; the
result object fits a least-squares line per dimension and reports R².

Row counts default to {10k, 50k, 100k, 200k}; set ``REPRO_FULL_SCALE=1``
to extend to the paper's 10⁶ (CPU minutes, not hours).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.core import DQuaG, DQuaGConfig
from repro.datasets import TaxiGenerator
from repro.experiments.harness import ExperimentScale, resolve_scale
from repro.experiments.reporting import ResultTable
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer

__all__ = ["Figure4Result", "run_figure4", "DEFAULT_ROW_COUNTS"]

DEFAULT_ROW_COUNTS = (10_000, 50_000, 100_000, 200_000)
FULL_SCALE_ROW_COUNTS = (10_000, 100_000, 250_000, 500_000, 1_000_000)


@dataclass
class Figure4Result:
    scale_name: str
    # (n_dims, n_rows) -> seconds
    timings: dict[tuple[int, int], float] = field(default_factory=dict)

    def seconds(self, n_dims: int, n_rows: int) -> float:
        return self.timings[(n_dims, n_rows)]

    def linearity_r2(self, n_dims: int) -> float:
        """R² of a rows→seconds linear fit for one dimensionality."""
        points = sorted((rows, secs) for (dims, rows), secs in self.timings.items() if dims == n_dims)
        if len(points) < 3:
            raise ValueError(f"need >= 3 row counts for a fit, have {len(points)}")
        x = np.array([p[0] for p in points], dtype=float)
        y = np.array([p[1] for p in points], dtype=float)
        slope, intercept = np.polyfit(x, y, 1)
        predicted = slope * x + intercept
        residual = ((y - predicted) ** 2).sum()
        total = ((y - y.mean()) ** 2).sum()
        return 1.0 - residual / total if total > 0 else 1.0

    def to_result_table(self) -> ResultTable:
        """The result as a wire-encodable :class:`ResultTable`."""
        table = ResultTable(
            f"Figure 4 — validation time vs data size (scale={self.scale_name})",
            ["dims", "rows", "seconds"],
        )
        for (dims, rows), secs in sorted(self.timings.items()):
            table.add_row(dims, rows, secs)
        dims_list = sorted({d for d, _ in self.timings})
        for dims in dims_list:
            try:
                table.add_note(f"{dims} dims: linear-fit R² = {self.linearity_r2(dims):.4f}")
            except ValueError:
                pass
        table.add_note("paper: time grows linearly in rows and dimensionality (~10 min at 10⁶ rows on an A100)")
        return table

    def render(self) -> str:
        return self.to_result_table().render()


def run_figure4(
    scale: "str | ExperimentScale | None" = None,
    seed: int = 0,
    dimensions: tuple[int, ...] = (5, 10, 18),
    row_counts: tuple[int, ...] | None = None,
) -> Figure4Result:
    """Train per-dimension pipelines and time validation at each size."""
    scale = resolve_scale(scale)
    if row_counts is None:
        if os.environ.get("REPRO_FULL_SCALE"):
            row_counts = FULL_SCALE_ROW_COUNTS
        elif scale.name == "smoke":
            row_counts = (1_000, 3_000, 6_000, 10_000)
        else:
            row_counts = DEFAULT_ROW_COUNTS

    generator = TaxiGenerator()
    subsets = TaxiGenerator.dimension_subsets()
    max_rows = max(row_counts)
    full_table = generator.generate_clean(max_rows, rng=ensure_rng(seed))
    train_full = generator.generate_clean(scale.train_rows, rng=ensure_rng(seed + 1))

    result = Figure4Result(scale_name=scale.name)
    for dims in dimensions:
        if dims not in subsets:
            raise ValueError(f"no column subset for {dims} dims; have {sorted(subsets)}")
        columns = subsets[dims]
        train = train_full.select(columns)
        evaluation = full_table.select(columns)
        config = DQuaGConfig(hidden_dim=scale.hidden_dim, epochs=scale.epochs, seed=seed)
        pipeline = _fit_cached(dims, scale, seed, config, train, generator, columns)
        # One warm-up pass so first-touch allocation noise stays out of timings.
        pipeline.validate(evaluation.head(min(1000, max_rows)))
        for rows in row_counts:
            subset = evaluation.head(rows)
            best = float("inf")
            for _ in range(2):  # best-of-2 damps allocator/GC noise
                with Timer() as timer:
                    pipeline.validate(subset)
                best = min(best, timer.elapsed)
            result.timings[(dims, rows)] = best
    return result


def _subset_edges(generator: TaxiGenerator, columns: list[str]) -> list[tuple[str, str]]:
    keep = set(columns)
    return [(a, b) for a, b in generator.knowledge_edges() if a in keep and b in keep]


def _fit_cached(dims, scale, seed, config, train, generator, columns) -> DQuaG:
    """Fit (or reload) the per-dimension pipeline via the experiment disk
    cache — training is not what Figure 4 measures."""
    from repro.experiments.cache import CACHE_VERSION, disk_cache_dir

    cache_dir = disk_cache_dir()
    archive = (
        cache_dir / f"taxi{dims}d-{scale.name}-s{seed}-figure4-v{CACHE_VERSION}.npz"
        if cache_dir
        else None
    )
    if archive is not None and archive.exists():
        try:
            return DQuaG().load_weights(archive, train)
        except Exception:  # stale or corrupt archive — retrain below
            pass
    pipeline = DQuaG(config).fit(train, rng=seed, knowledge_edges=_subset_edges(generator, columns))
    if archive is not None:
        archive.parent.mkdir(parents=True, exist_ok=True)
        pipeline.save(archive)
    return pipeline
