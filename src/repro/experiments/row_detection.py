"""Row-level detection quality (extension; the paper reports batch level).

The paper's protocol judges *batches*; its motivation, however, is
pinpointing "the indices of all instances ... clearly identifying
problematic samples" (§3.2.1). This experiment scores that claim
directly: per dataset and error scenario, DQuaG's flagged row indices
are compared against the injection ground truth, reporting precision /
recall / F1. The row-capable baselines (Deequ expert, TFDV expert) are
included; ADQV and Gate cannot pinpoint rows (their documented gap).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines import DeequValidator, TFDVValidator
from repro.experiments.cache import get_pipeline, get_splits
from repro.experiments.harness import ExperimentScale, resolve_scale
from repro.experiments.reporting import ResultTable
from repro.experiments.synthetic import SYNTHETIC_SCENARIOS
from repro.metrics import RowDetectionMetrics, row_detection_metrics
from repro.utils.rng import spawn_seeds

__all__ = ["RowDetectionResult", "run_row_detection"]


@dataclass
class RowDetectionResult:
    scale_name: str
    # (dataset, scenario, method) -> metrics
    metrics: dict[tuple[str, str, str], RowDetectionMetrics] = field(default_factory=dict)

    def f1(self, dataset: str, scenario: str, method: str) -> float:
        return self.metrics[(dataset, scenario, method)].f1

    def to_result_table(self) -> ResultTable:
        """The result as a wire-encodable :class:`ResultTable`."""
        table = ResultTable(
            f"Row-level detection vs injection ground truth (scale={self.scale_name})",
            ["dataset", "errors", "method", "precision", "recall", "f1"],
        )
        for (dataset, scenario, method), m in sorted(self.metrics.items()):
            table.add_row(dataset, scenario, method, m.precision, m.recall, m.f1)
        table.add_note("extension: the paper evaluates batch-level only; ADQV/Gate cannot flag rows at all")
        return table

    def render(self) -> str:
        return self.to_result_table().render()


def run_row_detection(
    scale: "str | ExperimentScale | None" = None,
    seed: int = 0,
    datasets: tuple[str, ...] = ("hotel", "credit"),
    methods_subset: tuple[str, ...] | None = None,
) -> RowDetectionResult:
    """Score row pinpointing on the Table 1 scenarios."""
    scale = resolve_scale(scale)
    result = RowDetectionResult(scale_name=scale.name)
    for dataset in datasets:
        splits = get_splits(dataset, scale, seed)
        methods = {
            "dquag": get_pipeline(dataset, scale, seed),
            "deequ_expert": DeequValidator("expert"),
            "tfdv_expert": TFDVValidator("expert"),
        }
        if methods_subset is not None:
            methods = {k: v for k, v in methods.items() if k in methods_subset}
        for method_seed, (name, method) in zip(spawn_seeds(seed, len(methods)), methods.items()):
            if name != "dquag":
                method.fit(splits.train, rng=method_seed)
        for scenario_name, injector in SYNTHETIC_SCENARIOS[dataset]().items():
            dirty, truth = injector.inject(splits.evaluation, rng=seed + 17)
            true_rows = np.flatnonzero(truth.row_mask)
            for method_name, method in methods.items():
                verdict = method.validate_batch(dirty)
                result.metrics[(dataset, scenario_name, method_name)] = row_detection_metrics(
                    true_rows, verdict.flagged_rows, dirty.n_rows
                )
    return result
