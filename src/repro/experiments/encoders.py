"""Table 2 — encoder-architecture ablation (§4.4).

For each of the five encoders (Graph2Vec, GCN, GCN+GAT, GCN+GIN,
GAT+GIN) a full pipeline is trained on clean Airbnb / Bicycle data, and
the metric is the *difference in flagged errors* between dirty and clean
batches — mean flagged-row fraction over dirty batches minus over clean
batches, in percentage points. A larger difference means the encoder
separates clean from dirty data more sharply.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets import get_generator
from repro.data.batching import sample_validation_batches
from repro.experiments.cache import get_pipeline, get_splits
from repro.experiments.harness import ExperimentScale, resolve_scale
from repro.experiments.reporting import ResultTable
from repro.utils.rng import derive_rng, ensure_rng

__all__ = ["ENCODER_ORDER", "Table2Result", "run_table2", "PAPER_TABLE2"]

ENCODER_ORDER = ("graph2vec", "gcn", "gcn_gat", "gcn_gin", "gat_gin")

# Paper Table 2: difference (%) in flagged errors, clean vs dirty.
PAPER_TABLE2 = {
    ("airbnb", "graph2vec"): 2.72,
    ("airbnb", "gcn"): 1.83,
    ("airbnb", "gcn_gat"): 2.60,
    ("airbnb", "gcn_gin"): 4.55,
    ("airbnb", "gat_gin"): 4.17,
    ("bicycle", "graph2vec"): 21.49,
    ("bicycle", "gcn"): 11.06,
    ("bicycle", "gcn_gat"): 12.36,
    ("bicycle", "gcn_gin"): 17.51,
    ("bicycle", "gat_gin"): 21.72,
}


@dataclass
class Table2Result:
    scale_name: str
    # (dataset, architecture) -> flagged-difference in percentage points
    differences: dict[tuple[str, str], float] = field(default_factory=dict)

    def difference(self, dataset: str, architecture: str) -> float:
        return self.differences[(dataset, architecture)]

    def best_architecture(self, dataset: str) -> str:
        candidates = {a: d for (ds, a), d in self.differences.items() if ds == dataset}
        return max(candidates, key=candidates.get)

    def to_result_table(self) -> ResultTable:
        """The result as a wire-encodable :class:`ResultTable`."""
        table = ResultTable(
            f"Table 2 — encoder ablation: flagged-error difference %, dirty − clean (scale={self.scale_name})",
            ["dataset"] + list(ENCODER_ORDER),
        )
        datasets = sorted({dataset for dataset, _ in self.differences})
        for dataset in datasets:
            table.add_row(
                dataset,
                *[self.differences.get((dataset, arch), float("nan")) for arch in ENCODER_ORDER],
            )
        table.add_note("paper: GAT+GIN separates best (Airbnb 4.17, Bicycle 21.72); plain GCN is weakest")
        return table

    def render(self) -> str:
        return self.to_result_table().render()


def run_table2(
    scale: "str | ExperimentScale | None" = None,
    seed: int = 0,
    datasets: tuple[str, ...] = ("airbnb", "bicycle"),
    architectures: tuple[str, ...] = ENCODER_ORDER,
    n_batches: int | None = None,
) -> Table2Result:
    """Run the encoder ablation."""
    scale = resolve_scale(scale)
    result = Table2Result(scale_name=scale.name)
    for dataset in datasets:
        splits = get_splits(dataset, scale, seed)
        dirty, _ = get_generator(dataset).generate_dirty(
            splits.evaluation, rng=derive_rng(ensure_rng(seed), dataset, "table2-dirty")
        )
        batches = n_batches or max(scale.n_batches // 2, 5)
        clean_batches = sample_validation_batches(
            splits.evaluation, batches, size=splits.batch_size, rng=seed + 41
        )
        dirty_batches = sample_validation_batches(dirty, batches, size=splits.batch_size, rng=seed + 43)
        for architecture in architectures:
            pipeline = get_pipeline(dataset, scale, seed, architecture=architecture)
            clean_fractions = [pipeline.validate_batch(b).score for b in clean_batches]
            dirty_fractions = [pipeline.validate_batch(b).score for b in dirty_batches]
            difference = 100.0 * (float(np.mean(dirty_fractions)) - float(np.mean(clean_fractions)))
            result.differences[(dataset, architecture)] = difference
    return result
