"""§4.6 — data-repair evaluation on Airbnb and Bicycle.

Protocol: validate the dirty dataset (error rate = flagged-row
fraction), apply repair-decoder suggestions to flagged cells, re-validate
the repaired dataset, and compare against the clean dataset's own rate.
The paper reports Airbnb 10.52% → 4.97% (clean: 4.95%) and Bicycle
21.11% → 2.75%, with the repaired data classified clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets import get_generator
from repro.experiments.cache import get_pipeline, get_splits
from repro.experiments.harness import ExperimentScale, resolve_scale
from repro.experiments.reporting import ResultTable
from repro.utils.rng import derive_rng, ensure_rng

__all__ = ["RepairOutcome", "RepairEvalResult", "run_repair_eval", "PAPER_REPAIR"]

# Paper §4.6: (dirty %, repaired %, clean reference %).
PAPER_REPAIR = {
    "airbnb": (10.52, 4.97, 4.95),
    "bicycle": (21.11, 2.75, None),
}


@dataclass(frozen=True)
class RepairOutcome:
    dataset: str
    dirty_error_rate: float
    repaired_error_rate: float
    clean_error_rate: float
    repaired_classified_clean: bool
    n_cells_repaired: int


@dataclass
class RepairEvalResult:
    scale_name: str
    outcomes: dict[str, RepairOutcome] = field(default_factory=dict)

    def to_result_table(self) -> ResultTable:
        """The result as a wire-encodable :class:`ResultTable`."""
        table = ResultTable(
            f"§4.6 — repair evaluation (scale={self.scale_name})",
            ["dataset", "dirty %", "repaired %", "clean %", "classified clean", "cells repaired"],
        )
        for dataset, outcome in sorted(self.outcomes.items()):
            table.add_row(
                dataset,
                100.0 * outcome.dirty_error_rate,
                100.0 * outcome.repaired_error_rate,
                100.0 * outcome.clean_error_rate,
                "yes" if outcome.repaired_classified_clean else "no",
                outcome.n_cells_repaired,
            )
        table.add_note("paper: Airbnb 10.52% → 4.97% (clean 4.95%); Bicycle 21.11% → 2.75%; repaired data classified clean")
        return table

    def render(self) -> str:
        return self.to_result_table().render()


def run_repair_eval(
    scale: "str | ExperimentScale | None" = None,
    seed: int = 0,
    datasets: tuple[str, ...] = ("airbnb", "bicycle"),
    repair_iterations: int = 3,
) -> RepairEvalResult:
    """Run the repair experiment on the real-world-error datasets."""
    scale = resolve_scale(scale)
    result = RepairEvalResult(scale_name=scale.name)
    for dataset in datasets:
        splits = get_splits(dataset, scale, seed)
        pipeline = get_pipeline(dataset, scale, seed)
        dirty, _ = get_generator(dataset).generate_dirty(
            splits.evaluation, rng=derive_rng(ensure_rng(seed), dataset, "repair-dirty")
        )

        clean_report = pipeline.validate(splits.evaluation)
        dirty_report = pipeline.validate(dirty)
        repaired, summary = pipeline.repair(dirty, dirty_report, iterations=repair_iterations)
        repaired_report = pipeline.validate(repaired)

        result.outcomes[dataset] = RepairOutcome(
            dataset=dataset,
            dirty_error_rate=dirty_report.flagged_fraction,
            repaired_error_rate=repaired_report.flagged_fraction,
            clean_error_rate=clean_report.flagged_fraction,
            repaired_classified_clean=not repaired_report.is_problematic,
            n_cells_repaired=summary.n_cells_repaired,
        )
    return result
