"""Shared experiment infrastructure.

Implements the paper's evaluation protocol (§4.2): split a dataset into
train / calibration / evaluation parts, fit every method on the clean
training data, draw N clean and N dirty batches (10% of the evaluation
table each), and score each method's batch verdicts as binary
classifications.

Scales
------
Experiments run at one of four scales (env ``REPRO_SCALE`` or explicit):

========  ======= ===== ====== ====== ======== =========
scale     n_rows  train calib  epochs hidden   batches/side
========  ======= ===== ====== ====== ======== =========
smoke       1200    500   300     4     16        6
fast        8000   2000  1500    12     32       15
standard   16000   3000  2000    22     64       25
full       20000   4000  2500    40     64       50
========  ======= ===== ====== ====== ======== =========

``full`` matches the paper's 50+50 batches and §4.4 hyperparameters;
lower scales preserve every qualitative outcome at a fraction of the
wall-clock (the substrate is a CPU autograd engine, not an A100).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.baselines import (
    ADQVValidator,
    BaselineValidator,
    DeequValidator,
    GateValidator,
    TFDVValidator,
)
from repro.core import DQuaG, DQuaGConfig
from repro.data.batching import sample_validation_batches
from repro.data.table import Table
from repro.datasets import get_generator
from repro.metrics import BinaryMetrics, evaluate_predictions
from repro.utils.logging import get_logger
from repro.utils.rng import derive_rng, ensure_rng, spawn_seeds

__all__ = [
    "ExperimentScale",
    "resolve_scale",
    "DataSplits",
    "prepare_splits",
    "fit_dquag",
    "fit_baselines",
    "run_detection",
    "METHOD_ORDER",
]

logger = get_logger("experiments.harness")

METHOD_ORDER = ["dquag", "adqv", "deequ_auto", "deequ_expert", "tfdv_auto", "tfdv_expert", "gate"]


@dataclass(frozen=True)
class ExperimentScale:
    """Resource envelope of one experiment run."""

    name: str
    n_rows: int
    train_rows: int
    calib_rows: int
    epochs: int
    hidden_dim: int
    n_batches: int
    batch_fraction: float = 0.1

    @staticmethod
    def smoke() -> "ExperimentScale":
        return ExperimentScale("smoke", 1200, 500, 300, 4, 16, 6)

    @staticmethod
    def fast() -> "ExperimentScale":
        return ExperimentScale("fast", 8000, 2000, 1500, 12, 32, 15)

    @staticmethod
    def standard() -> "ExperimentScale":
        return ExperimentScale("standard", 16000, 3000, 2000, 22, 64, 25)

    @staticmethod
    def full() -> "ExperimentScale":
        return ExperimentScale("full", 20000, 4000, 2500, 40, 64, 50)


_SCALES = {
    "smoke": ExperimentScale.smoke,
    "fast": ExperimentScale.fast,
    "standard": ExperimentScale.standard,
    "full": ExperimentScale.full,
}


def resolve_scale(scale: "str | ExperimentScale | None" = None) -> ExperimentScale:
    """Resolve a scale name / instance / the ``REPRO_SCALE`` env default."""
    if isinstance(scale, ExperimentScale):
        return scale
    name = scale or os.environ.get("REPRO_SCALE", "standard")
    try:
        return _SCALES[name]()
    except KeyError:
        raise ValueError(f"unknown scale {name!r}; choose from {sorted(_SCALES)}") from None


@dataclass
class DataSplits:
    """Disjoint clean splits of one dataset plus protocol metadata."""

    dataset: str
    train: Table
    calibration: Table
    evaluation: Table
    batch_size: int
    knowledge_edges: list[tuple[str, str]]


def prepare_splits(dataset: str, scale: ExperimentScale, seed: int = 0) -> DataSplits:
    """Generate a dataset and cut the train/calibration/evaluation splits."""
    generator = get_generator(dataset)
    clean = generator.generate_clean(scale.n_rows, rng=ensure_rng(seed))
    train = clean.take(np.arange(0, scale.train_rows))
    calibration = clean.take(np.arange(scale.train_rows, scale.train_rows + scale.calib_rows))
    evaluation = clean.take(np.arange(scale.train_rows + scale.calib_rows, clean.n_rows))
    batch_size = max(1, int(round(evaluation.n_rows * scale.batch_fraction)))
    return DataSplits(
        dataset=dataset,
        train=train,
        calibration=calibration,
        evaluation=evaluation,
        batch_size=batch_size,
        knowledge_edges=generator.knowledge_edges(),
    )


def fit_dquag(
    splits: DataSplits,
    scale: ExperimentScale,
    seed: int = 0,
    architecture: str = "gat_gin",
) -> DQuaG:
    """Fit the DQuaG pipeline at the given scale."""
    config = DQuaGConfig(
        architecture=architecture,
        hidden_dim=scale.hidden_dim,
        epochs=scale.epochs,
        seed=seed,
    )
    pipeline = DQuaG(config)
    pipeline.fit(
        splits.train,
        rng=seed,
        knowledge_edges=splits.knowledge_edges,
        calibration_table=splits.calibration,
    )
    return pipeline


def fit_baselines(splits: DataSplits, seed: int = 0) -> dict[str, BaselineValidator]:
    """Fit the six baseline configurations on the clean training data."""
    methods: dict[str, BaselineValidator] = {
        "deequ_auto": DeequValidator("auto"),
        "deequ_expert": DeequValidator("expert"),
        "tfdv_auto": TFDVValidator("auto"),
        "tfdv_expert": TFDVValidator("expert"),
        "adqv": ADQVValidator(reference_batch_size=splits.batch_size),
        "gate": GateValidator(reference_batch_size=splits.batch_size),
    }
    seeds = spawn_seeds(seed, len(methods))
    for method_seed, method in zip(seeds, methods.values()):
        method.fit(splits.train, rng=method_seed)
    return methods


def run_detection(
    methods: dict[str, BaselineValidator],
    clean_table: Table,
    dirty_table: Table,
    n_batches: int,
    batch_size: int,
    seed: int = 0,
) -> dict[str, BinaryMetrics]:
    """The §4.2 protocol: N clean + N dirty batches, scored per method."""
    generator = ensure_rng(seed)
    clean_batches = sample_validation_batches(
        clean_table, n_batches, size=min(batch_size, clean_table.n_rows), rng=derive_rng(generator, "clean")
    )
    dirty_batches = sample_validation_batches(
        dirty_table, n_batches, size=min(batch_size, dirty_table.n_rows), rng=derive_rng(generator, "dirty")
    )
    batches = clean_batches + dirty_batches
    labels = [False] * len(clean_batches) + [True] * len(dirty_batches)

    results: dict[str, BinaryMetrics] = {}
    for name, method in methods.items():
        predictions = [method.validate_batch(batch).is_problematic for batch in batches]
        results[name] = evaluate_predictions(labels, predictions)
        logger.debug("%s: acc=%.3f recall=%.3f", name, results[name].accuracy, results[name].recall)
    return results
