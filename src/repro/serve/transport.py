"""Asyncio HTTP transport — the thin half of the gateway.

:class:`AsyncGateway` serves the exact same ``/v1`` routes as the
threaded :class:`~repro.serve.gateway.ValidationGateway` — health,
pipeline stats, metrics, monitor, rules, validate, repair,
validate_stream, on both the JSON and binary-frame wire tiers, with
gzip negotiation — but without a thread per connection: a single
``asyncio`` event loop parses HTTP, reads bodies incrementally, and
hands compute off elsewhere. The transport itself never blocks:

* **validate** requests go to the
  :class:`~repro.serve.scheduler.RequestScheduler` (the fat half),
  which coalesces concurrent small requests for the same pipeline into
  one fused engine slab and resolves each request's future with its own
  bit-identical report. A full queue surfaces as HTTP 429 +
  ``Retry-After`` — admission control instead of unbounded latency.
  ``?workers=N`` sharded requests bypass the scheduler (they manage
  their own parallelism) and run on the gateway's executor;
* **repair** and other engine work run on a small thread pool
  (``loop.run_in_executor``) — the NumPy kernels release the GIL, so
  slabs overlap while the loop keeps accepting connections;
* **validate_stream** bodies (NDJSON lines or back-to-back frames) are
  split incrementally on the loop and validated chunk-by-chunk on the
  executor, so memory stays O(chunk) regardless of stream length.

The scheduler is owned by default (constructed from the gateway's
``batch_window_ms`` / ``max_batch_rows`` / ``max_queue_depth`` /
``qos_weights`` knobs and attached to the service so
:meth:`ValidationService.submit` coalesces too); passing ``scheduler=``
shares an external one whose lifecycle stays with its creator.

``close()`` drains: the listener stops, in-flight requests get
``drain_timeout`` seconds to finish, idle keep-alive connections are
cancelled, the owned scheduler flushes its queues, and the service's
shard pools close — the same graceful-shutdown contract as the
threaded gateway.

The error contract is shared verbatim with the threaded transport
(:func:`~repro.serve.gateway.failure_status`): 400 malformed, 404
unknown, 413 oversized, 422 rule config, 429 admission, 503 transient,
500 internal.
"""

from __future__ import annotations

import asyncio
import gzip
import json
import os
import queue
import threading
import zlib
from concurrent.futures import ThreadPoolExecutor
from http import HTTPStatus
from typing import AsyncIterator
from urllib.parse import unquote, urlsplit

from repro.api import framing
from repro.api.protocol import SCHEMA_VERSION, envelope
from repro.api.requests import RepairRequest, ValidateRequest
from repro.data.table import Table
from repro.exceptions import SchemaError, ValidationError
from repro.monitor.export import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.runtime.streaming import StreamingValidator
from repro.serve.gateway import (
    _MONITOR_ROUTE,
    _ROUTE,
    _RULES_ROUTE,
    _RequestError,
    _error_payload,
    accepts_gzip,
    failure_status,
    format_retry_after,
    health_payload,
    parse_query_flag,
    parse_query_workers,
)
from repro.serve.scheduler import RequestScheduler
from repro.utils.logging import get_logger

__all__ = ["AsyncGateway"]

logger = get_logger("serve.transport")

#: per-line ceiling for the request line and each header line
_MAX_LINE = 65536
_MAX_HEADERS = 200
_BLOCK = 65536


class _Request:
    """One parsed request head; the body stays on the stream reader."""

    __slots__ = ("method", "path", "query", "headers")

    def __init__(self, method: str, target: str, headers: "dict[str, str]") -> None:
        self.method = method
        parts = urlsplit(target)
        self.path = parts.path
        self.query = parts.query
        self.headers = headers

    def header(self, name: str) -> str | None:
        return self.headers.get(name)


class _BodyReader:
    """Incremental request-body access mirroring the threaded transport.

    The same three layers: transport framing (Content-Length or chunked,
    with declared sizes checked *before* allocation), optional gzip
    inflation (the body limit re-imposed on the decompressed size), and
    a ``bound_total`` switch — on for endpoints that buffer the whole
    body, off for the streaming endpoint whose total length is unbounded
    by design while per-block memory stays capped.
    """

    def __init__(self, reader: asyncio.StreamReader, request: _Request, limit: int) -> None:
        self.reader = reader
        self.request = request
        self.limit = limit
        #: whether body bytes were pulled off the socket at all — a
        #: request whose declared body was never consumed poisons
        #: keep-alive (the remainder would parse as the next request)
        self.started = False

    def declares_body(self) -> bool:
        headers = self.request.headers
        if "chunked" in (headers.get("transfer-encoding") or "").lower():
            return True
        try:
            return int(headers.get("content-length") or 0) > 0
        except ValueError:
            return True

    async def read_all(self) -> bytes:
        pieces = []
        async for block in self.iter_blocks(bound_total=True):
            pieces.append(block)
        return b"".join(pieces)

    def _limit_error(self) -> _RequestError:
        return _RequestError(
            413,
            f"request body exceeds the configured limit ({self.limit} bytes)",
        )

    async def iter_blocks(self, bound_total: bool) -> AsyncIterator[bytes]:
        self.started = True
        encoding = (self.request.header("content-encoding") or "").strip().lower()
        if encoding in ("", "identity"):
            async for block in self._iter_transport(bound_total):
                yield block
            return
        if encoding != "gzip":
            raise _RequestError(
                415, f"unsupported Content-Encoding {encoding!r}; use gzip or identity"
            )
        async for block in self._iter_gunzip(bound_total):
            yield block

    async def _iter_gunzip(self, bound_total: bool) -> AsyncIterator[bytes]:
        decompressor = zlib.decompressobj(16 + zlib.MAX_WBITS)  # gzip wrapper
        total = 0

        def bounded(piece: bytes) -> bytes:
            nonlocal total
            total += len(piece)
            if bound_total and total > self.limit:
                raise self._limit_error()
            return piece

        try:
            async for block in self._iter_transport(bound_total=False):
                data = decompressor.decompress(block, _BLOCK)
                while True:
                    if data:
                        yield bounded(data)
                    if not decompressor.unconsumed_tail:
                        break
                    data = decompressor.decompress(decompressor.unconsumed_tail, _BLOCK)
            tail = decompressor.flush()
        except zlib.error as exc:
            raise _RequestError(400, f"malformed gzip request body: {exc}") from None
        if tail:
            yield bounded(tail)
        if not decompressor.eof:
            raise _RequestError(400, "truncated gzip request body")

    async def _iter_transport(self, bound_total: bool) -> AsyncIterator[bytes]:
        transfer = (self.request.header("transfer-encoding") or "").lower()
        if "chunked" in transfer:
            async for block in self._iter_chunked(bound_total):
                yield block
            return
        try:
            remaining = int(self.request.header("content-length") or 0)
        except ValueError:
            raise _RequestError(400, "malformed Content-Length header") from None
        if bound_total and remaining > self.limit:
            raise self._limit_error()
        while remaining > 0:
            block = await self.reader.read(min(remaining, _BLOCK))
            if not block:
                break
            remaining -= len(block)
            yield block

    async def _iter_chunked(self, bound_total: bool) -> AsyncIterator[bytes]:
        total = 0
        while True:
            size_line = (await self.reader.readline()).strip()
            try:
                size = int(size_line.split(b";", 1)[0], 16)
            except ValueError:
                raise _RequestError(400, "malformed chunked transfer encoding") from None
            if size == 0:
                # Consume optional trailers up to the terminating blank line.
                while (await self.reader.readline()).strip():
                    pass
                return
            if size > self.limit:
                raise self._limit_error()
            if bound_total:
                total += size
                if total > self.limit:
                    raise self._limit_error()
            yield await self.reader.readexactly(size)
            await self.reader.readexactly(2)  # trailing CRLF


class _SlabBody:
    """Stream-body source backed by an attached shared-memory slab.

    Stands in for :class:`_BodyReader` on ``X-Repro-Shm`` requests (the
    same-host router scatter path): the chunk bytes already sit in a
    slab this process can map, so nothing crosses the socket. The HTTP
    request itself carries an empty body — ``declares_body()`` is False,
    keeping the dispatcher's keep-alive accounting truthful.
    """

    def __init__(self, slab, size: int) -> None:
        self._slab = slab
        self._size = size
        self.started = False

    def declares_body(self) -> bool:
        return False

    async def iter_blocks(self, bound_total: bool) -> AsyncIterator[bytes]:
        self.started = True
        view = self._slab.buf
        for start in range(0, self._size, _BLOCK):
            yield bytes(view[start : min(start + _BLOCK, self._size)])

    def close(self) -> None:
        self._slab.close()


class AsyncGateway:
    """Event-loop HTTP front over a :class:`ValidationService`.

    >>> with AsyncGateway(service, port=0) as gateway:    # doctest: +SKIP
    ...     print(gateway.url)                            # doctest: +SKIP

    Same constructor contract as the threaded gateway plus the scheduler
    knobs (``batch_window_ms``, ``max_batch_rows``, ``max_queue_depth``,
    ``qos_weights``); ``start()`` serves from a daemon thread,
    ``serve_forever()`` on the calling thread, ``port=0`` binds an
    ephemeral port (readable after the server is up).
    """

    #: default request-body ceiling: 64 MiB (same as the threaded gateway)
    DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024

    #: how long close() waits for in-flight requests
    DEFAULT_DRAIN_TIMEOUT = 10.0

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 8080,
        max_body_bytes: int | None = None,
        scheduler: RequestScheduler | None = None,
        batch_window_ms: float = 2.0,
        max_batch_rows: int = 8192,
        max_queue_depth: int = 1024,
        qos_weights: "dict[str, float] | None" = None,
        shm_ingest: bool = False,
    ) -> None:
        if shm_ingest:
            # Only advertise what can actually be attached here.
            from repro.runtime.shm import shm_available

            shm_ingest = shm_available()
        self.shm_ingest = bool(shm_ingest)
        self.service = service
        self.host = host
        self._requested_port = port
        self._port: int | None = None
        self.max_body_bytes = (
            self.DEFAULT_MAX_BODY_BYTES if max_body_bytes is None else int(max_body_bytes)
        )
        if self.max_body_bytes < 1:
            raise ValueError(f"max_body_bytes must be positive, got {max_body_bytes}")
        self._owns_scheduler = scheduler is None
        self.scheduler = (
            RequestScheduler(
                service,
                batch_window_ms=batch_window_ms,
                max_batch_rows=max_batch_rows,
                max_queue_depth=max_queue_depth,
                qos_weights=qos_weights,
            )
            if scheduler is None
            else scheduler
        )
        # submit()/submit_many() on the service now coalesce too.
        service.attach_scheduler(self.scheduler)
        cpus = os.cpu_count() or 4
        self._executor = ThreadPoolExecutor(
            max_workers=max(8, min(32, cpus * 4)), thread_name_prefix="repro-aserve"
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._stopped = threading.Event()
        self._startup_error: BaseException | None = None
        self._active = 0
        self._conn_tasks: "set[asyncio.Task]" = set()
        self._closed = False
        self._draining = False
        self._drain_timeout = self.DEFAULT_DRAIN_TIMEOUT

    # -- lifecycle ---------------------------------------------------------
    @property
    def port(self) -> int:
        return self._requested_port if self._port is None else self._port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "AsyncGateway":
        """Serve from a background daemon thread; returns once bound."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run_loop, name="repro-aserve", daemon=True
            )
            self._thread.start()
            self._ready.wait(timeout=30.0)
            if self._startup_error is not None:
                raise self._startup_error
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (or fatal error)."""
        self._run_loop()
        if self._startup_error is not None:
            raise self._startup_error

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            self._startup_error = exc
        finally:
            self._ready.set()
            self._stopped.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self._requested_port,
            limit=_MAX_LINE * 2,
        )
        self._port = server.sockets[0].getsockname()[1]
        logger.info("serving on %s (schema_version %d, async)", self.url, SCHEMA_VERSION)
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            # Drain: give in-flight requests their budget, then cancel
            # whatever is left (idle keep-alive readers included).
            deadline = self._loop.time() + self._drain_timeout
            while self._active > 0 and self._loop.time() < deadline:
                await asyncio.sleep(0.02)
            if self._active > 0:
                logger.warning(
                    "async gateway close: %d request(s) still in flight after "
                    "%.1fs drain", self._active, self._drain_timeout,
                )
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    def close(self, drain_timeout: float | None = None) -> None:
        """Graceful shutdown: stop listening, drain, release resources."""
        if self._closed:
            return
        self._closed = True
        # Health checks answer 503 "draining" from here on: keep-alive
        # connections still served during the drain window tell their
        # router/load balancer to take this worker out of rotation.
        self._draining = True
        self._drain_timeout = (
            self.DEFAULT_DRAIN_TIMEOUT if drain_timeout is None else float(drain_timeout)
        )
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # loop already gone
                pass
            self._stopped.wait(timeout=self._drain_timeout + 30.0)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._owns_scheduler:
            self.scheduler.close(drain=True)
        self._executor.shutdown(wait=True)
        self.service.close_parallel()

    def __enter__(self) -> "AsyncGateway":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- service facade ----------------------------------------------------
    def healthz(self) -> dict:
        return health_payload(
            self.service, draining=self._draining, shm_ingest=self.shm_ingest
        )

    def metrics_text(self) -> str:
        """Prometheus text: service stats, drift monitors, scheduler gauges."""
        return render_prometheus(
            self.service.stats_snapshot(),
            self.service.monitor_snapshots(),
            scheduler=self.scheduler.stats_snapshot(),
        )

    # -- connection handling -----------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                request = await self._read_head(reader, writer)
                if request is None:
                    break
                self._active += 1
                try:
                    keep_alive = await self._dispatch(request, reader, writer)
                finally:
                    self._active -= 1
                if not keep_alive:
                    break
                await writer.drain()
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _read_head(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> _Request | None:
        try:
            line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            await self._send_error(writer, None, _RequestError(400, "request line too long"))
            return None
        if not line or not line.strip():
            return None  # EOF or idle close
        try:
            method, target, version = line.decode("latin-1").split(None, 2)
        except ValueError:
            await self._send_error(writer, None, _RequestError(400, "malformed request line"))
            return None
        if not version.strip().startswith("HTTP/1."):
            await self._send_error(
                writer, None, _RequestError(400, f"unsupported protocol {version.strip()!r}")
            )
            return None
        headers: "dict[str, str]" = {}
        for _ in range(_MAX_HEADERS):
            try:
                raw = await reader.readline()
            except (ValueError, asyncio.LimitOverrunError):
                await self._send_error(writer, None, _RequestError(400, "header line too long"))
                return None
            if raw in (b"\r\n", b"\n", b""):
                break
            name, sep, value = raw.decode("latin-1").partition(":")
            if not sep:
                await self._send_error(writer, None, _RequestError(400, "malformed header line"))
                return None
            headers[name.strip().lower()] = value.strip()
        else:
            await self._send_error(writer, None, _RequestError(431, "too many header fields"))
            return None
        return _Request(method.upper(), target, headers)

    async def _dispatch(
        self, request: _Request, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Route one request; returns whether the connection may persist."""
        body = _BodyReader(reader, request, self.max_body_bytes)
        try:
            await self._route(request, body, writer)
        except Exception as exc:
            await self._send_error(writer, request, exc)
            return False
        if (request.header("connection") or "").strip().lower() == "close":
            return False
        if body.declares_body() and not body.started:
            # Unconsumed body bytes would misparse as the next request.
            return False
        return True

    async def _route(self, request: _Request, body: _BodyReader, writer) -> None:
        method, path = request.method, request.path
        if method == "GET":
            if path == "/v1/healthz":
                payload = self.healthz()
                await self._send_json(
                    writer, request, 200 if payload["status"] == "ok" else 503, payload
                )
            elif path == "/v1/pipelines":
                await self._send_json(
                    writer, request, 200, self.service.stats_snapshot().to_dict()
                )
            elif path == "/v1/metrics":
                await self._send_body(
                    writer, request, 200,
                    self.metrics_text().encode("utf-8"), PROMETHEUS_CONTENT_TYPE,
                )
            elif (match := _MONITOR_ROUTE.match(path)) is not None:
                await self._handle_monitor(writer, request, unquote(match["name"]))
            elif (match := _RULES_ROUTE.match(path)) is not None:
                await self._handle_get_rules(writer, request, unquote(match["name"]))
            else:
                raise _RequestError(404, f"no such route: GET {path}")
        elif method == "PUT":
            match = _RULES_ROUTE.match(path)
            if match is None:
                raise _RequestError(404, f"no such route: PUT {path}")
            name = unquote(match["name"])
            self._require_pipeline(name)
            payload = await self._read_json(body)
            if not isinstance(payload, dict):
                raise _RequestError(400, "rule set body must be a JSON object")
            await self._run(self.service.set_rules, name, payload)
            await self._send_json(
                writer, request, 200, self.service.get_rules(name).to_dict()
            )
        elif method == "DELETE":
            match = _RULES_ROUTE.match(path)
            if match is None:
                raise _RequestError(404, f"no such route: DELETE {path}")
            name = unquote(match["name"])
            self._require_pipeline(name)
            deleted = self.service.clear_rules(name)
            payload = envelope("rules_deleted")
            payload.update(pipeline=name, deleted=deleted)
            await self._send_json(writer, request, 200, payload)
        elif method == "POST":
            match = _ROUTE.match(path)
            if match is None:
                raise _RequestError(404, f"no such route: POST {path}")
            name = unquote(match["name"])
            self._require_pipeline(name)
            workers = parse_query_workers(request.query)
            action = match["action"]
            if action == "validate":
                await self._handle_validate(writer, request, body, name, workers)
            elif action == "repair":
                await self._handle_repair(writer, request, body, name)
            else:
                await self._handle_validate_stream(
                    writer, request, body, name, workers,
                    parse_query_flag(request.query, "partials"),
                )
        else:
            raise _RequestError(405, f"method {method} not supported")

    def _require_pipeline(self, name: str) -> None:
        if name not in self.service.registered:
            raise _RequestError(404, f"unknown pipeline {name!r}")

    async def _run(self, fn, *args):
        """Run blocking engine work on the executor, off the event loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, lambda: fn(*args))

    # -- GET endpoints -----------------------------------------------------
    async def _handle_monitor(self, writer, request: _Request, name: str) -> None:
        self._require_pipeline(name)
        snapshot = self.service.monitor_snapshot(name)
        if snapshot is None:
            raise _RequestError(
                404,
                f"no drift monitor for pipeline {name!r} (monitoring disabled "
                "or the archive predates monitoring baselines)",
            )
        await self._send_json(writer, request, 200, snapshot.to_dict())

    async def _handle_get_rules(self, writer, request: _Request, name: str) -> None:
        self._require_pipeline(name)
        ruleset = self.service.get_rules(name)
        if ruleset is None:
            raise _RequestError(404, f"no rule set attached to pipeline {name!r}")
        await self._send_json(writer, request, 200, ruleset.to_dict())

    # -- POST endpoints ----------------------------------------------------
    def _frame_request(self, request: _Request) -> bool:
        return framing.matches_frame_content_type(request.header("content-type"))

    def _accepts_frame(self, request: _Request) -> bool:
        return framing.matches_frame_content_type(request.header("accept"))

    async def _read_json(self, body: _BodyReader) -> object:
        raw = await body.read_all()
        if not raw:
            raise _RequestError(400, "empty request body")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _RequestError(400, f"malformed JSON body: {exc}") from exc

    async def _read_frame(self, body: _BodyReader, name: str) -> "framing.Frame":
        schema = self.service.get(name).preprocessor.schema
        raw = await body.read_all()
        frame = await self._run(framing.decode_frame, raw, schema)
        if frame.table is None:
            raise _RequestError(400, "framed request carries no table payload")
        if frame.table.n_rows == 0:
            raise _RequestError(400, "framed request table must not be empty")
        return frame

    async def _build_table(self, name: str, records: "list[dict]") -> Table:
        if not records:
            raise _RequestError(400, "'records' must not be empty")
        schema = self.service.get(name).preprocessor.schema
        try:
            return await self._run(Table.from_records, schema, records)
        except (SchemaError, TypeError, ValueError) as exc:
            raise _RequestError(400, f"records do not fit pipeline schema: {exc}") from exc

    async def _handle_validate(
        self, writer, request: _Request, body: _BodyReader, name: str,
        query_workers: int | None,
    ) -> None:
        if self._frame_request(request):
            frame = await self._read_frame(body, name)
            vreq = ValidateRequest.from_options(frame.extra, pipeline=name)
            table = frame.table
        else:
            vreq = ValidateRequest.from_payload(await self._read_json(body), pipeline=name)
            table = None
        if vreq.pipeline != name:
            raise _RequestError(
                400, f"request pipeline {vreq.pipeline!r} does not match URL {name!r}"
            )
        if table is None:
            table = await self._build_table(name, vreq.records)
        workers = vreq.workers if vreq.workers is not None else query_workers
        if workers is not None and workers > 1:
            report = await self._run(self.service.validate_sharded, name, table, workers)
        else:
            # The coalescing path: submit() is just an enqueue (raises
            # AdmissionError → 429 when the queue is full); the
            # concurrent future resolves on a slab thread and wrap_future
            # bridges it back to the loop without blocking it.
            report = await asyncio.wrap_future(self.scheduler.submit(name, table))
        errors = "dense" if vreq.include_errors else "sparse"
        if self._accepts_frame(request):
            payload = await self._run(framing.report_to_frame, report, errors)
            await self._send_body(writer, request, 200, payload, framing.FRAME_CONTENT_TYPE)
        else:
            await self._send_json(writer, request, 200, report.to_dict(errors=errors))

    async def _handle_repair(
        self, writer, request: _Request, body: _BodyReader, name: str
    ) -> None:
        if self._frame_request(request):
            frame = await self._read_frame(body, name)
            rreq = RepairRequest.from_options(frame.extra, pipeline=name)
            table = frame.table
        else:
            rreq = RepairRequest.from_payload(await self._read_json(body), pipeline=name)
            table = None
        if rreq.pipeline != name:
            raise _RequestError(
                400, f"request pipeline {rreq.pipeline!r} does not match URL {name!r}"
            )
        if table is None:
            table = await self._build_table(name, rreq.records)
        report = await self._run(self.service.validate, name, table)

        def run_repair():
            return self.service.repair(name, table, report=report, iterations=rreq.iterations)

        repaired, summary = await self._run(run_repair)
        errors = "dense" if rreq.include_errors else "sparse"
        if self._accepts_frame(request):
            extra = envelope("repair_response")
            extra.update(repair=summary.to_dict(), report=report.to_dict(errors=errors))
            payload = await self._run(
                lambda: framing.encode_frame(table=repaired, extra=extra)
            )
            await self._send_body(writer, request, 200, payload, framing.FRAME_CONTENT_TYPE)
            return
        payload = envelope("repair_response")
        payload.update(
            report=report.to_dict(errors=errors),
            repair=summary.to_dict(),
            records=repaired.to_records(),
        )
        await self._send_json(writer, request, 200, payload)

    # -- streaming endpoint ------------------------------------------------
    async def _iter_stream_tables(
        self, body: _BodyReader, schema, framed: bool
    ) -> AsyncIterator[Table]:
        """Split the body into chunk tables, incrementally (O(chunk) memory)."""
        if framed:
            splitter = _FrameSplitter(self.max_body_bytes)
            async for block in body.iter_blocks(bound_total=False):
                for raw in splitter.push(block):
                    frame = framing.decode_frame(raw, schema=schema)
                    if frame.table is None:
                        raise _RequestError(400, "framed stream chunk carries no table")
                    yield frame.table
            splitter.finish()
        else:
            buffer = b""
            async for block in body.iter_blocks(bound_total=False):
                buffer += block
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield self._ndjson_table(schema, line)
                if len(buffer) > self.max_body_bytes:
                    raise _RequestError(
                        413,
                        f"request body exceeds the configured limit "
                        f"({self.max_body_bytes} bytes)",
                    )
            if buffer.strip():
                yield self._ndjson_table(schema, buffer)

    @staticmethod
    def _ndjson_table(schema, line: bytes) -> Table:
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise _RequestError(400, f"malformed NDJSON chunk: {exc}") from exc
        records = payload.get("records") if isinstance(payload, dict) else payload
        if not isinstance(records, list):
            raise _RequestError(400, "each NDJSON line must be a record list")
        return Table.from_records(schema, records)

    async def _handle_validate_stream(
        self, writer, request: _Request, body: _BodyReader, name: str,
        query_workers: int | None, emit_partials: bool = False,
    ) -> None:
        shm_header = request.header("x-repro-shm")
        if shm_header is None:
            await self._handle_validate_stream_body(
                writer, request, body, name, query_workers, emit_partials
            )
            return
        # Same-host slab hand-off: the router already wrote the encoded
        # chunk stream into a shared-memory segment, and the HTTP request
        # carries only its name — ``<name>;<size>`` — with an empty body.
        if not self.shm_ingest:
            raise _RequestError(400, "shared-memory ingest is not enabled on this gateway")
        try:
            slab_name, _, size_text = shm_header.partition(";")
            size = int(size_text)
            if not slab_name or size < 0:
                raise ValueError(shm_header)
        except ValueError as exc:
            raise _RequestError(400, f"malformed X-Repro-Shm header: {shm_header!r}") from exc
        from repro.runtime.shm import SharedSlab

        try:
            slab = SharedSlab.attach_bytes(slab_name)
        except (OSError, ValueError) as exc:
            raise _RequestError(400, f"cannot attach shared-memory slab {slab_name!r}: {exc}") from exc
        slab_body = _SlabBody(slab, min(size, len(slab.buf)))
        try:
            await self._handle_validate_stream_body(
                writer, request, slab_body, name, query_workers, emit_partials
            )
        finally:
            slab_body.close()

    async def _handle_validate_stream_body(
        self, writer, request: _Request, body, name: str,
        query_workers: int | None, emit_partials: bool = False,
    ) -> None:
        pipeline = self.service.get(name)
        schema = pipeline.preprocessor.schema
        framed = self._frame_request(request)
        acks: "list[dict]" = []
        if emit_partials and query_workers is not None and query_workers > 1:
            # Sharded execution re-cuts the chunk partition, so its
            # partials would not line up with the caller's chunks.
            raise _RequestError(400, "'partials' cannot be combined with 'workers'")

        if query_workers is not None and query_workers > 1:
            summary = await self._stream_sharded(body, schema, framed, name, query_workers)
        else:
            validator = StreamingValidator.from_pipeline(
                pipeline,
                monitor=self.service.monitor_for(name),
                rules=self.service.rule_plan_for(name),
            )
            partials = []
            offset = 0
            async for table in self._iter_stream_tables(body, schema, framed):
                partial = await self._run(validator.validate_chunk, table, offset)
                offset += partial.n_rows
                if emit_partials:
                    # ``?partials=1`` (the router's scatter path): each
                    # ack line is the full wire-encoded partial report,
                    # so a merger with no live validator can fold them.
                    acks.append(partial.to_dict())
                else:
                    ack = envelope("stream_chunk")
                    ack.update(
                        offset=int(partial.offset),
                        n_rows=int(partial.n_rows),
                        n_flagged=int(partial.n_flagged),
                    )
                    acks.append(ack)
                partials.append(partial)
            try:
                summary = validator.fold(iter(partials))
            except ValidationError as exc:
                raise _RequestError(400, str(exc)) from exc
            self.service.count_validation(name, summary.n_rows)

        lines = [json.dumps(ack).encode("utf-8") for ack in acks]
        lines.append(json.dumps(summary.to_dict()).encode("utf-8"))
        await self._send_body(
            writer, request, 200, b"\n".join(lines) + b"\n", "application/x-ndjson"
        )

    async def _stream_sharded(
        self, body: _BodyReader, schema, framed: bool, name: str, workers: int
    ):
        """Bridge the async chunk stream into the sharded (sync) validator.

        The validator pulls chunk tables from a small bounded queue on an
        executor thread while the loop keeps feeding it — neither side
        ever holds the whole stream. A mid-stream parse failure aborts
        the consumer and surfaces the parse error, mirroring the
        threaded transport's 400.
        """
        loop = asyncio.get_running_loop()
        bridge: "queue.Queue" = queue.Queue(maxsize=8)
        sentinel = object()
        abort = object()

        def chunks():
            while True:
                item = bridge.get()
                if item is sentinel:
                    return
                if item is abort:
                    raise ValidationError("client stream aborted")
                yield item

        future = loop.run_in_executor(
            self._executor,
            lambda: self.service.validate_stream_sharded(name, chunks(), workers=workers),
        )

        def feed(item) -> None:
            # The consumer can die early (e.g. empty-stream rejection);
            # never block forever on a queue nobody reads.
            while True:
                try:
                    bridge.put(item, timeout=0.25)
                    return
                except queue.Full:
                    if future.done():
                        return

        try:
            async for table in self._iter_stream_tables(body, schema, framed):
                await loop.run_in_executor(self._executor, feed, table)
                if future.done():
                    break
            await loop.run_in_executor(self._executor, feed, sentinel)
        except BaseException:
            await loop.run_in_executor(self._executor, feed, abort)
            try:
                await future
            except Exception:
                pass
            raise
        try:
            return await future
        except ValidationError as exc:
            raise _RequestError(400, str(exc)) from exc

    # -- response writing --------------------------------------------------
    async def _send_json(
        self, writer, request: _Request | None, status: int, payload: dict,
        retry_after: float | None = None, close: bool = False,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        extra = []
        if retry_after is not None:
            extra.append(("Retry-After", format_retry_after(retry_after)))
        gzip_ok = request is not None and accepts_gzip(request.header("accept-encoding"))
        if len(body) >= 256 and gzip_ok:
            body = gzip.compress(body, mtime=0)
            extra.append(("Content-Encoding", "gzip"))
        extra.append(("Vary", "Accept-Encoding"))
        await self._write(writer, status, body, "application/json", extra, close)

    async def _send_body(
        self, writer, request: _Request, status: int, body: bytes, content_type: str
    ) -> None:
        await self._write(writer, status, body, content_type, [], False)

    async def _write(
        self, writer, status: int, body: bytes, content_type: str,
        extra: "list[tuple[str, str]]", close: bool,
    ) -> None:
        try:
            reason = HTTPStatus(status).phrase
        except ValueError:
            reason = "Unknown"
        head = [f"HTTP/1.1 {status} {reason}"]
        head.append(f"Content-Type: {content_type}")
        head.append(f"Content-Length: {len(body)}")
        head.extend(f"{name}: {value}" for name, value in extra)
        head.append(f"Connection: {'close' if close else 'keep-alive'}")
        blob = ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
        writer.write(blob)
        await writer.drain()

    async def _send_error(
        self, writer, request: _Request | None, exc: Exception
    ) -> None:
        status, message, retry_after = failure_status(exc)
        if status == 500:
            path = "?" if request is None else request.path
            logger.exception("internal error serving %s", path)
        try:
            await self._send_json(
                writer, request, status, _error_payload(status, message),
                retry_after=retry_after, close=True,
            )
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass


class _FrameSplitter:
    """Incremental frame splitter: the async twin of ``framing.iter_frames``."""

    def __init__(self, max_frame_bytes: int) -> None:
        self.buffer = bytearray()
        self.limit = max_frame_bytes

    def push(self, block: bytes) -> "list[bytes]":
        self.buffer += block
        frames: "list[bytes]" = []
        while len(self.buffer) >= framing._HEADER_SIZE:
            needed = framing.frame_length(self.buffer)
            if needed > self.limit:
                raise framing.FrameSizeError(
                    f"frame declares {needed} bytes, exceeding the "
                    f"{self.limit}-byte limit"
                )
            if len(self.buffer) < needed:
                break
            frames.append(bytes(self.buffer[:needed]))
            del self.buffer[:needed]
        if len(self.buffer) > self.limit:
            raise framing.FrameSizeError(
                f"framed stream buffered {len(self.buffer)} bytes without "
                f"completing a frame (limit {self.limit})"
            )
        return frames

    def finish(self) -> None:
        if self.buffer:
            raise framing.FrameError(
                f"framed stream ended with {len(self.buffer)} trailing bytes "
                "(truncated final frame)"
            )
