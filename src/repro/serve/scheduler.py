"""Dynamic micro-batching request scheduler — the fat half of the gateway.

Model servers survive high request concurrency not by running one engine
call per connection but by **coalescing** many small requests into one
engine slab: the per-call fixed costs (Python dispatch, kernel warm-up,
BLAS setup) are paid once per *batch* instead of once per *request*, and
the engine's matmuls finally see batch dimensions they are efficient at.
The §3.2.1 decision rules are row-local except the batch-level verdict,
so a fused slab splits back into per-request reports **bit-identically**
(the invariant the differential suite pins): row-local fields are sliced
at the exact request row offsets and the batch verdict is recomputed from
each request's own rows.

:class:`RequestScheduler` is that coalescing layer:

* requests enter per-pipeline **bounded queues** via :meth:`submit`
  (admission control: a full queue raises
  :class:`~repro.exceptions.AdmissionError`, which transports map to
  HTTP 429 + ``Retry-After`` — backpressure instead of unbounded latency);
* a dispatcher thread composes batches under a **latency budget**: a
  request waits at most ``batch_window_ms`` for co-batchable traffic,
  and a batch closes early at ``max_batch_rows``;
* pipelines compete by **QoS weight** (weighted-by-waiting-time: a
  weight-2 pipeline is served like one that has waited twice as long);
* fused slabs execute on a small thread pool (the NumPy kernels release
  the GIL, so batches for different pipelines overlap on multicore);
* :meth:`close` **drains**: pending requests are dispatched immediately
  (no window wait) and in-flight batches complete before shutdown.

Single-request batches take the plain
:meth:`~repro.runtime.service.ValidationService.validate` path — under
low concurrency the scheduler adds one queue hop and nothing else.

The transports ride it: :class:`~repro.serve.transport.AsyncGateway`
always, :class:`~repro.serve.gateway.ValidationGateway` when handed a
scheduler, and :meth:`ValidationService.submit`/``submit_many`` when one
is attached via :meth:`~repro.runtime.service.ValidationService.attach_scheduler`.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.validator import ValidationReport
from repro.data.table import Table
from repro.exceptions import AdmissionError, ReproError
from repro.utils.logging import get_logger

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "RequestScheduler",
    "SchedulerStats",
    "split_fused_report",
]

logger = get_logger("serve.scheduler")

#: coalesced-batch size histogram: upper bounds in requests/batch
#: (cumulative, Prometheus-style; the implicit last bucket is +Inf)
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)


def split_fused_report(
    fused: ValidationReport, spans: "list[tuple[int, int]]", rule
) -> "list[ValidationReport]":
    """Split one fused report back into per-request reports.

    ``spans`` are the ``[start, stop)`` row ranges the requests occupy in
    the fused slab. Row-local fields (errors, flags) are sliced views —
    bit-identical to validating each request alone, because every §3.2.1
    decision except the batch verdict is row-local. The batch-level
    verdict (``flagged_fraction`` / ``is_problematic``) is recomputed
    from each request's own rows via ``rule``, exactly as a solo validate
    would.
    """
    reports: list[ValidationReport] = []
    for start, stop in spans:
        row_flags = fused.row_flags[start:stop]
        fraction = float(row_flags.mean()) if row_flags.size else 0.0
        reports.append(
            ValidationReport(
                sample_errors=fused.sample_errors[start:stop],
                cell_errors=fused.cell_errors[start:stop],
                row_flags=row_flags,
                cell_flags=fused.cell_flags[start:stop],
                threshold=fused.threshold,
                flagged_fraction=fraction,
                is_problematic=rule.is_problematic(fraction),
                feature_names=fused.feature_names,
            )
        )
    return reports


@dataclass
class SchedulerStats:
    """Point-in-time scheduler counters + gauges (see ``/v1/metrics``)."""

    #: pending requests, per pipeline and summed
    queue_depths: dict[str, int] = field(default_factory=dict)
    queue_depth: int = 0
    #: batches currently executing on the slab pool
    in_flight: int = 0
    #: lifetime request counters
    submitted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    #: lifetime batch counters
    batches: int = 0
    rows: int = 0
    #: cumulative batch-size histogram, bucket upper bound → batches with
    #: size <= bound (last entry is the +Inf bucket == ``batches``)
    batch_size_hist: dict[int, int] = field(default_factory=dict)
    #: configuration echoes, so one scrape shows the knobs in force
    batch_window_ms: float = 0.0
    max_batch_rows: int = 0
    max_queue_depth: int = 0

    @property
    def fill_ratio(self) -> float:
        """Mean slab occupancy: rows dispatched / (batches × max_batch_rows)."""
        if self.batches == 0 or self.max_batch_rows == 0:
            return 0.0
        return self.rows / (self.batches * self.max_batch_rows)

    @property
    def mean_batch_size(self) -> float:
        """Mean coalesced requests per dispatched batch."""
        return 0.0 if self.batches == 0 else self.completed_or_failed / self.batches

    @property
    def completed_or_failed(self) -> int:
        return self.completed + self.failed

    def to_dict(self) -> dict:
        return {
            "queue_depth": self.queue_depth,
            "queue_depths": dict(self.queue_depths),
            "in_flight": self.in_flight,
            "submitted": self.submitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "batches": self.batches,
            "rows": self.rows,
            "batch_size_hist": {str(k): v for k, v in self.batch_size_hist.items()},
            "fill_ratio": self.fill_ratio,
            "mean_batch_size": self.mean_batch_size,
            "batch_window_ms": self.batch_window_ms,
            "max_batch_rows": self.max_batch_rows,
            "max_queue_depth": self.max_queue_depth,
        }


class _Pending:
    """One enqueued validate request awaiting its batch."""

    __slots__ = ("table", "future", "enqueued_at", "n_rows")

    def __init__(self, table: Table, future: "Future[ValidationReport]", enqueued_at: float):
        self.table = table
        self.future = future
        self.enqueued_at = enqueued_at
        self.n_rows = table.n_rows


class RequestScheduler:
    """Coalesce per-pipeline validate requests into fused engine slabs.

    Parameters
    ----------
    service:
        The :class:`~repro.runtime.service.ValidationService` slabs run
        on. Counters and the drift monitor see coalesced traffic exactly
        as they would per-request traffic (same validation/row counts).
    batch_window_ms:
        Latency budget: how long the oldest queued request may wait for
        co-batchable traffic before its batch dispatches anyway.
    max_batch_rows:
        Row ceiling per fused slab; a batch closes early when the next
        request would overflow it (a single oversized request still
        dispatches, alone).
    max_queue_depth:
        Admission bound, in pending requests per pipeline; beyond it
        :meth:`submit` raises :class:`AdmissionError`.
    qos_weights:
        Pipeline name → weight. When several pipelines have dispatchable
        batches, the one with the highest ``weight × effective-wait``
        goes first; unlisted pipelines weigh 1.0.
    slab_workers:
        Threads executing fused slabs (default: up to 4). The kernels
        release the GIL, so slabs genuinely overlap.
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        service,
        batch_window_ms: float = 2.0,
        max_batch_rows: int = 8192,
        max_queue_depth: int = 1024,
        qos_weights: "dict[str, float] | None" = None,
        slab_workers: int | None = None,
        clock=time.monotonic,
    ) -> None:
        if batch_window_ms < 0:
            raise ValueError(f"batch_window_ms must be >= 0, got {batch_window_ms}")
        if max_batch_rows < 1:
            raise ValueError(f"max_batch_rows must be positive, got {max_batch_rows}")
        if max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be positive, got {max_queue_depth}")
        for name, weight in (qos_weights or {}).items():
            if not float(weight) > 0:
                raise ValueError(f"QoS weight for {name!r} must be positive, got {weight}")
        self.service = service
        self.batch_window = batch_window_ms / 1000.0
        self.max_batch_rows = int(max_batch_rows)
        self.max_queue_depth = int(max_queue_depth)
        self.qos_weights = {name: float(w) for name, w in (qos_weights or {}).items()}
        self._clock = clock
        self._cv = threading.Condition()
        self._queues: "dict[str, deque[_Pending]]" = {}
        self._closed = False
        # -- counters (all guarded by _cv) --
        self._in_flight = 0
        self._submitted = 0
        self._rejected = 0
        self._completed = 0
        self._failed = 0
        self._batches = 0
        self._rows = 0
        self._hist = [0] * (len(BATCH_SIZE_BUCKETS) + 1)
        workers = (
            min(4, os.cpu_count() or 1) if slab_workers is None else max(1, int(slab_workers))
        )
        self._executor = ThreadPoolExecutor(workers, thread_name_prefix="repro-slab")
        self._dispatcher = threading.Thread(
            target=self._run, name="repro-scheduler", daemon=True
        )
        self._dispatcher.start()

    # -- admission ---------------------------------------------------------
    def submit(self, name: str, table: Table) -> "Future[ValidationReport]":
        """Enqueue one validate request; resolves to its own report.

        Raises :class:`AdmissionError` when the pipeline's queue is at
        ``max_queue_depth`` (the transports' 429), :class:`ReproError`
        after :meth:`close`.
        """
        future: "Future[ValidationReport]" = Future()
        with self._cv:
            if self._closed:
                raise ReproError("request scheduler is closed")
            queue = self._queues.setdefault(name, deque())
            if len(queue) >= self.max_queue_depth:
                self._rejected += 1
                raise AdmissionError(
                    f"pipeline {name!r} has {len(queue)} requests queued "
                    f"(limit {self.max_queue_depth}); retry after the queue drains",
                    retry_after=self._retry_after_locked(),
                )
            queue.append(_Pending(table, future, self._clock()))
            self._submitted += 1
            self._cv.notify()
        return future

    def submit_many(
        self, requests: "list[tuple[str, Table]]"
    ) -> "list[Future[ValidationReport]]":
        """Enqueue many (pipeline, table) pairs; one future each."""
        return [self.submit(name, table) for name, table in requests]

    def _retry_after_locked(self) -> float:
        # A conservative drain hint: every queued slab's worth of rows
        # costs at least one window, and batches already dispatched to
        # slab threads occupy workers ahead of the queue — a retry
        # cannot land before they finish, so in-flight slabs count
        # toward the estimate too. Transports round this up to RFC
        # whole seconds for the Retry-After header.
        backlog = sum(len(q) for q in self._queues.values())
        slabs = max(1, backlog // max(1, self.max_queue_depth // 4)) + self._in_flight
        return max(self.batch_window, 0.05) * slabs

    # -- dispatch loop -----------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._cv:
                while True:
                    if self._closed and not any(self._queues.values()):
                        return
                    now = self._clock()
                    name = self._select_ready(now)
                    if name is not None:
                        batch = self._pop_batch_locked(name)
                        self._in_flight += 1
                        break
                    self._cv.wait(self._next_deadline_locked(now))
            self._executor.submit(self._run_batch, name, batch)

    def _select_ready(self, now: float) -> str | None:
        """The highest-QoS-score pipeline whose batch should dispatch now.

        A pipeline is dispatchable when its oldest request has waited out
        the batch window, its queued rows already fill a slab, or the
        scheduler is draining. Score = weight × (wait + window), so at
        equal wait a higher QoS weight is served first, and no pipeline
        starves (its wait term grows without bound).
        """
        best: str | None = None
        best_score = -1.0
        for name, queue in self._queues.items():
            if not queue:
                continue
            waited = now - queue[0].enqueued_at
            rows = 0
            for pending in queue:
                rows += pending.n_rows
                if rows >= self.max_batch_rows:
                    break
            if not (self._closed or waited >= self.batch_window or rows >= self.max_batch_rows):
                continue
            score = self.qos_weights.get(name, 1.0) * (waited + self.batch_window + 1e-9)
            if score > best_score or (score == best_score and (best is None or name < best)):
                best, best_score = name, score
        return best

    def _next_deadline_locked(self, now: float) -> float | None:
        deadlines = [
            queue[0].enqueued_at + self.batch_window - now
            for queue in self._queues.values()
            if queue
        ]
        if not deadlines:
            return None
        return max(min(deadlines), 0.0)

    def _pop_batch_locked(self, name: str) -> "list[_Pending]":
        queue = self._queues[name]
        batch = [queue.popleft()]
        rows = batch[0].n_rows
        while queue and rows + queue[0].n_rows <= self.max_batch_rows:
            pending = queue.popleft()
            rows += pending.n_rows
            batch.append(pending)
        return batch

    # -- slab execution ----------------------------------------------------
    def _run_batch(self, name: str, batch: "list[_Pending]") -> None:
        failed = 0
        try:
            try:
                reports = self._validate_batch(name, batch)
            except Exception:
                if len(batch) == 1:
                    raise
                # One poisoned request must not fail its batch-mates:
                # fall back to per-request validation, so exactly the
                # offending request(s) carry the error.
                reports = None
            if reports is None:
                for pending in batch:
                    try:
                        report = self.service.validate(name, pending.table)
                    except Exception as exc:
                        failed += 1
                        pending.future.set_exception(exc)
                    else:
                        pending.future.set_result(report)
            else:
                for pending, report in zip(batch, reports):
                    pending.future.set_result(report)
        except Exception as exc:
            for pending in batch:
                if not pending.future.done():
                    failed += 1
                    pending.future.set_exception(exc)
        finally:
            with self._cv:
                self._in_flight -= 1
                self._batches += 1
                self._rows += sum(p.n_rows for p in batch)
                self._failed += failed
                self._completed += len(batch) - failed
                self._observe_batch_size(len(batch))
                self._cv.notify_all()

    def _observe_batch_size(self, size: int) -> None:
        for i, bound in enumerate(BATCH_SIZE_BUCKETS):
            if size <= bound:
                self._hist[i] += 1
        self._hist[-1] += 1  # +Inf

    def _validate_batch(self, name: str, batch: "list[_Pending]") -> "list[ValidationReport]":
        """Run one coalesced batch; returns per-request reports in order.

        Single-request batches take the service's ordinary validate path
        — identical semantics, no concat. Fused slabs preprocess and run
        the engine exactly once; rule plans are evaluated per request
        slice so batch-scoped predicates (``unique``) keep per-request
        semantics; the drift monitor observes the fused matrix once
        (same rows, same flags — one histogram pass instead of N).
        """
        if len(batch) == 1:
            return [self.service.validate(name, batch[0].table)]
        fused = Table.concat([p.table for p in batch])
        validator = self.service.get(name)._require_validator()
        matrix, report = validator.validate_with_matrix(fused)
        spans: list[tuple[int, int]] = []
        offset = 0
        for pending in batch:
            spans.append((offset, offset + pending.n_rows))
            offset += pending.n_rows
        reports = split_fused_report(report, spans, validator.rule)
        plan = self.service.rule_plan_for(name)
        if plan is not None:
            from repro.rules import apply_rules

            reports = [
                apply_rules(sub, matrix[start:stop], plan)
                for sub, (start, stop) in zip(reports, spans)
            ]
        self.service.count_validation(name, fused.n_rows, validations=len(batch))
        self.service.observe_validation(name, matrix, report)
        return reports

    # -- introspection -----------------------------------------------------
    def stats_snapshot(self) -> SchedulerStats:
        with self._cv:
            hist = {
                bound: self._hist[i] for i, bound in enumerate(BATCH_SIZE_BUCKETS)
            }
            return SchedulerStats(
                queue_depths={n: len(q) for n, q in self._queues.items() if q},
                queue_depth=sum(len(q) for q in self._queues.values()),
                in_flight=self._in_flight,
                submitted=self._submitted,
                rejected=self._rejected,
                completed=self._completed,
                failed=self._failed,
                batches=self._batches,
                rows=self._rows,
                batch_size_hist=hist,
                batch_window_ms=self.batch_window * 1000.0,
                max_batch_rows=self.max_batch_rows,
                max_queue_depth=self.max_queue_depth,
            )

    # -- lifecycle ---------------------------------------------------------
    def close(self, drain: bool = True, timeout: float | None = 30.0) -> None:
        """Stop accepting work and shut the dispatcher down.

        With ``drain=True`` (default) every queued request is dispatched
        immediately — the batch window no longer applies — and in-flight
        slabs run to completion, so every previously-returned future
        resolves. ``drain=False`` fails queued requests with
        :class:`ReproError` instead (in-flight slabs still complete).
        """
        with self._cv:
            if self._closed:
                drained_already = True
            else:
                drained_already = False
                self._closed = True
                if not drain:
                    for queue in self._queues.values():
                        while queue:
                            pending = queue.popleft()
                            self._failed += 1
                            pending.future.set_exception(
                                ReproError("request scheduler closed before dispatch")
                            )
                self._cv.notify_all()
        if drained_already:
            return
        self._dispatcher.join(timeout)
        if self._dispatcher.is_alive():  # pragma: no cover - defensive
            logger.warning("scheduler dispatcher did not drain within %ss", timeout)
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "RequestScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
