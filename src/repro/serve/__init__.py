"""HTTP serving layer: stdlib gateways over :class:`ValidationService`.

* :class:`AsyncGateway` — ``asyncio`` event-loop front (the default in
  ``repro-serve``): one loop parses HTTP, a
  :class:`RequestScheduler` coalesces concurrent small validate
  requests into fused engine slabs under a latency budget, with
  bounded-queue admission control (429 + ``Retry-After``);
* :class:`ValidationGateway` — ``http.server.ThreadingHTTPServer``
  front with the same versioned ``/v1`` endpoints (health, pipeline
  stats, metrics, validate, repair, chunked validate_stream, rules);
  kept behind ``repro-serve --threaded`` for one release;
* :class:`RouterGateway` + :class:`GatewayFleet` — the multi-node tier
  (``repro-serve --replicas N``): a router process consistent-hashes
  pipelines across N spawned worker replicas, scatters large streams
  with the exact ``fold_partials`` merge, health-checks the fleet, and
  aggregates ``/v1/metrics`` with a ``replica`` label;
* :class:`RequestScheduler` — the dynamic micro-batching scheduler
  both transports (and ``ValidationService.submit``) can ride;
* :class:`Client` — stdlib ``http.client`` counterpart that decodes
  responses back into the in-process result objects (one pooled
  keep-alive connection per thread, ``close()``/context-manager);
* :mod:`repro.serve.cli` — the ``repro-serve`` console entry point
  (also ``python -m repro.serve``).
"""

from repro.serve.client import Client
from repro.serve.fleet import GatewayFleet, WorkerHandle
from repro.serve.gateway import ValidationGateway
from repro.serve.router import RouterGateway, RouterTarget
from repro.serve.scheduler import RequestScheduler
from repro.serve.transport import AsyncGateway

__all__ = [
    "AsyncGateway",
    "Client",
    "GatewayFleet",
    "RequestScheduler",
    "RouterGateway",
    "RouterTarget",
    "ValidationGateway",
    "WorkerHandle",
]
