"""HTTP serving layer: a stdlib gateway over :class:`ValidationService`.

* :class:`ValidationGateway` — ``http.server.ThreadingHTTPServer`` front
  with versioned JSON endpoints under ``/v1`` (health, pipeline stats,
  validate, repair, chunked validate_stream);
* :class:`Client` — stdlib ``http.client`` counterpart that decodes
  responses back into the in-process result objects;
* :mod:`repro.serve.cli` — the ``repro-serve`` console entry point
  (also ``python -m repro.serve``).
"""

from repro.serve.client import Client
from repro.serve.gateway import ValidationGateway

__all__ = ["Client", "ValidationGateway"]
