"""Stdlib HTTP client for the validation gateway.

A thin :class:`Client` over ``http.client`` that speaks the
:mod:`repro.api` protocol: requests go out as JSON records, responses
come back decoded into the same objects the in-process API returns
(:class:`ValidationReport`, :class:`RepairSummary`,
:class:`StreamSummary`, :class:`ServiceStats`).

>>> client = Client(port=8080)                       # doctest: +SKIP
>>> report = client.validate("hotel", table)         # doctest: +SKIP
>>> report.is_problematic, report.flagged_rows       # doctest: +SKIP
"""

from __future__ import annotations

import json
from http.client import HTTPConnection, HTTPSConnection
from typing import Iterable
from urllib.parse import quote, urlsplit

from repro.api.protocol import check_envelope
from repro.api.requests import RepairRequest, ValidateRequest
from repro.core.repair import RepairSummary
from repro.core.validator import ValidationReport
from repro.data.table import Table
from repro.exceptions import GatewayError
from repro.runtime.service import ServiceStats
from repro.runtime.streaming import StreamSummary

__all__ = ["Client"]


def _as_records(rows: "Table | list[dict]") -> list[dict]:
    return rows.to_records() if isinstance(rows, Table) else list(rows)


class Client:
    """Talks to a :class:`~repro.serve.gateway.ValidationGateway`.

    One connection per request keeps the client immune to server-side
    ``Connection: close`` on error responses; the gateway's thread pool
    makes per-request connections cheap at this scale.
    """

    #: scheme → default port, for URLs that do not spell one out
    _SCHEME_PORTS = {"http": 80, "https": 443}

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = 60.0,
        scheme: str = "http",
    ) -> None:
        if scheme not in self._SCHEME_PORTS:
            raise GatewayError(
                f"unsupported URL scheme {scheme!r}; this client speaks http and https"
            )
        self.host = host
        self.port = port
        self.timeout = timeout
        self.scheme = scheme

    @classmethod
    def from_url(cls, url: str, timeout: float = 60.0) -> "Client":
        """Build from a gateway URL, honoring its scheme.

        ``https://host`` connects over TLS on 443 (not silently over
        plain HTTP on 80); an explicit ``:port`` always wins; schemes
        other than http/https raise :class:`GatewayError`. Scheme-less
        forms (``host`` or ``host:port``) are treated as plain HTTP to
        the named host — never silently redirected elsewhere.
        """
        parts = urlsplit(url)
        if parts.hostname is None and parts.scheme not in cls._SCHEME_PORTS:
            # "host" lands in path, "host:port" is misread as a scheme;
            # re-split as a network location to recover the real host.
            parts = urlsplit("//" + url)
        scheme = parts.scheme or "http"
        if scheme not in cls._SCHEME_PORTS:
            raise GatewayError(
                f"unsupported URL scheme {scheme!r} in {url!r}; "
                "this client speaks http and https"
            )
        if parts.hostname is None:
            raise GatewayError(f"no host in gateway URL {url!r}")
        try:
            port = parts.port
        except ValueError as exc:
            raise GatewayError(f"invalid port in gateway URL {url!r}: {exc}") from None
        return cls(
            host=parts.hostname,
            port=port or cls._SCHEME_PORTS[scheme],
            timeout=timeout,
            scheme=scheme,
        )

    # -- endpoints ---------------------------------------------------------
    def healthz(self) -> dict:
        return check_envelope(self._request("GET", "/v1/healthz"), "health")

    def pipelines(self) -> ServiceStats:
        """Service stats snapshot: per-pipeline residency + counters."""
        return ServiceStats.from_dict(self._request("GET", "/v1/pipelines"))

    def monitor(self, pipeline: str) -> "MonitorSnapshot":
        """Drift-monitor snapshot of one pipeline (scores, chart, alerts)."""
        from repro.monitor import MonitorSnapshot

        payload = self._request(
            "GET", f"/v1/pipelines/{quote(pipeline, safe='')}/monitor"
        )
        return MonitorSnapshot.from_dict(payload)

    def metrics(self) -> str:
        """The gateway's Prometheus text exposition, verbatim."""
        return self._request_raw("GET", "/v1/metrics").decode("utf-8")

    def validate(
        self,
        pipeline: str,
        rows: "Table | list[dict]",
        include_errors: bool = False,
        workers: int | None = None,
    ) -> ValidationReport:
        """Validate rows remotely; returns the decoded report.

        With ``include_errors=False`` (the wire-efficient default) the
        decoded report's flags, threshold, and verdict are exact, and its
        error values are populated only at flagged coordinates.
        ``workers > 1`` requests sharded execution on the gateway (capped
        by the service's shard budget; the report is identical).
        """
        request = ValidateRequest(
            records=_as_records(rows),
            pipeline=pipeline,
            include_errors=include_errors,
            workers=workers,
        )
        payload = self._request(
            "POST", f"/v1/pipelines/{quote(pipeline, safe='')}/validate", request.to_dict()
        )
        return ValidationReport.from_dict(payload)

    def repair(
        self,
        pipeline: str,
        rows: "Table | list[dict]",
        iterations: int = 1,
        include_errors: bool = False,
    ) -> tuple[list[dict], RepairSummary, ValidationReport]:
        """Repair rows remotely; returns (repaired records, summary, report)."""
        request = RepairRequest(
            records=_as_records(rows),
            pipeline=pipeline,
            iterations=iterations,
            include_errors=include_errors,
        )
        payload = self._request(
            "POST", f"/v1/pipelines/{quote(pipeline, safe='')}/repair", request.to_dict()
        )
        check_envelope(payload, "repair_response")
        return (
            payload["records"],
            RepairSummary.from_dict(payload["repair"]),
            ValidationReport.from_dict(payload["report"]),
        )

    def validate_stream(
        self,
        pipeline: str,
        chunks: "Iterable[Table | list[dict]]",
        workers: int | None = None,
    ) -> StreamSummary:
        """Stream row chunks through ``/validate_stream``.

        Chunks are sent as chunked-transfer NDJSON, so neither side ever
        holds the full stream; the gateway's per-chunk acknowledgements
        are consumed and the final :class:`StreamSummary` returned.
        ``workers > 1`` asks the gateway for sharded execution (the
        summary then arrives without per-chunk acknowledgements).
        """

        def ndjson() -> "Iterable[bytes]":
            for chunk in chunks:
                yield json.dumps({"records": _as_records(chunk)}).encode("utf-8") + b"\n"

        path = f"/v1/pipelines/{quote(pipeline, safe='')}/validate_stream"
        if workers is not None and workers > 1:
            path += f"?workers={int(workers)}"
        connection = self._connect()
        try:
            try:
                connection.request(
                    "POST",
                    path,
                    body=ndjson(),
                    headers={"Content-Type": "application/x-ndjson"},
                    encode_chunked=True,
                )
            except (BrokenPipeError, ConnectionResetError):
                # The gateway rejects a bad stream as soon as it sees it
                # and stops reading; our remaining upload then fails at
                # the socket. Its error response is usually already in
                # the receive buffer — surface that instead of the pipe.
                pass
            response = connection.getresponse()
            if response.status >= 400:
                raise self._error_from(response.status, response.read())
            summary: StreamSummary | None = None
            for raw in response:
                line = raw.strip()
                if not line:
                    continue
                payload = json.loads(line)
                kind = payload.get("kind")
                if kind == "stream_chunk":
                    continue
                if kind == "error":
                    raise GatewayError(
                        f"gateway error {payload.get('status')}: {payload.get('error')}"
                    )
                summary = StreamSummary.from_dict(payload)
            if summary is None:
                raise GatewayError("stream response ended without a summary")
            return summary
        finally:
            connection.close()

    # -- plumbing ----------------------------------------------------------
    def _connect(self) -> HTTPConnection:
        if self.scheme == "https":
            return HTTPSConnection(self.host, self.port, timeout=self.timeout)
        return HTTPConnection(self.host, self.port, timeout=self.timeout)

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        return json.loads(self._request_raw(method, path, payload))

    def _request_raw(self, method: str, path: str, payload: dict | None = None) -> bytes:
        connection = self._connect()
        try:
            body = None if payload is None else json.dumps(payload).encode("utf-8")
            headers = {} if body is None else {"Content-Type": "application/json"}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            if response.status >= 400:
                raise self._error_from(response.status, raw)
            return raw
        finally:
            connection.close()

    @staticmethod
    def _error_from(status: int, raw: bytes) -> GatewayError:
        try:
            message = json.loads(raw).get("error", raw.decode("utf-8", "replace"))
        except (json.JSONDecodeError, AttributeError):
            message = raw.decode("utf-8", "replace")
        return GatewayError(f"gateway error {status}: {message}")
