"""Stdlib HTTP client for the validation gateway.

A thin :class:`Client` over ``http.client`` that speaks the
:mod:`repro.api` protocol: requests go out as JSON records or binary
columnar frames, responses come back decoded into the same objects the
in-process API returns (:class:`ValidationReport`, :class:`RepairSummary`,
:class:`StreamSummary`, :class:`ServiceStats`).

Wire negotiation: with the default ``wire="auto"`` the client probes
``/v1/healthz`` once and, when the gateway advertises
``application/x-repro-frame``, sends :class:`~repro.data.table.Table`
payloads as binary frames (and asks for framed responses) — falling
back to JSON transparently for record-list payloads, older gateways,
or a 415 refusal. ``wire="json"`` pins the compatibility tier;
``wire="frame"`` requires frames and fails loudly when unavailable.

>>> client = Client(port=8080)                       # doctest: +SKIP
>>> report = client.validate("hotel", table)         # doctest: +SKIP
>>> report.is_problematic, report.flagged_rows       # doctest: +SKIP
"""

from __future__ import annotations

import gzip
import json
import threading
import time
from http.client import BadStatusLine, HTTPConnection, HTTPResponse, HTTPSConnection
from typing import Iterable, Iterator
from urllib.parse import quote, urlsplit

from repro.api import framing
from repro.api.protocol import check_envelope
from repro.api.requests import RepairRequest, ValidateRequest
from repro.core.repair import RepairSummary
from repro.core.validator import ValidationReport
from repro.data.table import Table
from repro.exceptions import FrameError, GatewayError
from repro.runtime.service import ServiceStats
from repro.runtime.streaming import StreamSummary

__all__ = ["Client"]


def _as_records(rows: "Table | list[dict]") -> list[dict]:
    return rows.to_records() if isinstance(rows, Table) else list(rows)


class Client:
    """Talks to a :class:`~repro.serve.gateway.ValidationGateway`.

    Connections are pooled: each calling thread keeps one persistent
    keep-alive connection (both gateways speak HTTP/1.1), so request
    latency is not dominated by TCP handshakes under load. A stale
    pooled socket — the server closed an idle keep-alive between
    requests — is detected (``BadStatusLine`` / connection reset before
    any response bytes arrive) and retried exactly once on a fresh
    connection; since no response ever started, the resend cannot
    double-execute a request, and status-level retries stay with the
    503/429 guard in :meth:`_retry_once_on_503`. Responses the server
    tags ``Connection: close`` (error envelopes) drop the socket instead
    of pooling it. :meth:`close` releases every pooled socket; the
    client is also a context manager.
    """

    #: scheme → default port, for URLs that do not spell one out
    _SCHEME_PORTS = {"http": 80, "https": 443}

    _WIRE_MODES = ("auto", "json", "frame")

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = 60.0,
        scheme: str = "http",
        wire: str = "auto",
    ) -> None:
        if scheme not in self._SCHEME_PORTS:
            raise GatewayError(
                f"unsupported URL scheme {scheme!r}; this client speaks http and https"
            )
        if wire not in self._WIRE_MODES:
            raise GatewayError(f"unknown wire mode {wire!r}; use auto, json, or frame")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.scheme = scheme
        self.wire = wire
        # None = not probed yet; True/False = gateway capability, cached
        # for the client's lifetime (capabilities don't change mid-run).
        self._gateway_speaks_frames: bool | None = None
        # Per-thread parked keep-alive connection (a Client may be used
        # from several threads at once; sharing one socket would
        # interleave their requests), plus a registry of every live
        # connection so close() can release them all.
        self._local = threading.local()
        self._conns: "set[HTTPConnection]" = set()
        self._conns_lock = threading.Lock()

    def close(self) -> None:
        """Release every pooled connection (all threads').

        Not a terminal state: a later request simply opens a fresh
        connection. Context-manager exit calls this.
        """
        with self._conns_lock:
            connections, self._conns = self._conns, set()
        for connection in connections:
            try:
                connection.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        # Drop every thread's parked reference in one move.
        self._local = threading.local()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @classmethod
    def from_url(cls, url: str, timeout: float = 60.0, wire: str = "auto") -> "Client":
        """Build from a gateway URL, honoring its scheme.

        ``https://host`` connects over TLS on 443 (not silently over
        plain HTTP on 80); an explicit ``:port`` always wins; schemes
        other than http/https raise :class:`GatewayError`. Scheme-less
        forms (``host`` or ``host:port``) are treated as plain HTTP to
        the named host — never silently redirected elsewhere.
        """
        parts = urlsplit(url)
        if parts.hostname is None and parts.scheme not in cls._SCHEME_PORTS:
            # "host" lands in path, "host:port" is misread as a scheme;
            # re-split as a network location to recover the real host.
            parts = urlsplit("//" + url)
        scheme = parts.scheme or "http"
        if scheme not in cls._SCHEME_PORTS:
            raise GatewayError(
                f"unsupported URL scheme {scheme!r} in {url!r}; "
                "this client speaks http and https"
            )
        if parts.hostname is None:
            raise GatewayError(f"no host in gateway URL {url!r}")
        try:
            port = parts.port
        except ValueError as exc:
            raise GatewayError(f"invalid port in gateway URL {url!r}: {exc}") from None
        return cls(
            host=parts.hostname,
            port=port or cls._SCHEME_PORTS[scheme],
            timeout=timeout,
            scheme=scheme,
            wire=wire,
        )

    # -- wire negotiation --------------------------------------------------
    def _use_frames(self, framable: bool = True) -> bool:
        """Decide the wire tier for one call.

        ``framable`` is False when the payload cannot ride a frame (bare
        record lists carry no schema to encode against) — those calls
        stay JSON regardless of mode, except ``wire="frame"`` which
        refuses rather than silently downgrade.
        """
        if self.wire == "json":
            return False
        if not framable:
            if self.wire == "frame":
                raise GatewayError(
                    "wire='frame' requires Table payloads (record lists carry "
                    "no schema to encode a frame against)"
                )
            return False
        if self.wire == "frame":
            return True
        if self._gateway_speaks_frames is None:
            try:
                health = self.healthz()
            except GatewayError:
                # Unreachable or unhealthy: let the actual call surface
                # the real error over the compatibility tier.
                return False
            formats = health.get("wire_formats")
            self._gateway_speaks_frames = isinstance(formats, list) and any(
                framing.matches_frame_content_type(str(f)) for f in formats
            )
        return self._gateway_speaks_frames

    def _frame_refused(self, exc: GatewayError) -> bool:
        """A 415 means the server does not speak frames: fall back once."""
        if self.wire == "auto" and exc.status == 415:
            self._gateway_speaks_frames = False
            return True
        return False

    # -- endpoints ---------------------------------------------------------
    def healthz(self) -> dict:
        return check_envelope(self._request("GET", "/v1/healthz"), "health")

    def pipelines(self) -> ServiceStats:
        """Service stats snapshot: per-pipeline residency + counters."""
        return ServiceStats.from_dict(self._request("GET", "/v1/pipelines"))

    def monitor(self, pipeline: str) -> "MonitorSnapshot":
        """Drift-monitor snapshot of one pipeline (scores, chart, alerts)."""
        from repro.monitor import MonitorSnapshot

        payload = self._request(
            "GET", f"/v1/pipelines/{quote(pipeline, safe='')}/monitor"
        )
        return MonitorSnapshot.from_dict(payload)

    def metrics(self) -> str:
        """The gateway's Prometheus text exposition, verbatim."""
        return self._request_raw("GET", "/v1/metrics")[0].decode("utf-8")

    def validate(
        self,
        pipeline: str,
        rows: "Table | list[dict]",
        include_errors: bool = False,
        workers: int | None = None,
    ) -> ValidationReport:
        """Validate rows remotely; returns the decoded report.

        With ``include_errors=False`` (the wire-efficient default) the
        decoded report's flags, threshold, and verdict are exact, and its
        error values are populated only at flagged coordinates.
        ``workers > 1`` requests sharded execution on the gateway (capped
        by the service's shard budget; the report is identical).
        Table payloads ride the binary frame tier when negotiated (see
        the module docstring); record lists always go as JSON.

        A 503 (the gateway's *retryable* signal: a shard pool closed by
        a concurrent re-registration) is retried exactly once; every
        4xx — including 422 rule-configuration rejections — is
        deterministic and surfaces immediately.
        """
        path = f"/v1/pipelines/{quote(pipeline, safe='')}/validate"
        if self._use_frames(framable=isinstance(rows, Table)):
            request = ValidateRequest(
                pipeline=pipeline, include_errors=include_errors, workers=workers
            )
            body = framing.encode_frame(table=rows, extra=request.to_options())
            try:
                raw, content_type = self._retry_once_on_503(
                    lambda: self._request_raw(
                        "POST", path, body=body, content_type=framing.FRAME_CONTENT_TYPE,
                        accept=framing.FRAME_CONTENT_TYPE,
                    )
                )
            except GatewayError as exc:
                if not self._frame_refused(exc):
                    raise
            else:
                return self._decode_report(raw, content_type)
        request = ValidateRequest(
            records=_as_records(rows),
            pipeline=pipeline,
            include_errors=include_errors,
            workers=workers,
        )
        payload = self._retry_once_on_503(
            lambda: self._request("POST", path, request.to_dict())
        )
        return ValidationReport.from_dict(payload)

    #: ceiling on how long a 429's Retry-After hint may stall the client
    RETRY_AFTER_CAP = 5.0

    @classmethod
    def _retry_once_on_503(cls, call):
        """Run ``call``, retrying exactly once on a transient status.

        503 is the gateway's shard-pool race signal (TransientServiceError:
        a pool torn down by a concurrent re-registration; the retry lands
        on the fresh pool) and is retried immediately. 429 is the
        scheduler's admission backpressure; the client honors the
        gateway's ``Retry-After`` hint — bounded by
        :attr:`RETRY_AFTER_CAP` so a hostile or confused server cannot
        stall the caller — then retries exactly once. Anything else —
        notably 422 rule-config rejections and all other 4xx — is
        deterministic: retrying would just repeat the failure, so it
        propagates unchanged.
        """
        try:
            return call()
        except GatewayError as exc:
            if exc.status == 503:
                return call()
            if exc.status == 429:
                delay = 1.0 if exc.retry_after is None else exc.retry_after
                time.sleep(min(max(delay, 0.0), cls.RETRY_AFTER_CAP))
                return call()
            raise

    # -- declarative rules -------------------------------------------------
    def set_rules(self, pipeline: str, rules) -> "RuleSet":
        """Attach a declarative rule set to a pipeline on the gateway.

        ``rules`` is a :class:`~repro.rules.RuleSet`, a rule-set payload
        dict, or a path to a JSON rule file. The gateway compiles it
        eagerly against the pipeline — incompatible sets come back as
        HTTP 422 (:class:`GatewayError` with ``status == 422``), which
        is deterministic and never retried. Returns the canonical stored
        form.
        """
        from repro.rules import RuleSet, resolve_ruleset

        ruleset = resolve_ruleset(rules)
        if ruleset is None:
            raise GatewayError("set_rules requires a rule set; use delete_rules to remove one")
        payload = self._request(
            "PUT", f"/v1/pipelines/{quote(pipeline, safe='')}/rules", ruleset.to_dict()
        )
        return RuleSet.from_dict(payload)

    def get_rules(self, pipeline: str) -> "RuleSet | None":
        """The rule set attached to a pipeline (``None`` when rules are off)."""
        from repro.rules import RuleSet

        try:
            payload = self._request(
                "GET", f"/v1/pipelines/{quote(pipeline, safe='')}/rules"
            )
        except GatewayError as exc:
            if exc.status == 404 and "no rule set attached" in str(exc):
                return None
            raise
        return RuleSet.from_dict(payload)

    def delete_rules(self, pipeline: str) -> bool:
        """Detach a pipeline's rule set; True when one was attached."""
        payload = self._request(
            "DELETE", f"/v1/pipelines/{quote(pipeline, safe='')}/rules"
        )
        return bool(check_envelope(payload, "rules_deleted").get("deleted"))

    def repair(
        self,
        pipeline: str,
        rows: "Table | list[dict]",
        iterations: int = 1,
        include_errors: bool = False,
        as_table: bool = False,
    ) -> tuple:
        """Repair rows remotely; returns (repaired rows, summary, report).

        Repaired rows come back as records by default; ``as_table=True``
        returns a :class:`Table` instead (decoded zero-copy from the
        frame tier when negotiated).
        """
        path = f"/v1/pipelines/{quote(pipeline, safe='')}/repair"
        if self._use_frames(framable=isinstance(rows, Table)):
            request = RepairRequest(
                pipeline=pipeline, iterations=iterations, include_errors=include_errors
            )
            body = framing.encode_frame(table=rows, extra=request.to_options())
            try:
                raw, content_type = self._request_raw(
                    "POST", path, body=body, content_type=framing.FRAME_CONTENT_TYPE,
                    accept=framing.FRAME_CONTENT_TYPE,
                )
            except GatewayError as exc:
                if not self._frame_refused(exc):
                    raise
            else:
                if framing.matches_frame_content_type(content_type):
                    frame = self._decode_frame_response(raw)
                    payload = check_envelope(frame.extra, "repair_response")
                    if frame.table is None:
                        raise GatewayError("framed repair response carries no table")
                    repaired = frame.table if as_table else frame.table.to_records()
                    return (
                        repaired,
                        RepairSummary.from_dict(payload["repair"]),
                        ValidationReport.from_dict(payload["report"]),
                    )
                raise GatewayError(
                    f"expected a framed repair response, got {content_type!r}"
                )
        request = RepairRequest(
            records=_as_records(rows),
            pipeline=pipeline,
            iterations=iterations,
            include_errors=include_errors,
        )
        payload = self._request("POST", path, request.to_dict())
        check_envelope(payload, "repair_response")
        records = payload["records"]
        if as_table:
            # Rebuild against the repaired records' own field set is not
            # possible client-side (no schema); as_table over JSON needs
            # the caller's schema — use the input table's when given.
            if not isinstance(rows, Table):
                raise GatewayError(
                    "as_table=True over the JSON tier requires a Table input "
                    "(the client needs its schema to rebuild the result)"
                )
            records = Table.from_records(rows.schema, records)
        return (
            records,
            RepairSummary.from_dict(payload["repair"]),
            ValidationReport.from_dict(payload["report"]),
        )

    def validate_stream(
        self,
        pipeline: str,
        chunks: "Iterable[Table | list[dict] | bytes]",
        workers: int | None = None,
    ) -> StreamSummary:
        """Stream row chunks through ``/validate_stream``.

        Chunks are sent with chunked transfer encoding, so neither side
        ever holds the full stream; the gateway's per-chunk
        acknowledgements are consumed and the final :class:`StreamSummary`
        returned. ``workers > 1`` asks the gateway for sharded execution
        (the summary then arrives without per-chunk acknowledgements).

        ``bytes`` chunks are already-encoded frames, forwarded verbatim
        on the frame tier — so :func:`repro.api.framing.iter_file_frames`
        uploads a frame file with zero re-encoding. Table and record-list
        chunks go as NDJSON unless ``wire="frame"`` is pinned, which
        encodes each :class:`Table` chunk as a frame (record lists are
        then rejected: they carry no schema to encode against).
        """
        # Peek one chunk to pick the wire tier; an empty stream goes out
        # as an empty NDJSON body so the gateway's own 400 surfaces.
        chunk_iter = iter(chunks)
        sentinel = object()
        first = next(chunk_iter, sentinel)

        def rest() -> Iterator:
            if first is not sentinel:
                yield first
            yield from chunk_iter

        bytes_first = first is not sentinel and isinstance(
            first, (bytes, bytearray, memoryview)
        )
        # Stream negotiation is conservative: under "auto", frames are
        # used only for pre-encoded frame-bytes chunks (the tier is then
        # mandatory, not preferred). Table/record chunks stay NDJSON so
        # mixed streams keep their JSON-tier semantics; pin wire="frame"
        # to stream Table chunks as frames.
        if self.wire == "frame":
            use_frames = self._use_frames(framable=True)
        elif bytes_first:
            use_frames = self._use_frames(framable=True)
        else:
            use_frames = False

        if use_frames:
            content_type = framing.FRAME_CONTENT_TYPE

            def body() -> "Iterable[bytes]":
                for chunk in rest():
                    if isinstance(chunk, (bytes, bytearray, memoryview)):
                        yield bytes(chunk)
                    elif isinstance(chunk, Table):
                        yield framing.encode_frame(table=chunk)
                    else:
                        raise GatewayError(
                            "framed streams take Table or frame-bytes chunks; "
                            f"got {type(chunk).__name__} (use wire='json' for "
                            "record lists)"
                        )
        else:
            if bytes_first:
                raise GatewayError(
                    "frame-bytes chunks need the frame tier, but the gateway "
                    "does not speak it (or wire='json' is pinned)"
                )
            content_type = "application/x-ndjson"

            def body() -> "Iterable[bytes]":
                for chunk in rest():
                    yield json.dumps({"records": _as_records(chunk)}).encode("utf-8") + b"\n"

        path = f"/v1/pipelines/{quote(pipeline, safe='')}/validate_stream"
        if workers is not None and workers > 1:
            path += f"?workers={int(workers)}"
        # Streams always open a dedicated connection: the chunked body is
        # a one-shot generator, so a stale pooled socket could not be
        # retried transparently. On clean completion the (fully drained)
        # connection is parked for this thread's next request.
        connection = self._connect()
        try:
            try:
                connection.request(
                    "POST",
                    path,
                    body=body(),
                    headers={"Content-Type": content_type},
                    encode_chunked=True,
                )
            except (BrokenPipeError, ConnectionResetError):
                # The gateway rejects a bad stream as soon as it sees it
                # and stops reading; our remaining upload then fails at
                # the socket. Its error response is usually already in
                # the receive buffer — surface that instead of the pipe.
                pass
            response = connection.getresponse()
            if response.status >= 400:
                raise self._error_from(
                    response.status, response.read(), response.getheader("Retry-After")
                )
            summary: StreamSummary | None = None
            for raw in response:
                line = raw.strip()
                if not line:
                    continue
                payload = json.loads(line)
                kind = payload.get("kind")
                if kind == "stream_chunk":
                    continue
                if kind == "error":
                    raise GatewayError(
                        f"gateway error {payload.get('status')}: {payload.get('error')}",
                        status=payload.get("status"),
                    )
                summary = StreamSummary.from_dict(payload)
            if summary is None:
                raise GatewayError("stream response ended without a summary")
            # Line iteration stops at EOF without marking the response
            # closed; an explicit drain does, so the connection is truly
            # reusable when parked.
            response.read()
        except BaseException:
            self._discard(connection)
            raise
        if response.will_close or not response.isclosed():
            self._discard(connection)
        else:
            self._park(connection)
        return summary

    def validate_frame_file(
        self, pipeline: str, path, workers: int | None = None
    ) -> StreamSummary:
        """Stream a frame file through ``/validate_stream`` without decoding.

        Raw frames are read off disk and forwarded verbatim (see
        :func:`repro.api.framing.iter_file_frames`), so a file larger
        than RAM uploads in bounded memory on both ends. Requires the
        frame tier (``wire="json"`` or an old gateway raises).
        """
        if not self._use_frames(framable=True):
            raise GatewayError(
                "validate_frame_file needs the frame tier, but the gateway "
                "does not speak it (or wire='json' is pinned)"
            )
        return self.validate_stream(
            pipeline, framing.iter_file_frames(path), workers=workers
        )

    # -- plumbing ----------------------------------------------------------
    #: socket failures that mean a pooled keep-alive went stale under us
    #: (RemoteDisconnected subclasses both BadStatusLine and
    #: ConnectionResetError, so it is covered twice over)
    _STALE_SOCKET_ERRORS = (
        BadStatusLine,
        ConnectionResetError,
        BrokenPipeError,
        ConnectionAbortedError,
    )

    def _connect(self) -> HTTPConnection:
        if self.scheme == "https":
            connection = HTTPSConnection(self.host, self.port, timeout=self.timeout)
        else:
            connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        with self._conns_lock:
            self._conns.add(connection)
        return connection

    def _acquire(self) -> "tuple[HTTPConnection, bool]":
        """This thread's parked connection (reused=True) or a fresh one."""
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            self._local.connection = None
            return connection, True
        return self._connect(), False

    def _park(self, connection: HTTPConnection) -> None:
        """Keep a healthy connection for this thread's next request."""
        parked = getattr(self._local, "connection", None)
        if parked is not None and parked is not connection:
            self._discard(parked)
        self._local.connection = connection

    def _discard(self, connection: HTTPConnection) -> None:
        if getattr(self._local, "connection", None) is connection:
            self._local.connection = None
        with self._conns_lock:
            self._conns.discard(connection)
        try:
            connection.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        content_type = None if body is None else "application/json"
        return json.loads(self._request_raw(method, path, body=body, content_type=content_type)[0])

    def _request_raw(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        content_type: str | None = None,
        accept: str | None = None,
    ) -> tuple[bytes, str]:
        """One request → (decompressed body bytes, response content type).

        Rides the calling thread's pooled connection. A stale socket is
        retried once on a fresh connection *only* when the failed
        attempt reused a pooled socket and died before any response
        bytes — the server demonstrably never answered, so the resend
        cannot double-execute even a non-idempotent body. A fresh
        connection failing, or any failure after the status line,
        propagates unchanged.
        """
        headers = {"Accept-Encoding": "gzip"}
        if content_type is not None:
            headers["Content-Type"] = content_type
        if accept is not None:
            headers["Accept"] = accept
        for attempt in (0, 1):
            connection, reused = self._acquire()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                break
            except self._STALE_SOCKET_ERRORS:
                self._discard(connection)
                if not reused or attempt:
                    raise
        try:
            raw = self._read_response(response)
        except BaseException:
            self._discard(connection)
            raise
        if response.will_close:
            # The server is hanging up after this response (our gateways
            # do on every error envelope) — don't pool a dead socket.
            self._discard(connection)
        else:
            self._park(connection)
        if response.status >= 400:
            raise self._error_from(
                response.status, raw, response.getheader("Retry-After")
            )
        return raw, response.getheader("Content-Type") or ""

    @staticmethod
    def _read_response(response: HTTPResponse) -> bytes:
        raw = response.read()
        if (response.getheader("Content-Encoding") or "").strip().lower() == "gzip":
            try:
                raw = gzip.decompress(raw)
            except (OSError, EOFError) as exc:
                raise GatewayError(f"malformed gzip response body: {exc}") from None
        return raw

    def _decode_report(self, raw: bytes, content_type: str) -> ValidationReport:
        if framing.matches_frame_content_type(content_type):
            return framing.report_from_frame(self._decode_frame_response(raw))
        return ValidationReport.from_dict(json.loads(raw))

    @staticmethod
    def _decode_frame_response(raw: bytes) -> "framing.Frame":
        try:
            return framing.decode_frame(raw)
        except FrameError as exc:
            raise GatewayError(f"malformed frame response: {exc}") from exc

    @staticmethod
    def _error_from(
        status: int, raw: bytes, retry_after_header: str | None = None
    ) -> GatewayError:
        try:
            message = json.loads(raw).get("error", raw.decode("utf-8", "replace"))
        except (json.JSONDecodeError, AttributeError):
            message = raw.decode("utf-8", "replace")
        retry_after = None
        if retry_after_header is not None:
            # Only the delta-seconds form is parsed (what our gateways
            # send); an HTTP-date or garbage header degrades to None and
            # the retry guard falls back to its 1s default.
            try:
                retry_after = max(float(retry_after_header.strip()), 0.0)
            except ValueError:
                pass
        return GatewayError(
            f"gateway error {status}: {message}", status=status, retry_after=retry_after
        )
