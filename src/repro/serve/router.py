"""Multi-node router tier: one stdlib process fronting N gateway replicas.

A :class:`RouterGateway` speaks the exact ``/v1`` protocol of a single
gateway — :class:`~repro.serve.client.Client` needs no API change — but
executes it across a fleet of worker replicas (usually
:class:`~repro.serve.transport.AsyncGateway` processes spawned by
:class:`~repro.serve.fleet.GatewayFleet`):

* **consistent-hash pipelining** — each pipeline name hashes onto the
  replica ring, so its scheduler coalescing and drift-monitor windows
  stay replica-local. ``validate``/``repair``/``monitor``/``rules``
  requests are proxied to the pipeline's home replica (bytes through,
  both wire tiers, gzip opaque); a dead home fails over to the next
  ring candidate — safe, validation is stateless computation;
* **stream scatter** — a large ``/validate_stream`` body is split at
  its existing chunk boundaries (NDJSON lines or binary frames),
  contiguous chunk ranges are planned with
  :class:`~repro.runtime.sharding.ShardPlanner` and dispatched to the
  healthy replicas as ``?partials=1`` sub-streams; the wire-encoded
  :class:`~repro.runtime.streaming.PartialReport` lines come back,
  offsets are re-globalized in chunk order, and the exact
  :func:`~repro.runtime.streaming.fold_partials` /
  ``fold_rule_partials`` merge reproduces the single-node summary bit
  for bit (client chunk boundaries are preserved, so even ``n_chunks``
  and the float fold order match). A replica dying mid-scatter gets its
  chunk range re-scattered onto survivors; only when no replica is left
  does the client see a retryable 503. When a replica lives on the
  router's own host and advertises ``shm_ingest`` in its healthz
  payload, its chunk range travels through a shared-memory slab
  (``X-Repro-Shm`` header, empty HTTP body) instead of being
  re-serialized onto the socket — any slab failure replays the same
  range as a plain body on the same replica, so shm can only speed a
  request up, never fail it;
* **health-checked membership** — a prober rides each replica's
  ``GET /v1/healthz``: anything but ``200 {"status": "ok"}`` (including
  the 503 ``"draining"`` a closing gateway reports) evicts the replica
  from the ring lookup, and a restarted replica at the same address is
  re-admitted automatically. The ring itself never changes, so
  eviction/re-admission moves no other pipeline's home;
* **fleet observability** — ``GET /v1/metrics`` scrapes every healthy
  replica, regroups each metric under one ``HELP``/``TYPE`` block with
  a ``replica`` label per sample, and prepends the router's own
  ``repro_router_*`` gauge family; ``GET /v1/pipelines`` sums
  :class:`~repro.runtime.service.ServiceStats` counters fleet-wide.

The scatter path buffers one request's chunk list in router memory
(unlike a single gateway, which streams); ``archives`` supplies the
pipeline weight archives the merge context is read from — pipelines the
router has no archive for are proxied whole to their home replica.
"""

from __future__ import annotations

import hashlib
import json
import re
import threading
from bisect import bisect_right
from dataclasses import dataclass
from concurrent.futures import ThreadPoolExecutor
from http.client import HTTPConnection, HTTPException
from pathlib import Path
from typing import Iterable
from urllib.parse import quote, unquote, urlsplit

import repro
from repro.api import framing
from repro.api.protocol import envelope
from repro.exceptions import TransientServiceError, ValidationError
from repro.monitor.export import PROMETHEUS_CONTENT_TYPE
from repro.runtime.sharding import ShardPlanner, _context_from_archive
from repro.runtime.streaming import EMPTY_STREAM_MESSAGE, PartialReport, fold_partials
from repro.serve.gateway import (
    _MONITOR_ROUTE,
    _ROUTE,
    _RULES_ROUTE,
    _GatewayServer,
    _Handler,
    _RequestError,
    parse_query_flag,
)
from repro.serve.transport import _FrameSplitter
from repro.utils.logging import get_logger

__all__ = ["RouterGateway", "RouterTarget"]

logger = get_logger("serve.router")

#: headers forwarded verbatim on proxied requests (wire negotiation and
#: compression stay end-to-end; everything else is hop-local)
_FORWARD_REQUEST_HEADERS = ("Content-Type", "Content-Encoding", "Accept", "Accept-Encoding")
#: headers relayed back from a proxied worker response
_RELAY_RESPONSE_HEADERS = ("Content-Type", "Content-Encoding", "Retry-After", "Vary")

_SAMPLE_LINE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$")

_MISSING = object()

#: replica hosts that share this router's /dev/shm — the only addresses
#: a shared-memory slab hand-off can reach
_SAME_HOST = frozenset({"127.0.0.1", "localhost", "::1"})


@dataclass
class RouterTarget:
    """One worker replica address plus its last observed health."""

    name: str
    host: str
    port: int
    #: optimistic until the first probe says otherwise — requests can
    #: flow the moment the router is up; a dead replica is corrected by
    #: the prober or by the first failed proxy attempt.
    alive: bool = True
    #: last healthz envelope the prober saw (None before first contact)
    last_payload: dict | None = None


class _HashRing:
    """Consistent-hash ring over replica names (md5, virtual nodes).

    Dead replicas are skipped at *lookup*, never removed from the ring,
    so an eviction moves only the evicted replica's keys and a
    re-admission restores the original placement exactly.
    """

    def __init__(self, names: Iterable[str], vnodes: int = 64) -> None:
        points: list[tuple[int, str]] = []
        for name in names:
            for vnode in range(vnodes):
                digest = hashlib.md5(f"{name}#{vnode}".encode("utf-8")).digest()
                points.append((int.from_bytes(digest[:8], "big"), name))
        points.sort()
        self._points = points
        self._hashes = [point for point, _ in points]

    @staticmethod
    def _hash(key: str) -> int:
        return int.from_bytes(hashlib.md5(key.encode("utf-8")).digest()[:8], "big")

    def order(self, key: str, alive: "set[str] | None" = None) -> list[str]:
        """All distinct names in ring order from ``key``'s point.

        ``alive`` filters the result *after* the walk: the preference
        order among living replicas is independent of who is dead.
        """
        if not self._points:
            return []
        start = bisect_right(self._hashes, self._hash(key)) % len(self._points)
        seen: set[str] = set()
        ordered: list[str] = []
        for step in range(len(self._points)):
            name = self._points[(start + step) % len(self._points)][1]
            if name not in seen:
                seen.add(name)
                ordered.append(name)
        if alive is None:
            return ordered
        return [name for name in ordered if name in alive]

    def route(self, key: str, alive: "set[str] | None" = None) -> str | None:
        ordered = self.order(key, alive)
        return ordered[0] if ordered else None


class _RouterHandler(_Handler):
    """Request handler for the router: same body/response plumbing as a
    worker gateway (inherited from :class:`_Handler`), different
    dispatch — everything is answered from the fleet."""

    server_version = "repro-router"

    @property
    def router(self) -> "RouterGateway":
        return self.server.gateway

    # -- dispatch ----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            path = urlsplit(self.path).path
            if path == "/v1/healthz":
                payload = self.router.healthz()
                self._send_json(200 if payload["status"] == "ok" else 503, payload)
            elif path == "/v1/metrics":
                self._send_text(200, self.router.metrics_text(), PROMETHEUS_CONTENT_TYPE)
            elif path == "/v1/pipelines":
                self._send_json(200, self.router.pipelines_payload())
            else:
                match = _MONITOR_ROUTE.match(path) or _RULES_ROUTE.match(path)
                if match is None:
                    raise _RequestError(404, f"no such route: GET {path}")
                # Monitor windows and rule sets live on the pipeline's
                # home replica; proxy the request there verbatim.
                self._relay(
                    self.router.proxy(
                        unquote(match["name"]), "GET", self.path, None, self._forward_headers()
                    )
                )
        except Exception as exc:
            self._send_failure(exc)

    def do_PUT(self) -> None:  # noqa: N802 - stdlib naming
        self._handle_rules_write("PUT")

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        self._handle_rules_write("DELETE")

    def _handle_rules_write(self, method: str) -> None:
        try:
            path = urlsplit(self.path).path
            match = _RULES_ROUTE.match(path)
            if match is None:
                raise _RequestError(404, f"no such route: {method} {path}")
            name = unquote(match["name"])
            body = self._read_raw_body(bound_total=True) if method == "PUT" else None
            # Rule writes fan out to *every* healthy replica: the scatter
            # path may execute a stream on any of them, and all must
            # agree on the attached rule set.
            self._relay(self.router.fanout_rules(name, method, self.path, body))
        except Exception as exc:
            self._send_failure(exc)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            parts = urlsplit(self.path)
            match = _ROUTE.match(parts.path)
            if match is None:
                raise _RequestError(404, f"no such route: POST {parts.path}")
            name = unquote(match["name"])
            if match["action"] == "validate_stream":
                self._handle_validate_stream_routed(name, parts.query)
            else:
                # validate/repair: home-replica proxy with ring failover.
                # The body travels raw (still gzipped if the client sent
                # gzip) — the worker does all decoding.
                body = self._read_raw_body(bound_total=True)
                self._relay(
                    self.router.proxy(name, "POST", self.path, body, self._forward_headers())
                )
        except Exception as exc:
            self._send_failure(exc)

    # -- proxy plumbing ----------------------------------------------------
    def _forward_headers(self) -> dict:
        headers = {}
        for key in _FORWARD_REQUEST_HEADERS:
            value = self.headers.get(key)
            if value is not None:
                headers[key] = value
        return headers

    def _read_raw_body(self, bound_total: bool) -> bytes:
        """The request body exactly as received (no gunzip): proxied
        bodies must reach the worker byte-identical."""
        return b"".join(self._iter_transport_blocks(bound_total=bound_total))

    def _relay(self, result: "tuple[int, object, bytes]") -> None:
        status, headers, raw = result
        self.send_response(status)
        for key in _RELAY_RESPONSE_HEADERS:
            value = headers.get(key) if headers is not None else None
            if value is not None:
                self.send_header(key, value)
        self.send_header("Content-Length", str(len(raw)))
        if status >= 400:
            # Mirror the worker gateways: an error response may leave
            # request-body bytes unread on the wire, so hang up rather
            # than misparse them as the next request.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(raw)

    # -- the scatter path --------------------------------------------------
    def _handle_validate_stream_routed(self, name: str, query: str) -> None:
        query_workers = self._query_workers(query)
        emit_partials = parse_query_flag(query, "partials")
        router = self.router
        order = router.scatter_order(name)
        context = router.merge_context(name)
        if (
            emit_partials          # the caller is itself a merger
            or query_workers is not None  # explicit shard-worker routing
            or len(order) < 2      # nothing to scatter across
            or context is None     # no archive → no local merge context
        ):
            body = self._read_raw_body(bound_total=False)
            self._relay(router.proxy(name, "POST", self.path, body, self._forward_headers()))
            return

        # Split the body at its existing chunk boundaries. Preserving
        # the client's chunking is what makes the merged summary
        # bit-identical to single-node — n_chunks, per-chunk rule
        # outputs, and the float fold order all line up.
        if self._frame_request():
            splitter = _FrameSplitter(self.gateway.max_body_bytes)
            chunks: list[bytes] = []
            for block in self._iter_body_blocks(bound_total=False):
                chunks.extend(splitter.push(block))
            splitter.finish()
            content_type = framing.FRAME_CONTENT_TYPE
        else:
            chunks = [line + b"\n" for line in self._iter_body_lines()]
            content_type = "application/x-ndjson"
        if not chunks:
            raise _RequestError(400, EMPTY_STREAM_MESSAGE)

        partials = router.scatter(name, chunks, content_type)
        ruleset = router.ruleset_for(
            name, expect_rules=any(partial.rule_partial is not None for partial in partials)
        )
        try:
            summary = fold_partials(
                partials,
                threshold=context.threshold,
                rule=context.rule,
                feature_names=context.feature_names,
                rules=ruleset,
            )
        except ValidationError as exc:
            raise _RequestError(400, str(exc)) from exc

        # Same response shape as a single gateway: one ack line per
        # client chunk (global offsets), then the summary envelope.
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        for partial in partials:
            ack = envelope("stream_chunk")
            ack.update(
                offset=int(partial.offset),
                n_rows=int(partial.n_rows),
                n_flagged=int(partial.n_flagged),
            )
            self._write_chunk_line(ack)
        self._write_chunk_line(summary.to_dict())
        self.wfile.write(b"0\r\n\r\n")


class RouterGateway:
    """The router process: health-checked fan-out over worker replicas.

    >>> router = RouterGateway(fleet.targets(), port=0,         # doctest: +SKIP
    ...                        archives={"demo": "demo.npz"})   # doctest: +SKIP
    >>> with router:                                            # doctest: +SKIP
    ...     report = Client(port=router.port).validate("demo", table)  # doctest: +SKIP

    ``targets`` is any iterable of :class:`RouterTarget`,
    ``(name, host, port)`` tuples, or objects with ``.name``/``.host``/
    ``.port`` (a :class:`~repro.serve.fleet.WorkerHandle` works as is).
    ``archives`` maps pipeline name → weight archive; it powers the
    scatter path's merge context — pipelines without one are proxied
    whole. ``health_interval`` (seconds) paces the background prober;
    ``check_workers()`` runs one probe round synchronously (used by
    tests and by callers that manage their own cadence).
    """

    DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024
    DEFAULT_DRAIN_TIMEOUT = 10.0

    def __init__(
        self,
        targets: Iterable,
        host: str = "127.0.0.1",
        port: int = 8080,
        max_body_bytes: int | None = None,
        archives: "dict[str, str | Path] | None" = None,
        health_interval: float = 1.0,
        health_timeout: float = 2.0,
        upstream_timeout: float | None = None,
        scatter_pool_size: int = 16,
        use_shm: bool | None = None,
    ) -> None:
        self.targets: dict[str, RouterTarget] = {}
        for spec in targets:
            target = self._as_target(spec)
            if target.name in self.targets:
                raise ValueError(f"duplicate replica name {target.name!r}")
            self.targets[target.name] = target
        if not self.targets:
            raise ValueError("RouterGateway needs at least one replica target")
        self.max_body_bytes = (
            self.DEFAULT_MAX_BODY_BYTES if max_body_bytes is None else int(max_body_bytes)
        )
        if self.max_body_bytes < 1:
            raise ValueError(f"max_body_bytes must be positive, got {max_body_bytes}")
        self.health_interval = float(health_interval)
        self.health_timeout = float(health_timeout)
        self.upstream_timeout = upstream_timeout
        self._ring = _HashRing(self.targets)
        self._planner = ShardPlanner(chunk_size=1)  # plan over chunk indices
        self._archives = {
            name: Path(archive) for name, archive in (archives or {}).items()
        }
        self._contexts: dict = {}
        self._rulesets: dict = {}
        self._state_lock = threading.Lock()
        #: None = auto: slab hand-off to any same-host replica that
        #: advertises ``shm_ingest`` in its healthz payload; False
        #: disables the path outright (``repro-serve --no-shm``).
        self.use_shm = use_shm
        self._counters = {
            "evictions": 0,
            "readmissions": 0,
            "streams_scattered": 0,
            "rescatters": 0,
            "proxy_retries": 0,
            "shm_scatters": 0,
            "shm_fallbacks": 0,
        }
        self._replica_requests = {name: 0 for name in self.targets}
        self._conn_local = threading.local()
        self._pool = ThreadPoolExecutor(
            max_workers=max(2, scatter_pool_size), thread_name_prefix="repro-router"
        )
        self._server = _GatewayServer((host, port), _RouterHandler, gateway=self)
        self._thread: threading.Thread | None = None
        self._health_thread: threading.Thread | None = None
        self._health_stop = threading.Event()
        self._serving = False
        self._draining = False
        self._closed = False

    @staticmethod
    def _as_target(spec) -> RouterTarget:
        if isinstance(spec, RouterTarget):
            return spec
        if isinstance(spec, (tuple, list)) and len(spec) == 3:
            name, host, port = spec
            return RouterTarget(name=str(name), host=str(host), port=int(port))
        return RouterTarget(name=str(spec.name), host=str(spec.host), port=int(spec.port))

    # -- addressing --------------------------------------------------------
    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- membership --------------------------------------------------------
    def alive_names(self) -> set:
        return {name for name, target in self.targets.items() if target.alive}

    def scatter_order(self, name: str) -> list[str]:
        """Healthy replicas in the pipeline's ring order (home first)."""
        return self._ring.order(name, self.alive_names())

    def _mark_dead(self, name: str) -> None:
        target = self.targets[name]
        with self._state_lock:
            if target.alive:
                target.alive = False
                self._counters["evictions"] += 1
                logger.warning("replica %s evicted (request failure)", name)

    def _probe(self, target: RouterTarget) -> bool:
        connection = HTTPConnection(target.host, target.port, timeout=self.health_timeout)
        try:
            connection.request("GET", "/v1/healthz")
            response = connection.getresponse()
            raw = response.read()
            payload = json.loads(raw) if raw else {}
            target.last_payload = payload if isinstance(payload, dict) else None
            # A draining gateway answers 503 {"status": "draining"}:
            # unhealthy for routing purposes even though it still speaks.
            return response.status == 200 and payload.get("status") == "ok"
        except (OSError, HTTPException, ValueError):
            return False
        finally:
            connection.close()

    def check_workers(self) -> dict:
        """One synchronous probe round; returns ``{name: healthy}``.

        Transitions are counted (``repro_router_evictions_total`` /
        ``..._readmissions_total``) and logged. The background prober
        calls this every ``health_interval`` seconds; tests call it
        directly for deterministic eviction/re-admission assertions.
        """
        results = {}
        for name, target in self.targets.items():
            healthy = self._probe(target)
            with self._state_lock:
                if target.alive and not healthy:
                    self._counters["evictions"] += 1
                    logger.warning("replica %s evicted (health probe)", name)
                elif not target.alive and healthy:
                    self._counters["readmissions"] += 1
                    logger.info("replica %s re-admitted", name)
                target.alive = healthy
            results[name] = healthy
        return results

    def _health_loop(self) -> None:
        while not self._health_stop.wait(self.health_interval):
            try:
                self.check_workers()
            except Exception:  # pragma: no cover - prober must never die
                logger.exception("health probe round failed")

    # -- upstream requests -------------------------------------------------
    def _thread_conns(self) -> dict:
        conns = getattr(self._conn_local, "conns", None)
        if conns is None:
            conns = self._conn_local.conns = {}
        return conns

    def _request(
        self,
        target: RouterTarget,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict | None = None,
    ) -> "tuple[int, object, bytes]":
        """One upstream round-trip with per-thread connection reuse.

        A stale pooled socket is retried once with a fresh connection —
        safe here even for POST: every routed body is fully buffered and
        validation is stateless computation.
        """
        conns = self._thread_conns()
        for attempt in (0, 1):
            connection = conns.pop(target.name, None)
            reused = connection is not None
            if connection is None:
                connection = HTTPConnection(
                    target.host, target.port, timeout=self.upstream_timeout
                )
            try:
                connection.request(method, path, body=body, headers=headers or {})
                response = connection.getresponse()
                raw = response.read()
            except (OSError, HTTPException):
                connection.close()
                if not reused or attempt:
                    raise
                continue
            if response.will_close:
                connection.close()
            else:
                conns[target.name] = connection
            return response.status, response.headers, raw
        raise AssertionError("unreachable")  # pragma: no cover

    def _count(self, key: str, replica: str | None = None) -> None:
        with self._state_lock:
            if key:
                self._counters[key] += 1
            if replica is not None:
                self._replica_requests[replica] += 1

    def proxy(
        self,
        key: str,
        method: str,
        path: str,
        body: bytes | None,
        headers: dict | None,
    ) -> "tuple[int, object, bytes]":
        """Send to the key's home replica; fail over along the ring."""
        candidates = self._ring.order(key, self.alive_names())
        if not candidates:
            raise TransientServiceError("no healthy replicas available")
        last_error: Exception | None = None
        for position, name in enumerate(candidates):
            if position:
                self._count("proxy_retries")
            try:
                result = self._request(self.targets[name], method, path, body, headers)
            except (OSError, HTTPException) as exc:
                self._mark_dead(name)
                last_error = exc
                continue
            self._count("", replica=name)
            return result
        raise TransientServiceError(
            f"all {len(candidates)} replica(s) failed for {method} {path}: {last_error}"
        )

    def fanout_rules(
        self, name: str, method: str, path: str, body: bytes | None
    ) -> "tuple[int, object, bytes]":
        """Apply a rules write on every healthy replica; answer with the
        home replica's canonical response and refresh the fold cache."""
        candidates = self._ring.order(name, self.alive_names())
        if not candidates:
            raise TransientServiceError("no healthy replicas available")
        headers = {"Content-Type": "application/json"} if body is not None else {}
        home_result = None
        for replica in candidates:
            try:
                result = self._request(self.targets[replica], method, path, body, headers)
            except (OSError, HTTPException):
                self._mark_dead(replica)
                continue
            self._count("", replica=replica)
            if home_result is None:
                home_result = result
        if home_result is None:
            raise TransientServiceError(
                f"all {len(candidates)} replica(s) failed for {method} {path}"
            )
        status, _, raw = home_result
        if 200 <= status < 300:
            with self._state_lock:
                if method == "DELETE":
                    self._rulesets[name] = None
                else:
                    try:
                        from repro.rules import RuleSet

                        self._rulesets[name] = RuleSet.from_payload(json.loads(raw))
                    except Exception:
                        # Never let a cache refresh break the write path;
                        # the lazy fetch will repopulate it.
                        self._rulesets.pop(name, None)
        return home_result

    # -- scatter -----------------------------------------------------------
    def merge_context(self, name: str):
        """The archive-derived fold context for a pipeline (cached)."""
        with self._state_lock:
            context = self._contexts.get(name, _MISSING)
        if context is not _MISSING:
            return context
        archive = self._archives.get(name)
        context = None
        if archive is not None:
            try:
                context = _context_from_archive(archive)
            except Exception as exc:
                logger.warning("no merge context for %r (%s); proxying streams", name, exc)
        with self._state_lock:
            self._contexts[name] = context
        return context

    def ruleset_for(self, name: str, expect_rules: bool = False):
        """The pipeline's attached rule set, fetched lazily from its home
        replica and cached. ``expect_rules=True`` (partials carried rule
        outputs) forces a re-fetch when the cache says None — rules were
        attached behind the router's back."""
        with self._state_lock:
            cached = self._rulesets.get(name, _MISSING)
        if cached is not _MISSING and not (expect_rules and cached is None):
            return cached
        ruleset = self._fetch_ruleset(name)
        with self._state_lock:
            self._rulesets[name] = ruleset
        return ruleset

    def _fetch_ruleset(self, name: str):
        try:
            status, _, raw = self.proxy(
                name, "GET", f"/v1/pipelines/{quote(name, safe='')}/rules", None, None
            )
        except TransientServiceError:
            return None
        if status != 200:
            return None
        try:
            from repro.rules import RuleSet

            return RuleSet.from_payload(json.loads(raw))
        except Exception as exc:
            logger.warning("could not decode rule set for %r: %s", name, exc)
            return None

    def scatter(self, name: str, chunks: "list[bytes]", content_type: str) -> "list[PartialReport]":
        """Scatter pre-split chunk bodies across the healthy replicas and
        return the decoded partials in global chunk order, offsets
        re-globalized."""
        order = self.scatter_order(name)
        if not order:
            raise TransientServiceError("no healthy replicas available")
        plan = self._planner.plan(len(chunks), len(order))
        path = f"/v1/pipelines/{quote(name, safe='')}/validate_stream?partials=1"
        headers = {"Content-Type": content_type}
        futures = [
            self._pool.submit(
                self._scatter_range,
                name,
                path,
                b"".join(chunks[shard.offset : shard.stop]),
                headers,
                replica,
                shard.n_rows,  # chunk count for this range (chunk_size=1 planner)
            )
            for shard, replica in zip(plan, order)
        ]
        # Any failure (client 4xx propagated, or all replicas exhausted)
        # surfaces from the first future that raised.
        ranges = [future.result() for future in futures]
        partials = [partial for chunk_range in ranges for partial in chunk_range]
        offset = 0
        for partial in partials:
            partial.offset = offset
            offset += partial.n_rows
        self._count("streams_scattered")
        return partials

    def _shm_eligible(self, target: RouterTarget) -> bool:
        """Whether a chunk range can reach ``target`` through a slab:
        shm not disabled, the replica is on this host, and its last
        healthz payload advertised ``shm_ingest`` (older or
        shm-disabled gateways lack the field entirely → plain body)."""
        if self.use_shm is False or target.host not in _SAME_HOST:
            return False
        payload = target.last_payload
        if not (isinstance(payload, dict) and payload.get("shm_ingest")):
            return False
        from repro.runtime.shm import shm_available

        return shm_available()

    def _request_via_slab(
        self, target: RouterTarget, path: str, body: bytes, headers: dict
    ) -> "tuple[int, object, bytes]":
        """POST a chunk range by name: the encoded chunks go into a
        shared-memory slab and the request carries an empty body plus
        ``X-Repro-Shm: <name>;<size>``. The slab outlives the request
        only until the reply arrives — the worker has fully consumed it
        by then (its stream validation completes before it answers)."""
        from repro.runtime.shm import SharedSlab

        slab = SharedSlab.create_bytes(len(body))
        try:
            slab.buf[: len(body)] = body
            shm_headers = dict(headers)
            shm_headers["X-Repro-Shm"] = f"{slab.name};{len(body)}"
            return self._request(target, "POST", path, None, shm_headers)
        finally:
            slab.close()

    def _post_range(
        self, target: RouterTarget, path: str, body: bytes, headers: dict
    ) -> "tuple[int, object, bytes]":
        """One chunk-range POST, slab hand-off first when eligible.

        Any slab-path failure — create/copy error, transport error, or
        a 400 (the replica restarted without ingest behind a stale
        advertisement, or could not attach) — replays the identical
        request with the raw HTTP body on the *same* replica before the
        caller's normal dead-marking/failover sees anything. No request
        ever fails because of shm; a genuine client 400 simply repeats
        identically on the replay and propagates as before.
        """
        if body and self._shm_eligible(target):
            try:
                result = self._request_via_slab(target, path, body, headers)
            except (OSError, HTTPException, ValueError):
                self._count("shm_fallbacks")
            else:
                if result[0] != 400:
                    self._count("shm_scatters")
                    return result
                self._count("shm_fallbacks")
        return self._request(target, "POST", path, body, headers)

    def _scatter_range(
        self,
        name: str,
        path: str,
        body: bytes,
        headers: dict,
        first_replica: str,
        n_chunks: int,
    ) -> "list[PartialReport]":
        tried: set = set()
        replica = first_replica
        last_error: object = None
        while replica is not None:
            target = self.targets[replica]
            failed = False
            try:
                status, _, raw = self._post_range(target, path, body, headers)
            except (OSError, HTTPException) as exc:
                last_error, failed = exc, True
            else:
                if status == 200:
                    partials = self._parse_partials(raw)
                    if len(partials) == n_chunks:
                        self._count("", replica=replica)
                        return partials
                    # A replica answering with the wrong partial count is
                    # as good as dead for this request: never merge a
                    # wrong-shaped range, retry it elsewhere.
                    last_error = (
                        f"replica {replica} returned {len(partials)} partial(s) "
                        f"for {n_chunks} chunk(s)"
                    )
                    failed = True
                elif 400 <= status < 500:
                    # Client-caused (malformed chunk, schema mismatch, …):
                    # every replica would refuse identically — propagate.
                    raise _RequestError(status, self._error_message(raw, status))
                else:
                    last_error, failed = f"replica {replica} answered {status}", True
            if failed:
                self._mark_dead(replica)
                tried.add(replica)
                survivors = [
                    candidate
                    for candidate in self._ring.order(name, self.alive_names())
                    if candidate not in tried
                ]
                replica = survivors[0] if survivors else None
                if replica is not None:
                    self._count("rescatters")
        raise TransientServiceError(
            f"stream scatter failed on every replica ({last_error})"
        )

    @staticmethod
    def _error_message(raw: bytes, status: int) -> str:
        try:
            payload = json.loads(raw)
            message = payload.get("error")
            if isinstance(message, str):
                return message
        except (ValueError, AttributeError):
            pass
        return f"upstream replica answered HTTP {status}"

    @staticmethod
    def _parse_partials(raw: bytes) -> "list[PartialReport]":
        partials = []
        for line in raw.splitlines():
            if not line.strip():
                continue
            payload = json.loads(line)
            if payload.get("kind") == "partial_report":
                partials.append(PartialReport.from_dict(payload))
        return partials

    # -- aggregated read endpoints ------------------------------------------
    def healthz(self) -> dict:
        healthy = self.alive_names()
        if self._draining:
            status = "draining"
        elif healthy:
            status = "ok"
        else:
            status = "degraded"
        pipelines = 0
        for target in self.targets.values():
            payload = target.last_payload
            if isinstance(payload, dict):
                pipelines = max(pipelines, int(payload.get("pipelines", 0) or 0))
        payload = envelope("health")
        payload.update(
            status=status,
            version=repro.__version__,
            role="router",
            replicas=len(self.targets),
            healthy_replicas=len(healthy),
            pipelines=pipelines or len(self._archives),
            wire_formats=["application/json", framing.FRAME_CONTENT_TYPE],
            frame_version=framing.FRAME_VERSION,
        )
        return payload

    def pipelines_payload(self) -> dict:
        """Fleet-wide :class:`ServiceStats`: counters summed, residency
        OR-ed, ``registered`` maxed (every replica registers the same
        set)."""
        merged: dict | None = None
        for name in sorted(self.alive_names()):
            try:
                status, _, raw = self._request(self.targets[name], "GET", "/v1/pipelines")
            except (OSError, HTTPException):
                self._mark_dead(name)
                continue
            if status != 200:
                continue
            payload = json.loads(raw)
            if merged is None:
                merged = payload
                continue
            merged["registered"] = max(merged["registered"], payload["registered"])
            for key in ("resident", "loads", "evictions", "hits", "validations",
                        "repairs", "rows_validated"):
                merged[key] = merged.get(key, 0) + payload.get(key, 0)
            for pipeline, entry in payload.get("pipelines", {}).items():
                into = merged.setdefault("pipelines", {}).setdefault(pipeline, {})
                for field_name, value in entry.items():
                    if isinstance(value, bool):
                        into[field_name] = bool(into.get(field_name, False)) or value
                    elif isinstance(value, int):
                        into[field_name] = int(into.get(field_name, 0)) + value
                    elif field_name not in into:
                        into[field_name] = value
        if merged is None:
            raise TransientServiceError("no healthy replicas available")
        return merged

    def metrics_text(self) -> str:
        """Fleet Prometheus exposition: the ``repro_router_*`` family
        first, then every replica metric regrouped under one HELP/TYPE
        block with a ``replica`` label on each sample."""
        with self._state_lock:
            counters = dict(self._counters)
            replica_requests = dict(self._replica_requests)
        alive = self.alive_names()
        lines: list[str] = []

        def gauge(name: str, help_text: str, value, kind: str = "gauge") -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            lines.append(f"{name} {value}")

        gauge("repro_router_replicas", "Worker replicas configured on the router.",
              len(self.targets))
        gauge("repro_router_replicas_healthy", "Worker replicas currently routable.",
              len(alive))
        lines.append("# HELP repro_router_replica_up Per-replica health (1 routable, 0 evicted).")
        lines.append("# TYPE repro_router_replica_up gauge")
        for name in self.targets:
            lines.append(f'repro_router_replica_up{{replica="{name}"}} {int(name in alive)}')
        lines.append("# HELP repro_router_requests_total Requests routed, per replica.")
        lines.append("# TYPE repro_router_requests_total counter")
        for name, count in replica_requests.items():
            lines.append(f'repro_router_requests_total{{replica="{name}"}} {count}')
        gauge("repro_router_evictions_total",
              "Replica evictions (failed probe or request).", counters["evictions"], "counter")
        gauge("repro_router_readmissions_total",
              "Replicas re-admitted after recovery.", counters["readmissions"], "counter")
        gauge("repro_router_streams_scattered_total",
              "validate_stream requests scattered across the fleet.",
              counters["streams_scattered"], "counter")
        gauge("repro_router_rescatters_total",
              "Chunk ranges re-scattered after a replica failure.",
              counters["rescatters"], "counter")
        gauge("repro_router_proxy_retries_total",
              "Proxied requests retried on a failover replica.",
              counters["proxy_retries"], "counter")
        gauge("repro_router_shm_scatters_total",
              "Chunk ranges handed to same-host replicas via shared-memory slabs.",
              counters["shm_scatters"], "counter")
        gauge("repro_router_shm_fallbacks_total",
              "Slab hand-offs replayed as plain HTTP bodies after a shm failure.",
              counters["shm_fallbacks"], "counter")

        # Prometheus requires all samples of one metric in one block —
        # regroup across replicas instead of concatenating expositions.
        order: list[str] = []
        metrics: dict[str, dict] = {}
        for name in sorted(alive):
            try:
                status, _, raw = self._request(self.targets[name], "GET", "/v1/metrics")
            except (OSError, HTTPException):
                self._mark_dead(name)
                continue
            if status != 200:
                continue
            for line in raw.decode("utf-8", "replace").splitlines():
                if line.startswith("# HELP ") or line.startswith("# TYPE "):
                    keyword = line[2:6]
                    rest = line[7:]
                    metric, _, text = rest.partition(" ")
                    entry = metrics.get(metric)
                    if entry is None:
                        entry = metrics[metric] = {"help": None, "type": None, "samples": []}
                        order.append(metric)
                    key = "help" if keyword == "HELP" else "type"
                    if entry[key] is None:
                        entry[key] = text
                elif line and not line.startswith("#"):
                    match = _SAMPLE_LINE.match(line)
                    if match is None:
                        continue
                    metric, labels, value = match.groups()
                    entry = metrics.get(metric)
                    if entry is None:
                        entry = metrics[metric] = {"help": None, "type": None, "samples": []}
                        order.append(metric)
                    labeled = f'replica="{name}"' + (f",{labels}" if labels else "")
                    entry["samples"].append(f"{metric}{{{labeled}}} {value}")
        for metric in order:
            entry = metrics[metric]
            if entry["help"] is not None:
                lines.append(f"# HELP {metric} {entry['help']}")
            if entry["type"] is not None:
                lines.append(f"# TYPE {metric} {entry['type']}")
            lines.extend(entry["samples"])
        return "\n".join(lines) + "\n"

    # -- lifecycle ---------------------------------------------------------
    def _start_health_thread(self) -> None:
        if self._health_thread is None and self.health_interval > 0:
            self._health_thread = threading.Thread(
                target=self._health_loop, name="repro-router-health", daemon=True
            )
            self._health_thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        logger.info("router serving on %s over %d replica(s)", self.url, len(self.targets))
        self._start_health_thread()
        self._serving = True
        self._server.serve_forever()

    def start(self) -> "RouterGateway":
        """Serve from a background daemon thread."""
        if self._thread is None:
            self._start_health_thread()
            self._serving = True
            self._thread = threading.Thread(
                target=self._server.serve_forever, name="repro-router", daemon=True
            )
            self._thread.start()
        return self

    def close(self, drain_timeout: float | None = None) -> None:
        if self._closed:
            return
        self._closed = True
        timeout = self.DEFAULT_DRAIN_TIMEOUT if drain_timeout is None else float(drain_timeout)
        self._draining = True
        self._health_stop.set()
        if self._serving:
            self._server.shutdown()
            self._serving = False
        if not self._server.drain(timeout):
            logger.warning("router close: requests still in flight after %.1fs drain", timeout)
        self._server.close_idle_connections()
        self._server.server_close()
        self._pool.shutdown(wait=True)
        if self._health_thread is not None:
            self._health_thread.join(timeout=5.0)
            self._health_thread = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "RouterGateway":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
