"""Spawn and supervise N gateway worker replicas from weight archives.

:class:`GatewayFleet` is the process half of the router tier: it spawns
``replicas`` worker processes the same way
:class:`~repro.runtime.sharding.ParallelValidator` spawns shard workers
(``spawn`` context — nothing live is pickled; each worker rebuilds its
pipelines from the weight archives), waits until every worker has
warmed its pipelines and bound its :class:`~repro.serve.transport.AsyncGateway`
port, and hands the resulting addresses to a
:class:`~repro.serve.router.RouterGateway` via :meth:`targets`.

Workers are independent full gateways: each owns a
:class:`~repro.runtime.service.ValidationService`, a micro-batching
scheduler, and its own drift monitors (replica-local by design — the
router pins a pipeline's traffic to its home replica). ``kill()`` and
``restart()`` exist for failover drills: a restarted worker re-binds
the same port, so the router's health prober re-admits it at the same
ring position.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from multiprocessing import get_context
from pathlib import Path

from repro.exceptions import ReproError
from repro.utils.logging import get_logger

__all__ = ["GatewayFleet", "WorkerHandle"]

logger = get_logger("serve.fleet")


def _fleet_worker_main(spec: dict, conn) -> None:
    """Worker process entry point (module-level: spawn-picklable).

    Builds a service from ``spec``, registers + warms every archive,
    attaches rule files, starts an ``AsyncGateway``, reports
    ``("ready", port)`` and then blocks until the parent sends
    ``"stop"`` (or the pipe dies with it).
    """
    try:
        from repro.runtime.service import ValidationService
        from repro.serve.transport import AsyncGateway

        service = ValidationService(
            capacity=spec.get("capacity", 8),
            max_workers=spec.get("workers"),
            shard_workers=spec.get("shard_workers", 0),
            monitor_window=spec.get("monitor_window", 32),
            use_shm=spec.get("use_shm"),
        )
        for name, archive in spec["archives"].items():
            service.register(name, archive)
        for name, rules in (spec.get("rules") or {}).items():
            service.set_rules(name, rules)
        for name in spec["archives"]:
            service.get(name)  # warm: load weights before accepting traffic
        gateway = AsyncGateway(
            service,
            host=spec.get("host", "127.0.0.1"),
            port=spec.get("port", 0),
            max_body_bytes=spec.get("max_body_bytes"),
            batch_window_ms=spec.get("batch_window_ms", 2.0),
            max_batch_rows=spec.get("max_batch_rows", 8192),
            max_queue_depth=spec.get("max_queue_depth", 1024),
            qos_weights=spec.get("qos_weights"),
            shm_ingest=bool(spec.get("shm_ingest", True)),
        )
        gateway.start()
        conn.send(("ready", gateway.port))
    except Exception as exc:  # startup failure → parent raises ReproError
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
        return
    try:
        while True:
            message = conn.recv()
            if message == "stop":
                break
    except (EOFError, OSError):
        pass  # parent died or closed the pipe: shut down anyway
    gateway.close()
    service.close()
    try:
        conn.send(("stopped", None))
    except (BrokenPipeError, OSError):
        pass


@dataclass
class WorkerHandle:
    """One live worker replica: its process, control pipe, and address.

    Satisfies the ``.name``/``.host``/``.port`` target contract of
    :class:`~repro.serve.router.RouterGateway`.
    """

    name: str
    host: str
    port: int
    process: object = field(repr=False, default=None)
    conn: object = field(repr=False, default=None)

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class GatewayFleet:
    """Spawn, address, and tear down N worker gateway replicas.

    >>> fleet = GatewayFleet({"demo": "demo.npz"}, replicas=2)  # doctest: +SKIP
    >>> with fleet:                                             # doctest: +SKIP
    ...     router = RouterGateway(fleet.targets(), port=0,     # doctest: +SKIP
    ...                            archives=fleet.archives)     # doctest: +SKIP

    ``archives`` maps pipeline name → saved weight archive; every
    replica registers and warms the same set (the fleet analogue of
    ``ParallelValidator`` workers rebuilding from one archive).
    ``rules`` maps pipeline name → rule-set file/dict, attached on every
    replica at startup. Remaining ``gateway_options`` are forwarded into
    each worker's ``AsyncGateway``/service spec (``capacity``,
    ``monitor_window``, ``batch_window_ms``, ``max_batch_rows``,
    ``max_queue_depth``, ``qos_weights``, ``max_body_bytes``,
    ``shard_workers``, ``workers``, plus the shared-memory data-plane
    knobs: ``use_shm`` (sharded validation through slabs inside each
    worker; None = auto) and ``shm_ingest`` (advertise slab ingest so a
    same-host router scatters stream chunks by name instead of HTTP
    bodies; defaults to True — the gateway re-probes availability and
    quietly drops the advertisement where /dev/shm is unusable).
    """

    DEFAULT_START_TIMEOUT = 120.0

    def __init__(
        self,
        archives: "dict[str, str | Path]",
        replicas: int = 2,
        host: str = "127.0.0.1",
        rules: "dict[str, object] | None" = None,
        mp_context: str = "spawn",
        start_timeout: float | None = None,
        **gateway_options,
    ) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be positive, got {replicas}")
        self.archives = {name: str(Path(archive)) for name, archive in archives.items()}
        if not self.archives:
            raise ValueError("GatewayFleet needs at least one pipeline archive")
        for name, archive in self.archives.items():
            if not Path(archive).exists():
                raise ReproError(f"no such pipeline archive for {name!r}: {archive}")
        self.replicas = replicas
        self.host = host
        self.rules = dict(rules or {})
        self.start_timeout = (
            self.DEFAULT_START_TIMEOUT if start_timeout is None else float(start_timeout)
        )
        self._gateway_options = gateway_options
        self._mp = get_context(mp_context)
        self.workers: list[WorkerHandle] = []
        self._lock = threading.Lock()
        self._started = False

    def _spec(self, port: int = 0) -> dict:
        spec = {
            "archives": self.archives,
            "rules": self.rules,
            "host": self.host,
            "port": port,
        }
        spec.update(self._gateway_options)
        return spec

    def _spawn(self, name: str, port: int = 0) -> WorkerHandle:
        parent_conn, child_conn = self._mp.Pipe()
        process = self._mp.Process(
            target=_fleet_worker_main,
            args=(self._spec(port), child_conn),
            name=f"repro-{name}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return WorkerHandle(
            name=name, host=self.host, port=port, process=process, conn=parent_conn
        )

    def _await_ready(self, handle: WorkerHandle, deadline: float) -> None:
        timeout = max(0.0, deadline - time.monotonic())
        if not handle.conn.poll(timeout):
            raise ReproError(
                f"worker {handle.name} did not come up within {self.start_timeout:.0f}s"
            )
        kind, value = handle.conn.recv()
        if kind == "error":
            raise ReproError(f"worker {handle.name} failed to start: {value}")
        handle.port = int(value)
        logger.info("worker %s ready on %s:%d", handle.name, handle.host, handle.port)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "GatewayFleet":
        """Spawn all replicas concurrently; block until every port is up."""
        with self._lock:
            if self._started:
                return self
            self._started = True
            deadline = time.monotonic() + self.start_timeout
            self.workers = [self._spawn(f"replica-{i}") for i in range(self.replicas)]
            try:
                for handle in self.workers:
                    self._await_ready(handle, deadline)
            except Exception:
                self._terminate_all()
                raise
        return self

    def targets(self) -> "list[WorkerHandle]":
        """The live worker addresses, in replica order (router input)."""
        return list(self.workers)

    def stop_worker(self, index: int, timeout: float = 15.0) -> None:
        """Graceful worker shutdown (drains its gateway first)."""
        handle = self.workers[index]
        try:
            handle.conn.send("stop")
            if handle.conn.poll(timeout):
                handle.conn.recv()  # ("stopped", None)
        except (BrokenPipeError, OSError, EOFError):
            pass
        handle.process.join(timeout)
        if handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(5.0)

    def kill_worker(self, index: int) -> None:
        """Hard-kill a worker (failover drills: no drain, no goodbye)."""
        handle = self.workers[index]
        handle.process.terminate()
        handle.process.join(10.0)
        try:
            handle.conn.close()
        except OSError:
            pass

    def restart_worker(self, index: int, timeout: float | None = None) -> WorkerHandle:
        """Respawn a (dead) worker on its old port so the router's health
        prober re-admits it at the same ring position."""
        old = self.workers[index]
        if old.process.is_alive():
            self.kill_worker(index)
        handle = self._spawn(old.name, port=old.port)
        deadline = time.monotonic() + (self.start_timeout if timeout is None else timeout)
        try:
            self._await_ready(handle, deadline)
        except Exception:
            handle.process.terminate()
            raise
        self.workers[index] = handle
        return handle

    def _terminate_all(self) -> None:
        for handle in self.workers:
            if handle.process is not None and handle.process.is_alive():
                handle.process.terminate()
        for handle in self.workers:
            if handle.process is not None:
                handle.process.join(5.0)

    def close(self) -> None:
        """Stop every worker gracefully; escalate to terminate on timeout."""
        with self._lock:
            for index, handle in enumerate(self.workers):
                if handle.process is not None and handle.process.is_alive():
                    try:
                        self.stop_worker(index)
                    except Exception:  # pragma: no cover - best-effort teardown
                        logger.exception("stopping worker %s failed", handle.name)
            self._terminate_all()
            self.workers = []
            self._started = False

    def __enter__(self) -> "GatewayFleet":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
