"""Stdlib-only HTTP gateway over a :class:`ValidationService`.

A :class:`ValidationGateway` puts a wire boundary in front of the
multi-pipeline serving layer using nothing but ``http.server``:

* ``GET  /v1/healthz`` — liveness + protocol version;
* ``GET  /v1/pipelines`` — :class:`ServiceStats` snapshot (per-pipeline
  residency and counters);
* ``GET  /v1/pipelines/{name}/monitor`` — the pipeline's
  :class:`~repro.monitor.monitor.MonitorSnapshot` (rolling-window drift
  scores, flag-rate control chart, recent alerts);
* ``GET  /v1/metrics`` — Prometheus text exposition of service stats
  and every live drift monitor;
* ``POST /v1/pipelines/{name}/validate`` — JSON records in, a
  :class:`ValidationReport` envelope out (sparse flagged-cell encoding
  by default; ``include_errors`` switches to dense);
* ``POST /v1/pipelines/{name}/repair`` — records in; repaired records,
  the :class:`RepairSummary`, and the pre-repair report out;
* ``POST /v1/pipelines/{name}/validate_stream`` — NDJSON chunks in
  (Content-Length or chunked transfer encoding), a chunked NDJSON
  response out: one acknowledgement line per processed chunk, then the
  final :class:`StreamSummary` envelope. Rides
  :class:`~repro.runtime.streaming.StreamingValidator`, so memory stays
  bounded by the chunk size regardless of stream length;
* ``PUT/GET/DELETE /v1/pipelines/{name}/rules`` — attach, fetch, or
  detach a declarative :class:`~repro.rules.RuleSet`. Attached rules
  are compiled eagerly (malformed or pipeline-incompatible sets are
  refused with HTTP 422, never retried by clients) and every validate
  path — JSON, framed, streamed, sharded — then fuses rule verdicts
  into its reports.

Wire negotiation: every POST endpoint also speaks the binary columnar
frame codec (:mod:`repro.api.framing`, ``application/x-repro-frame``).
A framed *request* is selected by ``Content-Type`` — validate/repair
take one frame (rows as columns, options in the JSON sidecar), the
streaming endpoint takes back-to-back frames (one per chunk, exactly a
:class:`~repro.api.framing.FrameFileWriter` file). A framed *response*
is selected by ``Accept`` on validate (report frame) and repair
(repaired table + summary/report sidecar); the streaming response stays
NDJSON — acks and the summary are tiny. JSON remains the default and
compatibility tier. Additionally, JSON responses are gzip-compressed
when ``Accept-Encoding: gzip`` is present, and gzipped request bodies
(``Content-Encoding: gzip``) are accepted with ``max_body_bytes``
enforced on the *decompressed* size.

Sharded execution: a ``workers`` field on the validate request (or a
``?workers=N`` query parameter on either POST endpoint) routes the batch
through :meth:`ValidationService.validate_sharded` /
:meth:`~ValidationService.validate_stream_sharded` — shard worker
processes governed by the service's budget, results identical to the
in-process path.

Every request is handled on its own thread (``ThreadingHTTPServer``);
the NumPy kernels underneath release the GIL, so concurrent batches
overlap. When a :class:`~repro.serve.scheduler.RequestScheduler` is
attached, non-sharded validate requests additionally coalesce into
fused engine slabs (429 + ``Retry-After`` under backpressure). For a
thread-free transport over the same routes see
:class:`~repro.serve.transport.AsyncGateway`. Errors come back as
``{"kind": "error", ...}`` envelopes with conventional status codes
(400 malformed, 404 unknown, 413 oversized body — bounded by
``max_body_bytes`` — 429 admission, and 500 internal). ``close()``
drains in-flight handlers before the socket and shard pools go away.
"""

from __future__ import annotations

import gzip
import json
import math
import re
import socket
import threading
import time
import zlib
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Iterator
from urllib.parse import parse_qs, unquote, urlsplit

import repro
from repro.api import framing
from repro.api.protocol import SCHEMA_VERSION, envelope
from repro.api.requests import RepairRequest, ValidateRequest
from repro.data.table import Table
from repro.exceptions import (
    AdmissionError,
    FrameSizeError,
    ReproError,
    RuleConfigError,
    SchemaError,
    TransientServiceError,
    ValidationError,
)
from repro.monitor.export import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.runtime.service import ValidationService
from repro.runtime.streaming import StreamingValidator
from repro.utils.logging import get_logger

__all__ = ["ValidationGateway"]

logger = get_logger("serve.gateway")

_ROUTE = re.compile(r"^/v1/pipelines/(?P<name>[^/]+)/(?P<action>validate|repair|validate_stream)$")
_MONITOR_ROUTE = re.compile(r"^/v1/pipelines/(?P<name>[^/]+)/monitor$")
_RULES_ROUTE = re.compile(r"^/v1/pipelines/(?P<name>[^/]+)/rules$")


class _RequestError(Exception):
    """Internal: carry an HTTP status + message to the error encoder."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _error_payload(status: int, message: str) -> dict:
    payload = envelope("error")
    payload.update(status=status, error=message)
    return payload


def parse_query_workers(query: str) -> int | None:
    """Parse a ``?workers=N`` query parameter (shared by both transports)."""
    values = parse_qs(query).get("workers")
    if not values:
        return None
    try:
        workers = int(values[-1])
    except ValueError:
        raise _RequestError(400, f"'workers' must be an integer, got {values[-1]!r}") from None
    if workers < 1:
        raise _RequestError(400, f"'workers' must be >= 1, got {workers}")
    return workers


def parse_query_flag(query: str, name: str) -> bool:
    """Parse a boolean query parameter (``?name=1``/``true``; absent = False)."""
    values = parse_qs(query).get(name)
    if not values:
        return False
    value = values[-1].strip().lower()
    if value in ("1", "true", "yes", "on"):
        return True
    if value in ("0", "false", "no", "off", ""):
        return False
    raise _RequestError(400, f"{name!r} must be a boolean flag, got {values[-1]!r}")


def format_retry_after(seconds: float) -> str:
    """RFC 9110 delta-seconds: whole seconds, rounded up, never ``0``.

    Retry-After does not speak fractions, and ``0`` would invite an
    immediate hammer — both transports (and the router) send hints
    through this one formatter.
    """
    return str(max(1, math.ceil(seconds)))


def accepts_gzip(header: str | None) -> bool:
    """True when an ``Accept-Encoding`` header admits gzip (q>0)."""
    for token in (header or "").split(","):
        name, _, params = token.partition(";")
        if name.strip().lower() != "gzip":
            continue
        params = params.replace(" ", "").lower()
        if params.startswith("q="):
            try:
                return float(params[2:]) > 0.0
            except ValueError:
                return True
        return True
    return False


def health_payload(
    service: "ValidationService", draining: bool = False, shm_ingest: bool = False
) -> dict:
    """The ``/v1/healthz`` envelope (shared by both transports).

    ``draining=True`` reports ``status: "draining"`` — the gateway has
    begun :meth:`close` and is finishing in-flight work. Transports pair
    it with HTTP 503 so load balancers and the router stop sending new
    traffic before the socket actually goes away.
    """
    payload = envelope("health")
    payload.update(
        status="draining" if draining else "ok",
        version=repro.__version__,
        pipelines=len(service.registered),
        # Capability advertisement for client-side negotiation: a
        # client probes this once, then speaks frames only to
        # gateways that list the frame content type (older gateways
        # lack the field entirely → JSON fallback).
        wire_formats=["application/json", framing.FRAME_CONTENT_TYPE],
        frame_version=framing.FRAME_VERSION,
    )
    if shm_ingest:
        # Revision 5, same negotiation pattern: a same-host router sees
        # this and scatters stream chunks through shared-memory slabs
        # instead of HTTP bodies; absent field → plain-body fallback.
        payload["shm_ingest"] = True
    return payload


def failure_status(exc: Exception) -> tuple[int, str, float | None]:
    """Map an exception to ``(HTTP status, message, Retry-After seconds)``.

    Shared by the threaded and asyncio transports so both speak the same
    error contract. ``Retry-After`` is ``None`` except for admission
    rejections (429 backpressure). A 500 means the transport should also
    log the traceback (the only non-client-caused branch).
    """
    if isinstance(exc, _RequestError):
        return exc.status, str(exc), None
    if isinstance(exc, AdmissionError):
        # The scheduler's bounded queue refused the request: pure
        # backpressure. 429 + Retry-After tells a well-behaved client
        # when the queue is expected to have drained.
        return 429, str(exc), max(exc.retry_after, 0.0)
    if isinstance(exc, TransientServiceError):
        # Well-formed request hit a server-side race (pool closed by
        # a concurrent re-registration); a retry is expected to
        # succeed, so signal retryable, not client error.
        return 503, str(exc), None
    if isinstance(exc, FrameSizeError):
        # A frame declaring more bytes than max_body_bytes permits —
        # the framed analogue of an oversized Content-Length. Checked
        # before FrameError's ReproError branch so it maps to 413,
        # not 400.
        return 413, str(exc), None
    if isinstance(exc, RuleConfigError):
        # Well-formed JSON describing an unusable rule set (unknown
        # predicate/column, unfitted category, severity conflict, …):
        # semantically unprocessable, not malformed — 422, checked
        # before the ReproError → 400 branch. Clients must never
        # retry it as transient.
        return 422, str(exc), None
    if isinstance(exc, ReproError):
        # Covers ProtocolError (bad envelopes) and SchemaError
        # (records that don't fit the pipeline) among others — all
        # client-caused.
        return 400, str(exc), None
    return 500, f"internal error: {exc}", None


class _GatewayServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler, gateway: "ValidationGateway") -> None:
        self.gateway = gateway
        # Handler threads are daemons, which socketserver deliberately
        # does not track or join — so a bare server_close() can race
        # still-running handlers. Count in-flight *requests* (a pooled
        # keep-alive connection parked between requests is idle, not in
        # flight — it must not stall close()'s drain) and track open
        # connection sockets so close() can hang up the idle ones.
        self._inflight = 0
        self._inflight_cv = threading.Condition()
        self._connections: set = set()
        super().__init__(address, handler)

    def process_request_thread(self, request, client_address) -> None:
        with self._inflight_cv:
            self._connections.add(request)
        try:
            super().process_request_thread(request, client_address)
        finally:
            with self._inflight_cv:
                self._connections.discard(request)
                self._inflight_cv.notify_all()

    def request_started(self) -> None:
        with self._inflight_cv:
            self._inflight += 1

    def request_finished(self) -> None:
        with self._inflight_cv:
            self._inflight -= 1
            self._inflight_cv.notify_all()

    def drain(self, timeout: float) -> bool:
        """Wait for in-flight requests; True when all finished."""
        deadline = time.monotonic() + timeout
        with self._inflight_cv:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._inflight_cv.wait(remaining)
        return True

    def close_idle_connections(self) -> None:
        """Hang up every tracked connection (called after drain: anything
        left is a keep-alive peer waiting for its next request). The
        socket shutdown pops their blocked reads with EOF, so handler
        threads exit instead of lingering on dead clients."""
        with self._inflight_cv:
            connections = list(self._connections)
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass


class _Handler(BaseHTTPRequestHandler):
    # HTTP/1.1 gives us keep-alive for clients and chunked responses for
    # the streaming endpoint; every response must then declare either a
    # Content-Length or Transfer-Encoding, which _send_json guarantees.
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    @property
    def gateway(self) -> "ValidationGateway":
        return self.server.gateway

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        logger.info("%s %s", self.address_string(), format % args)

    def handle_one_request(self) -> None:
        """Stdlib request loop body, with in-flight accounting.

        The blocking wait for a request line happens *outside* the
        server's in-flight count: a pooled keep-alive client parked
        between requests is idle, and close()'s drain must not wait on
        it. Only once bytes arrive does the request count (and block a
        drain) until its response is written.
        """
        from http import HTTPStatus

        try:
            self.raw_requestline = self.rfile.readline(65537)
            if len(self.raw_requestline) > 65536:
                self.requestline = ""
                self.request_version = ""
                self.command = ""
                self.send_error(HTTPStatus.REQUEST_URI_TOO_LONG)
                return
            if not self.raw_requestline:
                self.close_connection = True
                return
            self.server.request_started()
            try:
                if not self.parse_request():
                    return  # parse_request already sent the error
                method = getattr(self, "do_" + self.command, None)
                if method is None:
                    self.send_error(
                        HTTPStatus.NOT_IMPLEMENTED,
                        "Unsupported method (%r)" % self.command,
                    )
                    return
                method()
                self.wfile.flush()
            finally:
                self.server.request_finished()
        except TimeoutError as exc:
            self.log_error("Request timed out: %r", exc)
            self.close_connection = True

    # -- dispatch ----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            path = urlsplit(self.path).path
            if path == "/v1/healthz":
                payload = self.gateway.healthz()
                self._send_json(200 if payload["status"] == "ok" else 503, payload)
            elif path == "/v1/pipelines":
                self._send_json(200, self.gateway.service.stats_snapshot().to_dict())
            elif path == "/v1/metrics":
                self._send_text(200, self.gateway.metrics_text(), PROMETHEUS_CONTENT_TYPE)
            elif (match := _MONITOR_ROUTE.match(path)) is not None:
                self._handle_monitor(unquote(match["name"]))
            elif (match := _RULES_ROUTE.match(path)) is not None:
                self._handle_get_rules(unquote(match["name"]))
            else:
                raise _RequestError(404, f"no such route: GET {path}")
        except Exception as exc:
            self._send_failure(exc)

    def _require_pipeline(self, name: str) -> None:
        if name not in self.gateway.service.registered:
            raise _RequestError(404, f"unknown pipeline {name!r}")

    def _handle_get_rules(self, name: str) -> None:
        self._require_pipeline(name)
        ruleset = self.gateway.service.get_rules(name)
        if ruleset is None:
            raise _RequestError(404, f"no rule set attached to pipeline {name!r}")
        self._send_json(200, ruleset.to_dict())

    def do_PUT(self) -> None:  # noqa: N802 - stdlib naming
        try:
            path = urlsplit(self.path).path
            match = _RULES_ROUTE.match(path)
            if match is None:
                raise _RequestError(404, f"no such route: PUT {path}")
            name = unquote(match["name"])
            self._require_pipeline(name)
            payload = self._read_json()
            if not isinstance(payload, dict):
                raise _RequestError(400, "rule set body must be a JSON object")
            self.gateway.service.set_rules(name, payload)
            # Echo the canonical stored form (envelope + defaults filled
            # in), so clients see exactly what later validates will use.
            self._send_json(200, self.gateway.service.get_rules(name).to_dict())
        except Exception as exc:
            self._send_failure(exc)

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        try:
            path = urlsplit(self.path).path
            match = _RULES_ROUTE.match(path)
            if match is None:
                raise _RequestError(404, f"no such route: DELETE {path}")
            name = unquote(match["name"])
            self._require_pipeline(name)
            deleted = self.gateway.service.clear_rules(name)
            payload = envelope("rules_deleted")
            payload.update(pipeline=name, deleted=deleted)
            self._send_json(200, payload)
        except Exception as exc:
            self._send_failure(exc)

    def _handle_monitor(self, name: str) -> None:
        if name not in self.gateway.service.registered:
            raise _RequestError(404, f"unknown pipeline {name!r}")
        snapshot = self.gateway.service.monitor_snapshot(name)
        if snapshot is None:
            raise _RequestError(
                404,
                f"no drift monitor for pipeline {name!r} (monitoring disabled "
                "or the archive predates monitoring baselines)",
            )
        self._send_json(200, snapshot.to_dict())

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            parts = urlsplit(self.path)
            match = _ROUTE.match(parts.path)
            if match is None:
                raise _RequestError(404, f"no such route: POST {parts.path}")
            name = unquote(match["name"])
            if name not in self.gateway.service.registered:
                raise _RequestError(404, f"unknown pipeline {name!r}")
            action = match["action"]
            query_workers = self._query_workers(parts.query)
            if action == "validate":
                self._handle_validate(name, query_workers)
            elif action == "repair":
                self._handle_repair(name)
            else:
                self._handle_validate_stream(
                    name, query_workers, parse_query_flag(parts.query, "partials")
                )
        except Exception as exc:
            self._send_failure(exc)

    @staticmethod
    def _query_workers(query: str) -> int | None:
        return parse_query_workers(query)

    # -- content negotiation -----------------------------------------------
    def _frame_request(self) -> bool:
        """True when the request body is a binary columnar frame."""
        return framing.matches_frame_content_type(self.headers.get("Content-Type"))

    def _accepts_frame(self) -> bool:
        """True when the client asked for a framed response via Accept."""
        return framing.matches_frame_content_type(self.headers.get("Accept"))

    def _accepts_gzip(self) -> bool:
        return accepts_gzip(self.headers.get("Accept-Encoding"))

    def _read_frame_request(self, name: str) -> "framing.Frame":
        """Decode a framed request body against the pipeline's schema."""
        schema = self.gateway.service.get(name).preprocessor.schema
        frame = framing.decode_frame(self._read_body(), schema=schema)
        if frame.table is None:
            raise _RequestError(400, "framed request carries no table payload")
        if frame.table.n_rows == 0:
            raise _RequestError(400, "framed request table must not be empty")
        return frame

    # -- endpoints ---------------------------------------------------------
    def _handle_validate(self, name: str, query_workers: int | None = None) -> None:
        if self._frame_request():
            frame = self._read_frame_request(name)
            request = ValidateRequest.from_options(frame.extra, pipeline=name)
            table = frame.table
        else:
            request = ValidateRequest.from_payload(self._read_json(), pipeline=name)
            table = None
        if request.pipeline != name:
            raise _RequestError(
                400, f"request pipeline {request.pipeline!r} does not match URL {name!r}"
            )
        if table is None:
            table = self._build_table(name, request.records)
        workers = request.workers if request.workers is not None else query_workers
        if workers is not None and workers > 1:
            report = self.gateway.service.validate_sharded(name, table, workers=workers)
        elif self.gateway.scheduler is not None:
            # Micro-batching: the request joins its pipeline's queue and
            # may be fused with concurrent small requests into one engine
            # slab; the future resolves to this request's own report,
            # bit-identical to the direct path. A full queue raises
            # AdmissionError → 429 + Retry-After.
            report = self.gateway.scheduler.submit(name, table).result()
        else:
            report = self.gateway.service.validate(name, table)
        errors = "dense" if request.include_errors else "sparse"
        if self._accepts_frame():
            self._send_bytes(200, framing.report_to_frame(report, errors=errors))
        else:
            self._send_json(200, report.to_dict(errors=errors))

    def _handle_repair(self, name: str) -> None:
        if self._frame_request():
            frame = self._read_frame_request(name)
            request = RepairRequest.from_options(frame.extra, pipeline=name)
            table = frame.table
        else:
            request = RepairRequest.from_payload(self._read_json(), pipeline=name)
            table = None
        if request.pipeline != name:
            raise _RequestError(
                400, f"request pipeline {request.pipeline!r} does not match URL {name!r}"
            )
        if table is None:
            table = self._build_table(name, request.records)
        service = self.gateway.service
        report = service.validate(name, table)
        repaired, summary = service.repair(
            name, table, report=report, iterations=request.iterations
        )
        errors = "dense" if request.include_errors else "sparse"
        if self._accepts_frame():
            # The repaired rows travel as binary columns; the summary and
            # pre-repair report ride the frame's JSON sidecar.
            extra = envelope("repair_response")
            extra.update(repair=summary.to_dict(), report=report.to_dict(errors=errors))
            self._send_bytes(200, framing.encode_frame(table=repaired, extra=extra))
            return
        payload = envelope("repair_response")
        payload.update(
            report=report.to_dict(errors=errors),
            repair=summary.to_dict(),
            records=repaired.to_records(),
        )
        self._send_json(200, payload)

    def _handle_validate_stream(
        self,
        name: str,
        query_workers: int | None = None,
        emit_partials: bool = False,
    ) -> None:
        pipeline = self.gateway.service.get(name)
        schema = pipeline.preprocessor.schema
        if emit_partials and query_workers is not None and query_workers > 1:
            # Sharded execution re-cuts the chunk partition, so its
            # partials would not line up with the caller's chunks.
            raise _RequestError(400, "'partials' cannot be combined with 'workers'")

        if self._frame_request():
            # Framed ingest: the body is a back-to-back frame sequence
            # (exactly what FrameFileWriter produces), each frame one
            # chunk. Frames are self-delimiting, so the splitter needs no
            # separators; max_body_bytes bounds each frame, never the
            # stream total.
            def tables() -> Iterator[Table]:
                frames = framing.iter_frames(
                    self._iter_body_blocks(bound_total=False),
                    max_frame_bytes=self.gateway.max_body_bytes,
                )
                for view in frames:
                    frame = framing.decode_frame(view, schema=schema)
                    if frame.table is None:
                        raise _RequestError(400, "framed stream chunk carries no table")
                    yield frame.table

        else:
            def tables() -> Iterator[Table]:
                for line in self._iter_body_lines():
                    try:
                        payload = json.loads(line)
                    except json.JSONDecodeError as exc:
                        raise _RequestError(400, f"malformed NDJSON chunk: {exc}") from exc
                    records = payload.get("records") if isinstance(payload, dict) else payload
                    if not isinstance(records, list):
                        raise _RequestError(400, "each NDJSON line must be a record list")
                    yield Table.from_records(schema, records)

        # Chunks are validated incrementally (memory stays O(chunk)),
        # but nothing is *written* until the request body is fully
        # consumed: stdlib clients send the whole body before reading,
        # so interleaving acks with their upload would fill both socket
        # buffers on long streams and deadlock the connection. Deferring
        # also means any mid-stream failure still gets a clean 400.
        acks: list[dict] = []

        if query_workers is not None and query_workers > 1:
            # Sharded execution regroups the stream into shard-sized
            # super-chunks, so per-client-chunk acks do not apply; the
            # response is the summary envelope alone.
            try:
                summary = self.gateway.service.validate_stream_sharded(
                    name, tables(), workers=query_workers
                )
            except ValidationError as exc:
                raise _RequestError(400, str(exc)) from exc
        else:
            validator = StreamingValidator.from_pipeline(
                pipeline,
                monitor=self.gateway.service.monitor_for(name),
                rules=self.gateway.service.rule_plan_for(name),
            )

            def acknowledged():
                for partial in validator.iter_partials(tables()):
                    if emit_partials:
                        # ``?partials=1`` (the router's scatter path):
                        # each ack line is the full wire-encoded partial
                        # report, so a merger with no live validator can
                        # fold them exactly.
                        acks.append(partial.to_dict())
                    else:
                        ack = envelope("stream_chunk")
                        ack.update(
                            offset=int(partial.offset),
                            n_rows=int(partial.n_rows),
                            n_flagged=int(partial.n_flagged),
                        )
                        acks.append(ack)
                    yield partial

            try:
                summary = validator.fold(acknowledged())
            except ValidationError as exc:
                raise _RequestError(400, str(exc)) from exc
            self.gateway.service.count_validation(name, summary.n_rows)

        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        for ack in acks:
            self._write_chunk_line(ack)
        self._write_chunk_line(summary.to_dict())
        self.wfile.write(b"0\r\n\r\n")

    # -- body reading ------------------------------------------------------
    def _read_body(self) -> bytes:
        return b"".join(self._iter_body_blocks(bound_total=True))

    def _body_limit_exceeded(self) -> _RequestError:
        return _RequestError(
            413,
            f"request body exceeds the configured limit "
            f"({self.gateway.max_body_bytes} bytes)",
        )

    def _iter_body_blocks(self, bound_total: bool) -> Iterator[bytes]:
        encoding = (self.headers.get("Content-Encoding") or "").strip().lower()
        if encoding in ("", "identity"):
            yield from self._iter_transport_blocks(bound_total)
            return
        if encoding != "gzip":
            raise _RequestError(
                415, f"unsupported Content-Encoding {encoding!r}; use gzip or identity"
            )
        # The body limit guards what the server must *hold*, which for a
        # compressed body is the decompressed size — a tiny gzip bomb
        # must not expand past max_body_bytes. The transport-level total
        # bound is therefore lifted here (per-read sizes stay checked)
        # and re-imposed on the inflated byte count instead.
        yield from self._iter_gunzip_blocks(
            self._iter_transport_blocks(bound_total=False), bound_total
        )

    def _iter_gunzip_blocks(self, blocks: Iterator[bytes], bound_total: bool) -> Iterator[bytes]:
        limit = self.gateway.max_body_bytes
        decompressor = zlib.decompressobj(16 + zlib.MAX_WBITS)  # gzip wrapper
        total = 0

        def bounded(piece: bytes) -> bytes:
            nonlocal total
            total += len(piece)
            if bound_total and total > limit:
                raise self._body_limit_exceeded()
            return piece

        try:
            for block in blocks:
                data = decompressor.decompress(block, 65536)
                while True:
                    if data:
                        yield bounded(data)
                    if not decompressor.unconsumed_tail:
                        break
                    data = decompressor.decompress(decompressor.unconsumed_tail, 65536)
            tail = decompressor.flush()
        except zlib.error as exc:
            raise _RequestError(400, f"malformed gzip request body: {exc}") from None
        if tail:
            yield bounded(tail)
        if not decompressor.eof:
            raise _RequestError(400, "truncated gzip request body")

    def _iter_transport_blocks(self, bound_total: bool) -> Iterator[bytes]:
        # Declared sizes are checked *before* any buffer is allocated: a
        # hostile Content-Length (or chunk-size hex) must not make the
        # server reserve arbitrary memory on its behalf. ``bound_total``
        # additionally caps the cumulative size — right for endpoints
        # that buffer the whole body (validate/repair), wrong for the
        # incrementally-consumed streaming endpoint, whose memory is
        # bounded per chunk and whose total length is unbounded by
        # design.
        limit = self.gateway.max_body_bytes
        transfer = (self.headers.get("Transfer-Encoding") or "").lower()
        if "chunked" in transfer:
            yield from self._iter_chunked_blocks(limit, bound_total)
            return
        try:
            remaining = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise _RequestError(400, "malformed Content-Length header") from None
        if bound_total and remaining > limit:
            raise self._body_limit_exceeded()
        while remaining > 0:
            block = self.rfile.read(min(remaining, 65536))
            if not block:
                break
            remaining -= len(block)
            yield block

    def _iter_chunked_blocks(self, limit: int, bound_total: bool) -> Iterator[bytes]:
        total = 0
        while True:
            size_line = self.rfile.readline(65536).strip()
            try:
                size = int(size_line.split(b";", 1)[0], 16)
            except ValueError:
                raise _RequestError(400, "malformed chunked transfer encoding") from None
            if size == 0:
                # Consume optional trailers up to the terminating blank line.
                while self.rfile.readline(65536).strip():
                    pass
                return
            if size > limit:
                raise self._body_limit_exceeded()
            if bound_total:
                total += size
                if total > limit:
                    raise self._body_limit_exceeded()
            yield self.rfile.read(size)
            self.rfile.read(2)  # trailing CRLF

    def _iter_body_lines(self) -> Iterator[bytes]:
        buffer = b""
        for block in self._iter_body_blocks(bound_total=False):
            buffer += block
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                if line.strip():
                    yield line
            # Complete lines are drained first; only the leftover partial
            # line counts against the limit. Without this cap a
            # newline-free stream would grow the buffer unboundedly.
            if len(buffer) > self.gateway.max_body_bytes:
                raise self._body_limit_exceeded()
        if buffer.strip():
            yield buffer

    def _read_json(self) -> object:
        body = self._read_body()
        if not body:
            raise _RequestError(400, "empty request body")
        try:
            return json.loads(body)
        except json.JSONDecodeError as exc:
            raise _RequestError(400, f"malformed JSON body: {exc}") from exc

    def _build_table(self, name: str, records: list[dict]) -> Table:
        if not records:
            raise _RequestError(400, "'records' must not be empty")
        schema = self.gateway.service.get(name).preprocessor.schema
        try:
            return Table.from_records(schema, records)
        except (SchemaError, TypeError, ValueError) as exc:
            raise _RequestError(400, f"records do not fit pipeline schema: {exc}") from exc

    # -- response writing --------------------------------------------------
    def _send_text(self, status: int, body: str, content_type: str) -> None:
        encoded = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def _send_json(
        self,
        status: int,
        payload: dict,
        close: bool = False,
        retry_after: float | None = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        if retry_after is not None:
            self.send_header("Retry-After", format_retry_after(retry_after))
        # Compress only when asked and worthwhile: tiny payloads (acks,
        # health checks, errors) cost more in header bytes + CPU than
        # they save. mtime=0 keeps equal payloads byte-identical.
        if len(body) >= 256 and self._accepts_gzip():
            body = gzip.compress(body, mtime=0)
            self.send_header("Content-Encoding", "gzip")
        self.send_header("Vary", "Accept-Encoding")
        self.send_header("Content-Length", str(len(body)))
        if close:
            # The request body may not have been fully consumed; a
            # keep-alive connection would misparse its remainder as the
            # next request, so hang up after this response.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _send_bytes(self, status: int, body: bytes) -> None:
        """Write a binary frame response (never compressed: already compact)."""
        self.send_response(status)
        self.send_header("Content-Type", framing.FRAME_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _write_chunk_line(self, payload: dict) -> None:
        line = json.dumps(payload).encode("utf-8") + b"\n"
        self.wfile.write(f"{len(line):x}\r\n".encode("ascii") + line + b"\r\n")
        self.wfile.flush()

    def _send_failure(self, exc: Exception) -> None:
        status, message, retry_after = failure_status(exc)
        if status == 500:
            logger.exception("internal error serving %s", self.path)
        try:
            self._send_json(
                status, _error_payload(status, message), close=True, retry_after=retry_after
            )
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass


class ValidationGateway:
    """The HTTP server: binds, serves, and tears down a service front.

    >>> with ValidationGateway(service, port=0) as gateway:   # doctest: +SKIP
    ...     print(gateway.url)                                # doctest: +SKIP
    ...     gateway.serve_forever()                           # doctest: +SKIP

    ``start()`` serves from a daemon thread instead (used by tests and
    embedded callers); ``port=0`` binds an ephemeral port.
    ``max_body_bytes`` bounds what a request may make the server buffer,
    refused with HTTP 413 before any allocation: the whole body for the
    buffered endpoints (validate/repair), each transfer chunk, NDJSON
    line, or binary frame for the streaming endpoint — whose *total*
    length stays unbounded by design. For gzipped bodies the bound
    applies to the decompressed size.
    """

    #: default request-body ceiling: 64 MiB
    DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024

    #: how long close() waits for in-flight handler threads
    DEFAULT_DRAIN_TIMEOUT = 10.0

    def __init__(
        self,
        service: ValidationService,
        host: str = "127.0.0.1",
        port: int = 8080,
        max_body_bytes: int | None = None,
        scheduler=None,
    ) -> None:
        self.service = service
        self.max_body_bytes = (
            self.DEFAULT_MAX_BODY_BYTES if max_body_bytes is None else int(max_body_bytes)
        )
        if self.max_body_bytes < 1:
            raise ValueError(f"max_body_bytes must be positive, got {max_body_bytes}")
        #: optional micro-batching scheduler
        #: (:class:`~repro.serve.scheduler.RequestScheduler`): when given,
        #: non-sharded validate requests coalesce through it instead of
        #: running one engine call per handler thread. Lifecycle stays
        #: with the caller (close() drains but does not close it) —
        #: matching :class:`~repro.serve.transport.AsyncGateway`, which
        #: owns one by default.
        self.scheduler = scheduler
        self._server = _GatewayServer((host, port), _Handler, gateway=self)
        self._thread: threading.Thread | None = None
        self._serving = False
        self._draining = False

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def healthz(self) -> dict:
        return health_payload(self.service, draining=self._draining)

    def metrics_text(self) -> str:
        """Prometheus text exposition of service stats + drift monitors."""
        scheduler_stats = (
            self.scheduler.stats_snapshot() if self.scheduler is not None else None
        )
        return render_prometheus(
            self.service.stats_snapshot(),
            self.service.monitor_snapshots(),
            scheduler=scheduler_stats,
        )

    # -- lifecycle ---------------------------------------------------------
    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        logger.info("serving on %s (schema_version %d)", self.url, SCHEMA_VERSION)
        self._serving = True
        self._server.serve_forever()

    def start(self) -> "ValidationGateway":
        """Serve from a background daemon thread."""
        if self._thread is None:
            self._serving = True
            self._thread = threading.Thread(
                target=self._server.serve_forever, name="repro-serve", daemon=True
            )
            self._thread.start()
        return self

    def close(self, drain_timeout: float | None = None) -> None:
        """Graceful shutdown: stop accepting, drain in-flight, release pools.

        Ordering matters: the accept loop stops first (no new work), then
        in-flight handler threads get ``drain_timeout`` seconds to finish
        writing their responses, and only then do the shard pools and the
        listening socket go away — so an active request never sees its
        pool or socket yanked mid-flight. An externally supplied
        scheduler is *not* closed here (its owner decides when); handlers
        blocked on scheduler futures count as in-flight and are drained
        like any other.
        """
        timeout = self.DEFAULT_DRAIN_TIMEOUT if drain_timeout is None else float(drain_timeout)
        # Health checks flip to 503 "draining" before anything stops:
        # connections served during the drain window (keep-alive peers,
        # the router's health prober) see the state change and stop
        # routing new work here.
        self._draining = True
        if self._serving:
            # shutdown() blocks until serve_forever's loop acknowledges;
            # calling it when the loop never ran would wait forever.
            self._server.shutdown()
            self._serving = False
        if not self._server.drain(timeout):
            logger.warning(
                "gateway close: %d request(s) still in flight after %.1fs drain",
                self._server._inflight,
                timeout,
            )
        # Anything still connected is an idle keep-alive peer; hang up
        # so their handler threads exit instead of outliving the server.
        self._server.close_idle_connections()
        self.service.close_parallel()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ValidationGateway":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
