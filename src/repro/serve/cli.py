"""``repro-serve`` — serve saved DQuaG pipelines over HTTP.

Examples::

    repro-serve --pipeline hotel=models/hotel.npz --port 8080
    repro-serve --demo --port 8080          # fit a tiny synthetic pipeline
    python -m repro.serve --demo            # same, without installation
    repro-serve --demo --rules checks.json  # attach declarative rules
    repro-serve --pipeline hotel=m.npz --rules hotel=checks.json
    repro-serve --demo --batch-window-ms 5 --max-batch-rows 16384
    repro-serve --demo --threaded           # previous thread-per-connection server
    repro-serve --demo --replicas 2         # router tier over 2 worker replicas

The default server is the :class:`~repro.serve.transport.AsyncGateway`:
an asyncio event loop fronting a dynamic micro-batching
:class:`~repro.serve.scheduler.RequestScheduler` that coalesces
concurrent small validate requests into fused engine slabs
(``--batch-window-ms`` / ``--max-batch-rows``) with bounded-queue
admission control (``--max-queue-depth`` → HTTP 429 + ``Retry-After``)
and per-pipeline QoS weights (``--qos-weight``). ``--threaded`` keeps
the previous thread-per-connection ``ValidationGateway`` for one
release. ``--replicas N`` switches to router mode: N ``AsyncGateway``
worker processes are spawned and warmed from the weight archives
(:class:`~repro.serve.fleet.GatewayFleet`) and a
:class:`~repro.serve.router.RouterGateway` on ``--port`` fronts them —
same protocol, same client, fleet-wide capacity.

Then::

    curl http://127.0.0.1:8080/v1/healthz
    curl -X POST http://127.0.0.1:8080/v1/pipelines/hotel/validate \
         -H 'Content-Type: application/json' \
         -d '{"records": [{"adr": 310.0, "country": "PRT", ...}]}'

Bulk ingest can skip JSON entirely — the same endpoints accept the
binary columnar frame tier (see ``repro.api.framing``)::

    python -c "from repro.data import Table; ...; t.to_frame_file('slab.rprf')"
    curl -X POST http://127.0.0.1:8080/v1/pipelines/hotel/validate \
         -H 'Content-Type: application/x-repro-frame' \
         -H 'Accept: application/x-repro-frame' \
         --data-binary @slab.rprf
"""

from __future__ import annotations

import argparse
import sys

from repro.exceptions import ReproError
from repro.runtime.service import ValidationService
from repro.serve.gateway import ValidationGateway
from repro.serve.transport import AsyncGateway
from repro.utils.logging import configure_demo_logging

__all__ = ["main", "fit_demo_pipeline", "DEMO_RECORD"]

#: A row that fits the --demo pipeline's schema (handy for smoke tests).
DEMO_RECORD = {"x": 0.5, "y": 1.0, "z": 0.5, "c": "lo"}


def fit_demo_pipeline():
    """Fit a small synthetic pipeline (columns x, y=2x, z=1-x, c=band(x)).

    Used by ``--demo`` and the CI serve smoke job: it gives the gateway
    something to serve without shipping a weight archive.
    """
    import numpy as np

    from repro.core import DQuaG, DQuaGConfig
    from repro.data import ColumnKind, ColumnSpec, Table, TableSchema

    rng = np.random.default_rng(0)
    x = rng.uniform(0.1, 0.9, 500)
    schema = TableSchema(
        [
            ColumnSpec("x", ColumnKind.NUMERIC, "driver"),
            ColumnSpec("y", ColumnKind.NUMERIC, "2x + noise"),
            ColumnSpec("z", ColumnKind.NUMERIC, "1 - x + noise"),
            ColumnSpec("c", ColumnKind.CATEGORICAL, "band of x", categories=("lo", "hi")),
        ]
    )
    clean = Table(
        schema,
        {
            "x": x,
            "y": 2.0 * x + rng.normal(0, 0.01, x.size),
            "z": 1.0 - x + rng.normal(0, 0.01, x.size),
            "c": np.where(x > 0.5, "hi", "lo"),
        },
    )
    config = DQuaGConfig(hidden_dim=16, epochs=6, batch_size=64)
    return DQuaG(config).fit(clean, rng=0)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve saved DQuaG pipelines over HTTP (stdlib only).",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8080, help="bind port (0 = ephemeral)")
    parser.add_argument(
        "--pipeline",
        action="append",
        default=[],
        metavar="NAME=ARCHIVE",
        help="register a saved pipeline archive under NAME (repeatable)",
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="fit a small synthetic pipeline and serve it as 'demo'",
    )
    parser.add_argument(
        "--rules",
        action="append",
        default=[],
        metavar="[NAME=]FILE",
        help="attach a declarative rule-set JSON file to pipeline NAME "
        "(repeatable); a bare FILE applies to every served pipeline",
    )
    parser.add_argument("--capacity", type=int, default=8, help="LRU capacity for archive-backed pipelines")
    parser.add_argument("--workers", type=int, default=None, help="validation thread-pool size")
    parser.add_argument(
        "--shard-workers",
        type=int,
        default=None,
        help="total shard-worker budget for ?workers=N sharded validation "
        "(default: CPU count; 0 disables sharded execution)",
    )
    parser.add_argument(
        "--monitor-window",
        type=int,
        default=None,
        help="drift-monitor rolling window in chunks (default: 32; 0 disables "
        "monitoring and the /monitor endpoint)",
    )
    parser.add_argument(
        "--max-body-mb",
        type=float,
        default=None,
        help="request-body size limit in MiB; oversized requests get HTTP 413 "
        "(default: 64)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=None,
        metavar="N",
        help="router mode: spawn N async worker replicas from the weight "
        "archives and front them with a consistent-hash router on --port "
        "(requires the async gateway)",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help="serve on the asyncio gateway with micro-batching (the default)",
    )
    mode.add_argument(
        "--threaded",
        action="store_true",
        help="serve on the previous thread-per-connection gateway "
        "(no request coalescing; kept for one release)",
    )
    parser.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        help="micro-batching latency budget: how long a validate request may "
        "wait for co-batchable traffic (default: 2.0; async gateway only)",
    )
    parser.add_argument(
        "--max-batch-rows",
        type=int,
        default=8192,
        help="row ceiling per fused engine slab (default: 8192)",
    )
    parser.add_argument(
        "--max-queue-depth",
        type=int,
        default=1024,
        help="admission bound in pending requests per pipeline; beyond it "
        "requests get HTTP 429 + Retry-After (default: 1024)",
    )
    parser.add_argument(
        "--qos-weight",
        action="append",
        default=[],
        metavar="NAME=WEIGHT",
        help="QoS weight for a pipeline's scheduler queue (repeatable; "
        "unlisted pipelines weigh 1.0)",
    )
    parser.add_argument(
        "--no-shm",
        action="store_true",
        help="disable the shared-memory data plane: sharded validation "
        "falls back to pickled fan-out and the router never hands stream "
        "chunks to same-host replicas via slabs",
    )
    parser.add_argument("--verbose", action="store_true", help="enable INFO logging")
    args = parser.parse_args(argv)

    if args.verbose:
        configure_demo_logging()

    if args.monitor_window is not None and args.monitor_window < 0:
        parser.error(f"--monitor-window must be >= 0, got {args.monitor_window}")
    if args.max_body_mb is not None and args.max_body_mb <= 0:
        parser.error(f"--max-body-mb must be positive, got {args.max_body_mb}")
    max_body_bytes = (
        None if args.max_body_mb is None else int(args.max_body_mb * 1024 * 1024)
    )
    qos_weights: dict[str, float] = {}
    for spec in args.qos_weight:
        name, separator, weight = spec.partition("=")
        if not separator or not name:
            parser.error(f"--qos-weight expects NAME=WEIGHT, got {spec!r}")
        try:
            qos_weights[name] = float(weight)
        except ValueError:
            parser.error(f"--qos-weight weight must be a number, got {spec!r}")
    if args.batch_window_ms < 0:
        parser.error(f"--batch-window-ms must be >= 0, got {args.batch_window_ms}")
    if args.max_batch_rows < 1:
        parser.error(f"--max-batch-rows must be positive, got {args.max_batch_rows}")
    if args.max_queue_depth < 1:
        parser.error(f"--max-queue-depth must be positive, got {args.max_queue_depth}")

    if args.replicas is not None:
        if args.replicas < 1:
            parser.error(f"--replicas must be positive, got {args.replicas}")
        if args.threaded:
            parser.error("--replicas requires the async gateway (drop --threaded)")
        return _serve_fleet(args, parser, max_body_bytes, qos_weights)

    service = ValidationService(
        capacity=args.capacity,
        max_workers=args.workers,
        shard_workers=args.shard_workers,
        monitor_window=32 if args.monitor_window is None else args.monitor_window,
        use_shm=False if args.no_shm else None,
    )
    try:
        for spec in args.pipeline:
            name, separator, archive = spec.partition("=")
            if not separator or not name or not archive:
                parser.error(f"--pipeline expects NAME=ARCHIVE, got {spec!r}")
            service.register(name, archive)
        if args.demo:
            print("fitting demo pipeline...", flush=True)
            service.add("demo", fit_demo_pipeline())
        if not service.registered:
            parser.error("nothing to serve: pass --pipeline NAME=ARCHIVE and/or --demo")

        # Rules are attached after every pipeline is registered so a bare
        # FILE can fan out to all of them; set_rules compiles eagerly, so
        # an incompatible rule file fails startup rather than requests.
        for spec in args.rules:
            name, separator, rule_file = spec.partition("=")
            if separator and (not name or not rule_file):
                parser.error(f"--rules expects [NAME=]FILE, got {spec!r}")
            targets = [name] if separator else service.registered
            if separator and name not in service.registered:
                parser.error(
                    f"--rules names unknown pipeline {name!r}; "
                    f"registered: {service.registered}"
                )
            for target in targets:
                service.set_rules(target, rule_file if separator else spec)
                print(f"attached rules {rule_file if separator else spec} -> {target}", flush=True)

        if args.threaded:
            gateway = ValidationGateway(
                service, host=args.host, port=args.port, max_body_bytes=max_body_bytes
            )
            mode_label = "threaded"
        else:
            gateway = AsyncGateway(
                service,
                host=args.host,
                port=args.port,
                max_body_bytes=max_body_bytes,
                batch_window_ms=args.batch_window_ms,
                max_batch_rows=args.max_batch_rows,
                max_queue_depth=args.max_queue_depth,
                qos_weights=qos_weights or None,
                shm_ingest=not args.no_shm,
            )
            mode_label = "async"
        print(f"serving {service.registered} on {gateway.url} ({mode_label})", flush=True)
        try:
            gateway.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            gateway.close()
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        service.close()


def _serve_fleet(args, parser, max_body_bytes, qos_weights) -> int:
    """``--replicas N``: spawn a worker fleet and front it with a router."""
    import os
    import tempfile

    from repro.serve.fleet import GatewayFleet
    from repro.serve.router import RouterGateway

    archives: dict[str, str] = {}
    for spec in args.pipeline:
        name, separator, archive = spec.partition("=")
        if not separator or not name or not archive:
            parser.error(f"--pipeline expects NAME=ARCHIVE, got {spec!r}")
        archives[name] = archive

    demo_archive: str | None = None
    try:
        if args.demo:
            # Workers rebuild pipelines from archives (nothing live
            # crosses the spawn boundary), so the demo fit is saved to a
            # temp archive every replica — and the router's merge
            # context — loads from.
            print("fitting demo pipeline...", flush=True)
            handle, demo_archive = tempfile.mkstemp(prefix="repro-fleet-demo-", suffix=".npz")
            os.close(handle)
            fit_demo_pipeline().save(demo_archive)
            archives["demo"] = demo_archive
        if not archives:
            parser.error("nothing to serve: pass --pipeline NAME=ARCHIVE and/or --demo")

        rules: dict[str, str] = {}
        for spec in args.rules:
            name, separator, rule_file = spec.partition("=")
            if separator and (not name or not rule_file):
                parser.error(f"--rules expects [NAME=]FILE, got {spec!r}")
            if separator and name not in archives:
                parser.error(
                    f"--rules names unknown pipeline {name!r}; "
                    f"registered: {sorted(archives)}"
                )
            for target in ([name] if separator else sorted(archives)):
                rules[target] = rule_file if separator else spec

        fleet = GatewayFleet(
            archives,
            replicas=args.replicas,
            host=args.host,
            rules=rules or None,
            capacity=args.capacity,
            workers=args.workers,
            shard_workers=args.shard_workers,
            monitor_window=32 if args.monitor_window is None else args.monitor_window,
            max_body_bytes=max_body_bytes,
            batch_window_ms=args.batch_window_ms,
            max_batch_rows=args.max_batch_rows,
            max_queue_depth=args.max_queue_depth,
            qos_weights=qos_weights or None,
            use_shm=False if args.no_shm else None,
            shm_ingest=not args.no_shm,
        )
        print(f"spawning {args.replicas} worker replica(s)...", flush=True)
        with fleet:
            router = RouterGateway(
                fleet.targets(),
                host=args.host,
                port=args.port,
                max_body_bytes=max_body_bytes,
                archives=archives,
                use_shm=False if args.no_shm else None,
            )
            workers = ", ".join(f"{w.name}@{w.host}:{w.port}" for w in fleet.targets())
            print(
                f"serving {sorted(archives)} on {router.url} "
                f"(router over {workers})",
                flush=True,
            )
            try:
                router.serve_forever()
            except KeyboardInterrupt:
                pass
            finally:
                router.close()
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if demo_archive is not None:
            try:
                os.unlink(demo_archive)
            except OSError:
                pass


if __name__ == "__main__":
    sys.exit(main())
