"""The versioned wire protocol: exact JSON forms of every outcome object.

Every result the framework produces — :class:`ValidationReport`,
:class:`BatchVerdict`, :class:`RepairSummary`, the streaming
:class:`PartialReport`/:class:`StreamSummary` pair,
:class:`ThresholdCalibration`, and :class:`ServiceStats` — serializes to
a plain-JSON dict and back under one ``schema_version``:

* **exactness** — the default (``errors="dense"``) encoding round-trips
  bit-for-bit, NumPy dtypes included: floats travel as shortest-repr
  decimals (which IEEE-754 doubles survive exactly), arrays carry their
  dtype and shape;
* **sparsity** — boolean flag masks are always encoded as coordinate
  lists, and ``errors="sparse"`` additionally restricts error values to
  the flagged coordinates, so a million-row report with a handful of bad
  cells serializes in kilobytes (unflagged errors decode as zeros; the
  flags, threshold, and verdict stay exact);
* **gating** — :func:`check_envelope` rejects payloads whose
  ``schema_version`` or ``kind`` does not match, raising
  :class:`~repro.exceptions.ProtocolError` instead of mis-decoding.

The outcome classes keep thin ``to_dict()``/``from_dict()`` methods that
delegate here; :func:`to_dict`/:func:`from_dict` at the bottom dispatch
generically on object type / payload kind.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BatchVerdict
from repro.core.repair import RepairSummary
from repro.core.thresholds import ThresholdCalibration
from repro.core.validator import ValidationReport
from repro.exceptions import ProtocolError
from repro.experiments.reporting import ResultTable
from repro.monitor.monitor import DriftAlert, MonitorSnapshot
from repro.rules import RulePartial, RuleReport, RuleSet
from repro.runtime.service import ServiceStats
from repro.runtime.streaming import PartialReport, StreamSummary

__all__ = [
    "SCHEMA_VERSION",
    "CODEC_REVISION",
    "envelope",
    "check_envelope",
    "encode_array",
    "decode_array",
    "encode_mask",
    "decode_mask",
    "jsonable",
    "report_to_dict",
    "report_from_dict",
    "summary_dict",
    "render_summary",
    "verdict_to_dict",
    "verdict_from_dict",
    "repair_summary_to_dict",
    "repair_summary_from_dict",
    "partial_report_to_dict",
    "partial_report_from_dict",
    "stream_summary_to_dict",
    "stream_summary_from_dict",
    "calibration_to_dict",
    "calibration_from_dict",
    "service_stats_to_dict",
    "service_stats_from_dict",
    "drift_alert_to_dict",
    "drift_alert_from_dict",
    "monitor_snapshot_to_dict",
    "monitor_snapshot_from_dict",
    "result_table_to_dict",
    "result_table_from_dict",
    "rule_set_to_dict",
    "rule_set_from_dict",
    "rule_report_to_dict",
    "rule_report_from_dict",
    "to_dict",
    "from_dict",
]

#: Version of the wire format. Bump on any incompatible change; decoders
#: reject other versions outright rather than guessing.
SCHEMA_VERSION = 1

#: Additive codec revision *within* SCHEMA_VERSION 1. Revisions add
#: optional fields that old decoders ignore and new decoders default
#: (``payload.get``) — never rename, retype, or remove a field (that
#: takes a SCHEMA_VERSION bump, gated by the golden fixtures in
#: ``tests/golden/``). History:
#: 1 — PR 2 initial protocol.
#: 2 — observation timestamps on partial_report (``timestamp``) and
#:     stream_summary (``first_timestamp``/``last_timestamp``); new
#:     monitor_snapshot / drift_alert kinds.
#: 3 — binary columnar frame codec (:mod:`repro.api.framing`,
#:     ``application/x-repro-frame``) as a negotiated transport beside
#:     JSON; new health fields ``wire_formats``/``frame_version``. The
#:     frame payload itself is versioned independently by
#:     :data:`repro.api.framing.FRAME_VERSION`.
#: 4 — declarative rule engine (:mod:`repro.rules`): new ``rule_set``
#:     and ``rule_report`` kinds; optional ``rule_report`` on
#:     validation_report / stream_summary and ``rule_partial`` on
#:     partial_report. The new keys are *omitted* (not null) when rules
#:     are off, so rules-off payloads stay byte-identical to revision 3.
#: 5 — shared-memory data plane + idle-pool reaping: optional
#:     ``pool_reaps`` on service_stats and ``shm_ingest`` on health,
#:     both omitted when zero/false so quiescent payloads stay
#:     byte-identical to revision 4.
CODEC_REVISION = 5


# ---------------------------------------------------------------------------
# envelope
# ---------------------------------------------------------------------------
def envelope(kind: str) -> dict:
    """A fresh payload stamped with the protocol version and its kind."""
    return {"schema_version": SCHEMA_VERSION, "kind": kind}


def check_envelope(payload: object, kind: str | None = None) -> dict:
    """Validate the version/kind gate of an incoming payload."""
    if not isinstance(payload, dict):
        raise ProtocolError(f"expected a JSON object, got {type(payload).__name__}")
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ProtocolError(
            f"unsupported schema_version {version!r}; this build speaks {SCHEMA_VERSION}"
        )
    if kind is not None and payload.get("kind") != kind:
        raise ProtocolError(f"expected kind {kind!r}, got {payload.get('kind')!r}")
    return payload


# ---------------------------------------------------------------------------
# array / mask codecs
# ---------------------------------------------------------------------------
def encode_array(array: np.ndarray) -> dict:
    """Dense array → ``{dtype, shape, data}`` (exact, dtype-preserving)."""
    array = np.asarray(array)
    return {"dtype": str(array.dtype), "shape": list(array.shape), "data": array.ravel().tolist()}


def decode_array(payload: dict) -> np.ndarray:
    return np.asarray(payload["data"], dtype=np.dtype(payload["dtype"])).reshape(
        tuple(payload["shape"])
    )


def encode_mask(mask: np.ndarray) -> dict:
    """Boolean mask → coordinates of its True cells (exact and sparse)."""
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim == 1:
        return {"shape": [int(mask.shape[0])], "indices": np.flatnonzero(mask).tolist()}
    if mask.ndim == 2:
        rows, cols = np.nonzero(mask)
        return {"shape": list(mask.shape), "rows": rows.tolist(), "cols": cols.tolist()}
    raise ProtocolError(f"masks must be 1-D or 2-D, got shape {mask.shape}")


def decode_mask(payload: dict) -> np.ndarray:
    shape = tuple(payload["shape"])
    mask = np.zeros(shape, dtype=bool)
    if len(shape) == 1:
        mask[np.asarray(payload["indices"], dtype=np.int64)] = True
    else:
        mask[
            np.asarray(payload["rows"], dtype=np.int64),
            np.asarray(payload["cols"], dtype=np.int64),
        ] = True
    return mask


def jsonable(value: object) -> object:
    """Recursively coerce NumPy scalars/arrays to JSON-native types.

    Non-finite floats become ``None``: RFC 8259 has no NaN/Infinity
    tokens, and free-form payloads (result-table cells, verdict details)
    must stay parseable by non-Python consumers. The dense array codec
    (:func:`encode_array`) is exempt — error matrices are finite by
    construction and keep exact float semantics.
    """
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, np.ndarray):
        return jsonable(value.tolist())
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, float) and not np.isfinite(value):
        return None
    return value


# ---------------------------------------------------------------------------
# ValidationReport
# ---------------------------------------------------------------------------
def report_to_dict(report: ValidationReport, errors: str = "dense") -> dict:
    """Serialize a :class:`ValidationReport`.

    ``errors`` selects how the error values travel:

    * ``"dense"`` — full ``sample_errors``/``cell_errors`` matrices
      (exact round-trip; size O(rows × features));
    * ``"sparse"`` — error values only at flagged rows/cells, riding the
      flag coordinate lists (size O(flagged); unflagged errors decode
      as zero);
    * ``"none"`` — flags and verdict only.
    """
    if errors not in ("dense", "sparse", "none"):
        raise ProtocolError(f"unknown errors mode {errors!r}")
    payload = envelope("validation_report")
    payload.update(
        n_rows=int(report.row_flags.shape[0]),
        n_flagged=int(report.n_flagged),
        feature_names=list(report.feature_names),
        threshold=float(report.threshold),
        flagged_fraction=float(report.flagged_fraction),
        is_problematic=bool(report.is_problematic),
        row_flags=encode_mask(report.row_flags),
        cell_flags=encode_mask(report.cell_flags),
        errors=errors,
    )
    if errors == "dense":
        payload["sample_errors"] = encode_array(report.sample_errors)
        payload["cell_errors"] = encode_array(report.cell_errors)
    elif errors == "sparse":
        flagged = np.flatnonzero(report.row_flags)
        rows, cols = np.nonzero(report.cell_flags)
        payload["sample_errors"] = {"values": np.asarray(report.sample_errors)[flagged].tolist()}
        payload["cell_errors"] = {"values": np.asarray(report.cell_errors)[rows, cols].tolist()}
    if report.rule_report is not None:  # omitted (not null) when rules are off
        payload["rule_report"] = report.rule_report.to_dict()
    return payload


def report_from_dict(payload: dict) -> ValidationReport:
    check_envelope(payload, "validation_report")
    row_flags = decode_mask(payload["row_flags"])
    cell_flags = decode_mask(payload["cell_flags"])
    mode = payload.get("errors")
    if mode not in ("dense", "sparse", "none"):
        raise ProtocolError(f"unknown errors mode {mode!r}")
    if mode == "dense":
        sample_errors = decode_array(payload["sample_errors"])
        cell_errors = decode_array(payload["cell_errors"])
    else:
        sample_errors = np.zeros(row_flags.shape[0], dtype=np.float64)
        cell_errors = np.zeros(cell_flags.shape, dtype=np.float64)
        if mode == "sparse":
            sample_errors[np.flatnonzero(row_flags)] = payload["sample_errors"]["values"]
            cell_errors[np.nonzero(cell_flags)] = payload["cell_errors"]["values"]
    rule_payload = payload.get("rule_report")  # absent before codec revision 4
    return ValidationReport(
        sample_errors=sample_errors,
        cell_errors=cell_errors,
        row_flags=row_flags,
        cell_flags=cell_flags,
        threshold=float(payload["threshold"]),
        flagged_fraction=float(payload["flagged_fraction"]),
        is_problematic=bool(payload["is_problematic"]),
        feature_names=list(payload["feature_names"]),
        rule_report=None if rule_payload is None else rule_report_from_dict(rule_payload),
    )


def summary_dict(report: ValidationReport) -> dict:
    """The structured batch-verdict summary (replaces pre-rendered text)."""
    payload = envelope("verdict_summary")
    payload.update(
        n_rows=int(report.row_flags.shape[0]),
        n_flagged=int(report.n_flagged),
        flagged_fraction=float(report.flagged_fraction),
        threshold=float(report.threshold),
        is_problematic=bool(report.is_problematic),
    )
    return payload


def render_summary(payload: dict) -> str:
    """Human rendering of a :func:`summary_dict` payload."""
    verdict = "PROBLEMATIC" if payload["is_problematic"] else "OK"
    return (
        f"{verdict}: {payload['n_flagged']}/{payload['n_rows']} rows flagged "
        f"({payload['flagged_fraction']:.2%}), threshold={payload['threshold']:.5f}"
    )


# ---------------------------------------------------------------------------
# BatchVerdict
# ---------------------------------------------------------------------------
def verdict_to_dict(verdict: BatchVerdict) -> dict:
    payload = envelope("batch_verdict")
    payload.update(
        is_problematic=bool(verdict.is_problematic),
        score=float(verdict.score),
        flagged_rows=encode_array(np.asarray(verdict.flagged_rows)),
        details=jsonable(verdict.details),
    )
    return payload


def verdict_from_dict(payload: dict) -> BatchVerdict:
    check_envelope(payload, "batch_verdict")
    return BatchVerdict(
        is_problematic=bool(payload["is_problematic"]),
        flagged_rows=decode_array(payload["flagged_rows"]),
        score=float(payload["score"]),
        details=dict(payload["details"]),
    )


# ---------------------------------------------------------------------------
# RepairSummary
# ---------------------------------------------------------------------------
def repair_summary_to_dict(summary: RepairSummary) -> dict:
    payload = envelope("repair_summary")
    payload.update(
        n_rows_touched=int(summary.n_rows_touched),
        n_cells_repaired=int(summary.n_cells_repaired),
        repairs_by_column={str(k): int(v) for k, v in summary.repairs_by_column.items()},
    )
    return payload


def repair_summary_from_dict(payload: dict) -> RepairSummary:
    check_envelope(payload, "repair_summary")
    return RepairSummary(
        n_rows_touched=int(payload["n_rows_touched"]),
        n_cells_repaired=int(payload["n_cells_repaired"]),
        repairs_by_column=dict(payload["repairs_by_column"]),
    )


# ---------------------------------------------------------------------------
# PartialReport / StreamSummary
# ---------------------------------------------------------------------------
def partial_report_to_dict(partial: PartialReport) -> dict:
    payload = envelope("partial_report")
    payload.update(
        offset=int(partial.offset),
        n_rows=int(partial.n_rows),
        sample_errors=encode_array(partial.sample_errors),
        row_flags=encode_mask(partial.row_flags),
        cell_rows=encode_array(partial.cell_rows),
        cell_cols=encode_array(partial.cell_cols),
        cell_errors=None if partial.cell_errors is None else encode_array(partial.cell_errors),
        cell_flags=None if partial.cell_flags is None else encode_mask(partial.cell_flags),
        timestamp=None if partial.timestamp is None else float(partial.timestamp),
    )
    if partial.rule_partial is not None:  # omitted (not null) when rules are off
        payload["rule_partial"] = partial.rule_partial.to_payload()
    return payload


def partial_report_from_dict(payload: dict) -> PartialReport:
    check_envelope(payload, "partial_report")
    timestamp = payload.get("timestamp")  # absent in codec revision 1
    rule_payload = payload.get("rule_partial")  # absent before codec revision 4
    return PartialReport(
        offset=int(payload["offset"]),
        n_rows=int(payload["n_rows"]),
        sample_errors=decode_array(payload["sample_errors"]),
        row_flags=decode_mask(payload["row_flags"]),
        cell_rows=decode_array(payload["cell_rows"]),
        cell_cols=decode_array(payload["cell_cols"]),
        cell_errors=(
            None if payload["cell_errors"] is None else decode_array(payload["cell_errors"])
        ),
        cell_flags=(
            None if payload["cell_flags"] is None else decode_mask(payload["cell_flags"])
        ),
        timestamp=None if timestamp is None else float(timestamp),
        rule_partial=None if rule_payload is None else RulePartial.from_payload(rule_payload),
    )


def stream_summary_to_dict(summary: StreamSummary) -> dict:
    payload = envelope("stream_summary")
    payload.update(
        n_rows=int(summary.n_rows),
        n_chunks=int(summary.n_chunks),
        n_flagged=int(summary.n_flagged),
        flagged_rows=encode_array(summary.flagged_rows),
        threshold=float(summary.threshold),
        flagged_fraction=float(summary.flagged_fraction),
        is_problematic=bool(summary.is_problematic),
        flagged_cells_by_column={
            str(k): int(v) for k, v in summary.flagged_cells_by_column.items()
        },
        mean_sample_error=float(summary.mean_sample_error),
        max_sample_error=float(summary.max_sample_error),
        first_timestamp=(
            None if summary.first_timestamp is None else float(summary.first_timestamp)
        ),
        last_timestamp=(
            None if summary.last_timestamp is None else float(summary.last_timestamp)
        ),
    )
    if summary.rule_report is not None:  # omitted (not null) when rules are off
        payload["rule_report"] = summary.rule_report.to_dict()
    return payload


def stream_summary_from_dict(payload: dict) -> StreamSummary:
    check_envelope(payload, "stream_summary")
    first_ts = payload.get("first_timestamp")  # absent in codec revision 1
    last_ts = payload.get("last_timestamp")
    rule_payload = payload.get("rule_report")  # absent before codec revision 4
    return StreamSummary(
        n_rows=int(payload["n_rows"]),
        n_chunks=int(payload["n_chunks"]),
        n_flagged=int(payload["n_flagged"]),
        flagged_rows=decode_array(payload["flagged_rows"]),
        threshold=float(payload["threshold"]),
        flagged_fraction=float(payload["flagged_fraction"]),
        is_problematic=bool(payload["is_problematic"]),
        flagged_cells_by_column=dict(payload["flagged_cells_by_column"]),
        mean_sample_error=float(payload["mean_sample_error"]),
        max_sample_error=float(payload["max_sample_error"]),
        first_timestamp=None if first_ts is None else float(first_ts),
        last_timestamp=None if last_ts is None else float(last_ts),
        rule_report=None if rule_payload is None else rule_report_from_dict(rule_payload),
    )


# ---------------------------------------------------------------------------
# ThresholdCalibration
# ---------------------------------------------------------------------------
def calibration_to_dict(calibration: ThresholdCalibration) -> dict:
    payload = envelope("threshold_calibration")
    payload.update(
        threshold=float(calibration.threshold),
        percentile=float(calibration.percentile),
        clean_mean=float(calibration.clean_mean),
        clean_p50=float(calibration.clean_p50),
        clean_max=float(calibration.clean_max),
        n_samples=int(calibration.n_samples),
    )
    return payload


def calibration_from_dict(payload: dict) -> ThresholdCalibration:
    check_envelope(payload, "threshold_calibration")
    return ThresholdCalibration(
        threshold=float(payload["threshold"]),
        percentile=float(payload["percentile"]),
        clean_mean=float(payload["clean_mean"]),
        clean_p50=float(payload["clean_p50"]),
        clean_max=float(payload["clean_max"]),
        n_samples=int(payload["n_samples"]),
    )


# ---------------------------------------------------------------------------
# ServiceStats
# ---------------------------------------------------------------------------
def service_stats_to_dict(stats: ServiceStats) -> dict:
    payload = envelope("service_stats")
    payload.update(
        registered=int(stats.registered),
        resident=int(stats.resident),
        loads=int(stats.loads),
        evictions=int(stats.evictions),
        hits=int(stats.hits),
        validations=int(stats.validations),
        repairs=int(stats.repairs),
        rows_validated=int(stats.rows_validated),
        pipelines=jsonable(stats.pipelines),
    )
    # Revision 5, omitted while zero: pre-reaper snapshots stay
    # byte-identical to revision 4.
    if stats.pool_reaps:
        payload["pool_reaps"] = int(stats.pool_reaps)
    return payload


def service_stats_from_dict(payload: dict) -> ServiceStats:
    check_envelope(payload, "service_stats")
    return ServiceStats(
        registered=int(payload["registered"]),
        resident=int(payload["resident"]),
        loads=int(payload["loads"]),
        evictions=int(payload["evictions"]),
        hits=int(payload["hits"]),
        validations=int(payload["validations"]),
        repairs=int(payload["repairs"]),
        rows_validated=int(payload["rows_validated"]),
        pool_reaps=int(payload.get("pool_reaps", 0)),
        pipelines={name: dict(entry) for name, entry in payload["pipelines"].items()},
    )


# ---------------------------------------------------------------------------
# MonitorSnapshot / DriftAlert (drift monitoring)
# ---------------------------------------------------------------------------
def drift_alert_to_dict(alert: "DriftAlert") -> dict:
    payload = envelope("drift_alert")
    payload.update(
        metric=str(alert.metric),
        column=None if alert.column is None else str(alert.column),
        value=float(alert.value),
        threshold=float(alert.threshold),
        message=str(alert.message),
        timestamp=None if alert.timestamp is None else float(alert.timestamp),
    )
    return payload


def drift_alert_from_dict(payload: dict) -> "DriftAlert":
    from repro.monitor.monitor import DriftAlert

    check_envelope(payload, "drift_alert")
    timestamp = payload.get("timestamp")
    return DriftAlert(
        metric=str(payload["metric"]),
        column=None if payload["column"] is None else str(payload["column"]),
        value=float(payload["value"]),
        threshold=float(payload["threshold"]),
        message=str(payload["message"]),
        timestamp=None if timestamp is None else float(timestamp),
    )


def monitor_snapshot_to_dict(snapshot: "MonitorSnapshot") -> dict:
    payload = envelope("monitor_snapshot")
    payload.update(
        window_capacity=int(snapshot.window_capacity),
        window_chunks=int(snapshot.window_chunks),
        window_rows=int(snapshot.window_rows),
        total_observations=int(snapshot.total_observations),
        total_rows=int(snapshot.total_rows),
        total_alerts=int(snapshot.total_alerts),
        first_timestamp=(
            None if snapshot.first_timestamp is None else float(snapshot.first_timestamp)
        ),
        last_timestamp=(
            None if snapshot.last_timestamp is None else float(snapshot.last_timestamp)
        ),
        flag_rate_ewma=float(snapshot.flag_rate_ewma),
        flag_rate_center=float(snapshot.flag_rate_center),
        flag_rate_limit=float(snapshot.flag_rate_limit),
        flag_rate_alarm=bool(snapshot.flag_rate_alarm),
        psi_threshold=float(snapshot.psi_threshold),
        js_threshold=float(snapshot.js_threshold),
        columns=[
            {
                "name": str(column.name),
                "kind": str(column.kind),
                "psi": float(column.psi),
                "js": float(column.js),
                "drifted": bool(column.drifted),
            }
            for column in snapshot.columns
        ],
        alerts=[drift_alert_to_dict(alert) for alert in snapshot.alerts],
    )
    return payload


def monitor_snapshot_from_dict(payload: dict) -> "MonitorSnapshot":
    from repro.monitor.monitor import ColumnDrift, MonitorSnapshot

    check_envelope(payload, "monitor_snapshot")
    first_ts = payload.get("first_timestamp")
    last_ts = payload.get("last_timestamp")
    return MonitorSnapshot(
        window_capacity=int(payload["window_capacity"]),
        window_chunks=int(payload["window_chunks"]),
        window_rows=int(payload["window_rows"]),
        total_observations=int(payload["total_observations"]),
        total_rows=int(payload["total_rows"]),
        total_alerts=int(payload["total_alerts"]),
        first_timestamp=None if first_ts is None else float(first_ts),
        last_timestamp=None if last_ts is None else float(last_ts),
        flag_rate_ewma=float(payload["flag_rate_ewma"]),
        flag_rate_center=float(payload["flag_rate_center"]),
        flag_rate_limit=float(payload["flag_rate_limit"]),
        flag_rate_alarm=bool(payload["flag_rate_alarm"]),
        psi_threshold=float(payload["psi_threshold"]),
        js_threshold=float(payload["js_threshold"]),
        columns=[
            ColumnDrift(
                name=str(column["name"]),
                kind=str(column["kind"]),
                psi=float(column["psi"]),
                js=float(column["js"]),
                drifted=bool(column["drifted"]),
            )
            for column in payload["columns"]
        ],
        alerts=[drift_alert_from_dict(alert) for alert in payload["alerts"]],
    )


# ---------------------------------------------------------------------------
# ResultTable (experiment outputs)
# ---------------------------------------------------------------------------
def result_table_to_dict(table: ResultTable) -> dict:
    payload = envelope("result_table")
    payload.update(
        title=str(table.title),
        headers=list(table.headers),
        rows=jsonable(table.rows),
        notes=list(table.notes),
    )
    return payload


def result_table_from_dict(payload: dict) -> ResultTable:
    check_envelope(payload, "result_table")
    return ResultTable(
        title=payload["title"],
        headers=list(payload["headers"]),
        rows=[list(row) for row in payload["rows"]],
        notes=list(payload["notes"]),
    )


# ---------------------------------------------------------------------------
# RuleSet / RuleReport (repro.rules) — codec revision 4
# ---------------------------------------------------------------------------
def rule_set_to_dict(ruleset: RuleSet) -> dict:
    return ruleset.to_dict()


def rule_set_from_dict(payload: dict) -> RuleSet:
    return RuleSet.from_dict(payload)


def rule_report_to_dict(report: RuleReport) -> dict:
    return report.to_dict()


def rule_report_from_dict(payload: dict) -> RuleReport:
    return RuleReport.from_dict(payload)


# ---------------------------------------------------------------------------
# generic dispatch
# ---------------------------------------------------------------------------
_BY_TYPE = {
    ValidationReport: report_to_dict,
    BatchVerdict: verdict_to_dict,
    RepairSummary: repair_summary_to_dict,
    PartialReport: partial_report_to_dict,
    StreamSummary: stream_summary_to_dict,
    ThresholdCalibration: calibration_to_dict,
    ServiceStats: service_stats_to_dict,
    DriftAlert: drift_alert_to_dict,
    MonitorSnapshot: monitor_snapshot_to_dict,
    ResultTable: result_table_to_dict,
    RuleSet: rule_set_to_dict,
    RuleReport: rule_report_to_dict,
}

_BY_KIND = {
    "validation_report": report_from_dict,
    "batch_verdict": verdict_from_dict,
    "repair_summary": repair_summary_from_dict,
    "partial_report": partial_report_from_dict,
    "stream_summary": stream_summary_from_dict,
    "threshold_calibration": calibration_from_dict,
    "service_stats": service_stats_from_dict,
    "drift_alert": drift_alert_from_dict,
    "monitor_snapshot": monitor_snapshot_from_dict,
    "result_table": result_table_from_dict,
    "rule_set": rule_set_from_dict,
    "rule_report": rule_report_from_dict,
}


def to_dict(obj: object) -> dict:
    """Serialize any protocol object (dispatches on its type)."""
    encoder = _BY_TYPE.get(type(obj))
    if encoder is None:
        raise ProtocolError(f"no wire encoding for {type(obj).__name__}")
    return encoder(obj)


def from_dict(payload: dict) -> object:
    """Decode any protocol payload (dispatches on its ``kind``)."""
    check_envelope(payload)
    decoder = _BY_KIND.get(payload.get("kind"))
    if decoder is None:
        # Request kinds live in repro.api.requests; route them too so the
        # generic entry point covers the whole protocol.
        from repro.api.requests import RepairRequest, ValidateRequest

        if payload.get("kind") == "validate_request":
            return ValidateRequest.from_dict(payload)
        if payload.get("kind") == "repair_request":
            return RepairRequest.from_dict(payload)
        raise ProtocolError(f"unknown payload kind {payload.get('kind')!r}")
    return decoder(payload)
