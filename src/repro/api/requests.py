"""Typed request objects for the wire-ready validation API.

A :class:`ValidateRequest`/:class:`RepairRequest` is what a remote
caller POSTs to the serving gateway: JSON row records plus options. Both
carry the same ``schema_version`` envelope as the result objects, but
:meth:`from_payload` also accepts the *bare* form (``{"records": [...]}``
with no envelope) so a plain ``curl`` call works; when an envelope is
present it is gated strictly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.protocol import check_envelope, envelope, jsonable
from repro.data.table import Table
from repro.exceptions import ProtocolError

__all__ = ["ValidateRequest", "RepairRequest"]


def _records_of(payload: dict) -> list[dict]:
    records = payload.get("records")
    if not isinstance(records, list) or any(not isinstance(r, dict) for r in records):
        raise ProtocolError("'records' must be a list of row objects")
    return records


def _workers_of(payload: dict) -> int | None:
    workers = payload.get("workers")
    if workers is None:
        return None
    # Strictly integral: 2.9 (or True) must not silently become a worker
    # count — the query-param path rejects such values too.
    if isinstance(workers, bool) or not isinstance(workers, (int, float, str)):
        raise ProtocolError(f"'workers' must be an integer, got {workers!r}")
    try:
        as_float = float(workers)
    except ValueError:
        raise ProtocolError(f"'workers' must be an integer, got {workers!r}") from None
    if not as_float.is_integer():
        raise ProtocolError(f"'workers' must be an integer, got {workers!r}")
    return int(as_float)


@dataclass
class ValidateRequest:
    """One validation call: rows to judge, plus response options.

    Attributes
    ----------
    records:
        Row dicts (column name → value; ``null`` marks a missing cell).
    pipeline:
        Optional pipeline name; the gateway routes by URL, so when both
        are present they must agree.
    include_errors:
        Return dense per-row/per-cell error matrices instead of the
        sparse flagged-only encoding.
    workers:
        Optional sharded-execution request: validate the batch across
        this many worker processes (see
        :meth:`~repro.runtime.service.ValidationService.validate_sharded`).
        The gateway treats it as an upper bound — the service's shard
        budget may grant fewer. ``None``/1 means in-process.
    """

    records: list[dict] = field(default_factory=list)
    pipeline: str | None = None
    include_errors: bool = False
    workers: int | None = None

    kind = "validate_request"

    def __post_init__(self) -> None:
        if self.workers is not None:
            self.workers = _workers_of({"workers": self.workers})
            if self.workers < 1:
                raise ProtocolError(f"workers must be >= 1, got {self.workers}")

    def to_dict(self) -> dict:
        payload = envelope(self.kind)
        payload.update(
            pipeline=self.pipeline,
            records=jsonable(self.records),
            include_errors=bool(self.include_errors),
            workers=None if self.workers is None else int(self.workers),
        )
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ValidateRequest":
        check_envelope(payload, cls.kind)
        return cls(
            records=_records_of(payload),
            pipeline=payload.get("pipeline"),
            include_errors=bool(payload.get("include_errors", False)),
            workers=_workers_of(payload),
        )

    @classmethod
    def from_payload(cls, payload: object, pipeline: str | None = None) -> "ValidateRequest":
        """Accept either the enveloped form or bare ``{"records": [...]}``."""
        if not isinstance(payload, dict):
            raise ProtocolError(f"expected a JSON object, got {type(payload).__name__}")
        if "schema_version" in payload or "kind" in payload:
            request = cls.from_dict(payload)
        else:
            request = cls(
                records=_records_of(payload),
                pipeline=payload.get("pipeline"),
                include_errors=bool(payload.get("include_errors", False)),
                workers=_workers_of(payload),
            )
        if request.pipeline is None:
            request.pipeline = pipeline
        return request

    @classmethod
    def from_options(cls, payload: object, pipeline: str | None = None) -> "ValidateRequest":
        """Options-only form for binary-framed requests.

        The rows travel as the frame's column payloads, so ``records``
        is absent by design; everything else (``pipeline``,
        ``include_errors``, ``workers``) is validated exactly as in the
        JSON tier. An envelope, when present, is gated strictly.
        """
        if not isinstance(payload, dict):
            raise ProtocolError(f"expected a JSON object, got {type(payload).__name__}")
        if "schema_version" in payload or "kind" in payload:
            check_envelope(payload, cls.kind)
        request = cls(
            records=[],
            pipeline=payload.get("pipeline"),
            include_errors=bool(payload.get("include_errors", False)),
            workers=_workers_of(payload),
        )
        if request.pipeline is None:
            request.pipeline = pipeline
        return request

    def to_options(self) -> dict:
        """The enveloped options dict a framed request carries as extra."""
        payload = self.to_dict()
        del payload["records"]
        return payload

    @classmethod
    def from_table(cls, table: Table, **options) -> "ValidateRequest":
        return cls(records=table.to_records(), **options)

    def to_table(self, schema) -> Table:
        return Table.from_records(schema, self.records)


@dataclass
class RepairRequest:
    """One repair call: rows to repair, plus repair options."""

    records: list[dict] = field(default_factory=list)
    pipeline: str | None = None
    iterations: int = 1
    include_errors: bool = False

    kind = "repair_request"

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ProtocolError(f"iterations must be >= 1, got {self.iterations}")

    def to_dict(self) -> dict:
        payload = envelope(self.kind)
        payload.update(
            pipeline=self.pipeline,
            records=jsonable(self.records),
            iterations=int(self.iterations),
            include_errors=bool(self.include_errors),
        )
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RepairRequest":
        check_envelope(payload, cls.kind)
        return cls(
            records=_records_of(payload),
            pipeline=payload.get("pipeline"),
            iterations=int(payload.get("iterations", 1)),
            include_errors=bool(payload.get("include_errors", False)),
        )

    @classmethod
    def from_payload(cls, payload: object, pipeline: str | None = None) -> "RepairRequest":
        if not isinstance(payload, dict):
            raise ProtocolError(f"expected a JSON object, got {type(payload).__name__}")
        if "schema_version" in payload or "kind" in payload:
            request = cls.from_dict(payload)
        else:
            request = cls(
                records=_records_of(payload),
                pipeline=payload.get("pipeline"),
                iterations=int(payload.get("iterations", 1)),
                include_errors=bool(payload.get("include_errors", False)),
            )
        if request.pipeline is None:
            request.pipeline = pipeline
        return request

    @classmethod
    def from_options(cls, payload: object, pipeline: str | None = None) -> "RepairRequest":
        """Options-only form for binary-framed requests (rows ride the frame)."""
        if not isinstance(payload, dict):
            raise ProtocolError(f"expected a JSON object, got {type(payload).__name__}")
        if "schema_version" in payload or "kind" in payload:
            check_envelope(payload, cls.kind)
        request = cls(
            records=[],
            pipeline=payload.get("pipeline"),
            iterations=int(payload.get("iterations", 1)),
            include_errors=bool(payload.get("include_errors", False)),
        )
        if request.pipeline is None:
            request.pipeline = pipeline
        return request

    def to_options(self) -> dict:
        """The enveloped options dict a framed request carries as extra."""
        payload = self.to_dict()
        del payload["records"]
        return payload

    @classmethod
    def from_table(cls, table: Table, **options) -> "RepairRequest":
        return cls(records=table.to_records(), **options)

    def to_table(self, schema) -> Table:
        return Table.from_records(schema, self.records)
