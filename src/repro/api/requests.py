"""Typed request objects for the wire-ready validation API.

A :class:`ValidateRequest`/:class:`RepairRequest` is what a remote
caller POSTs to the serving gateway: JSON row records plus options. Both
carry the same ``schema_version`` envelope as the result objects, but
:meth:`from_payload` also accepts the *bare* form (``{"records": [...]}``
with no envelope) so a plain ``curl`` call works; when an envelope is
present it is gated strictly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.protocol import check_envelope, envelope, jsonable
from repro.data.table import Table
from repro.exceptions import ProtocolError

__all__ = ["ValidateRequest", "RepairRequest"]


def _records_of(payload: dict) -> list[dict]:
    records = payload.get("records")
    if not isinstance(records, list) or any(not isinstance(r, dict) for r in records):
        raise ProtocolError("'records' must be a list of row objects")
    return records


@dataclass
class ValidateRequest:
    """One validation call: rows to judge, plus response options.

    Attributes
    ----------
    records:
        Row dicts (column name → value; ``null`` marks a missing cell).
    pipeline:
        Optional pipeline name; the gateway routes by URL, so when both
        are present they must agree.
    include_errors:
        Return dense per-row/per-cell error matrices instead of the
        sparse flagged-only encoding.
    """

    records: list[dict] = field(default_factory=list)
    pipeline: str | None = None
    include_errors: bool = False

    kind = "validate_request"

    def to_dict(self) -> dict:
        payload = envelope(self.kind)
        payload.update(
            pipeline=self.pipeline,
            records=jsonable(self.records),
            include_errors=bool(self.include_errors),
        )
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ValidateRequest":
        check_envelope(payload, cls.kind)
        return cls(
            records=_records_of(payload),
            pipeline=payload.get("pipeline"),
            include_errors=bool(payload.get("include_errors", False)),
        )

    @classmethod
    def from_payload(cls, payload: object, pipeline: str | None = None) -> "ValidateRequest":
        """Accept either the enveloped form or bare ``{"records": [...]}``."""
        if not isinstance(payload, dict):
            raise ProtocolError(f"expected a JSON object, got {type(payload).__name__}")
        if "schema_version" in payload or "kind" in payload:
            request = cls.from_dict(payload)
        else:
            request = cls(
                records=_records_of(payload),
                pipeline=payload.get("pipeline"),
                include_errors=bool(payload.get("include_errors", False)),
            )
        if request.pipeline is None:
            request.pipeline = pipeline
        return request

    @classmethod
    def from_table(cls, table: Table, **options) -> "ValidateRequest":
        return cls(records=table.to_records(), **options)

    def to_table(self, schema) -> Table:
        return Table.from_records(schema, self.records)


@dataclass
class RepairRequest:
    """One repair call: rows to repair, plus repair options."""

    records: list[dict] = field(default_factory=list)
    pipeline: str | None = None
    iterations: int = 1
    include_errors: bool = False

    kind = "repair_request"

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ProtocolError(f"iterations must be >= 1, got {self.iterations}")

    def to_dict(self) -> dict:
        payload = envelope(self.kind)
        payload.update(
            pipeline=self.pipeline,
            records=jsonable(self.records),
            iterations=int(self.iterations),
            include_errors=bool(self.include_errors),
        )
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RepairRequest":
        check_envelope(payload, cls.kind)
        return cls(
            records=_records_of(payload),
            pipeline=payload.get("pipeline"),
            iterations=int(payload.get("iterations", 1)),
            include_errors=bool(payload.get("include_errors", False)),
        )

    @classmethod
    def from_payload(cls, payload: object, pipeline: str | None = None) -> "RepairRequest":
        if not isinstance(payload, dict):
            raise ProtocolError(f"expected a JSON object, got {type(payload).__name__}")
        if "schema_version" in payload or "kind" in payload:
            request = cls.from_dict(payload)
        else:
            request = cls(
                records=_records_of(payload),
                pipeline=payload.get("pipeline"),
                iterations=int(payload.get("iterations", 1)),
                include_errors=bool(payload.get("include_errors", False)),
            )
        if request.pipeline is None:
            request.pipeline = pipeline
        return request

    @classmethod
    def from_table(cls, table: Table, **options) -> "RepairRequest":
        return cls(records=table.to_records(), **options)

    def to_table(self, schema) -> Table:
        return Table.from_records(schema, self.records)
