"""Binary columnar wire frames: typed buffers from the socket to the kernel.

The JSON tier (:mod:`repro.api.protocol`) builds a Python object per
cell on both ends of every HTTP validate. A *frame* keeps columns as
typed buffers instead: numeric columns travel as raw little-endian
float64, categorical columns as offset-encoded UTF-8 with a validity
bitmap, and the decoder hands the buffers straight to
:class:`~repro.data.table.Table` /
:meth:`~repro.data.plan.TransformPlan.transform_into` with zero
intermediate row objects. Missing-value structure is preserved
bit-exactly against the JSON tier: numeric missing is NaN (any payload),
categorical missing is a cleared validity bit.

Frame layout (FRAME_VERSION 1; all integers little-endian)::

    offset  size  field
    0       4     magic  b"RPRF"
    4       2     frame version  (u16) == 1
    6       2     flags          (u16) == 0, reserved
    8       8     frame_length   (u64) — total frame bytes, magic included
    16      4     meta_length    (u32) — byte length of the meta JSON
    20      m     meta — UTF-8 JSON object (sorted keys, no NaN tokens):
                    {"n_rows": int,
                     "columns": [{"name": str, "kind": "numeric"|"categorical"}, ...],
                     "arrays":  [{"name": str, "dtype": str, "shape": [int, ...]}, ...],
                     "extra":   {...}}          # optional JSON side-channel
    —       —     zero padding to an 8-byte boundary
    then one payload section per meta column, in meta order,
    each zero-padded to an 8-byte boundary:
      numeric      n_rows × 8 bytes, raw "<f8" (NaN bits travel verbatim)
      categorical  validity bitmap, ceil(n_rows/8) bytes, LSB-first
                     (bit i of byte j covers row j*8+i; 1 = present)
                   zero padding to a 4-byte boundary
                   offsets, (n_rows+1) × 4 bytes "<u4" — cumulative byte
                     offsets into the data section; offsets[0] == 0,
                     non-decreasing (missing rows span zero bytes)
                   data, offsets[n_rows] bytes of UTF-8 (NULs allowed)
    then one payload section per meta array, in meta order, each
    zero-padded to an 8-byte boundary: the raw C-order buffer
    (prod(shape) × itemsize bytes; dtype restricted to _ARRAY_DTYPES).

Because ``frame_length`` sits at a fixed offset, frames are
self-delimiting: a byte stream (or a file on disk) may simply
concatenate frames, which is exactly how the chunked
``/validate_stream`` transport and out-of-core frame *files* work —
a frame file is a valid framed request body and vice versa.

Safety: every declared length is validated against the actual buffer
*before* any allocation or ``np.frombuffer`` view is taken, offsets are
checked monotone, and array dtypes come from a closed safelist — a
hostile frame fails with :class:`FrameError` (transports: HTTP 400), an
oversized one with :class:`FrameSizeError` (HTTP 413); neither can make
the decoder over-allocate.

Evolution discipline mirrors the JSON tier: additive meta fields ride
under :data:`repro.api.protocol.CODEC_REVISION`; changing the binary
layout itself takes a :data:`FRAME_VERSION` bump (old decoders reject
it loudly). Golden byte fixtures live in ``tests/golden/frame_*.bin``.
"""

from __future__ import annotations

import json
import mmap
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.data.schema import ColumnKind, ColumnSpec, TableSchema
from repro.data.table import Table
from repro.exceptions import FrameError, FrameSizeError

__all__ = [
    "FRAME_VERSION",
    "FRAME_CONTENT_TYPE",
    "Frame",
    "encode_frame",
    "decode_frame",
    "frame_length",
    "iter_frames",
    "report_to_frame",
    "report_from_frame",
    "matches_frame_content_type",
    "FrameFileWriter",
    "open_frame_file",
    "iter_file_frames",
    "write_frame_file",
]

MAGIC = b"RPRF"
FRAME_VERSION = 1

#: negotiated via ``Content-Type`` / ``Accept`` on the HTTP gateway
FRAME_CONTENT_TYPE = "application/x-repro-frame"

_HEADER = struct.Struct("<4sHHQI")  # magic, version, flags, frame_length, meta_length
_HEADER_SIZE = _HEADER.size  # 20

#: dtypes an ``arrays`` entry may declare — a closed safelist so a
#: hostile meta cannot smuggle object/void dtypes into ``np.frombuffer``
_ARRAY_DTYPES = ("<f8", "<f4", "<i8", "<i4", "<u8", "<u4", "|b1", "|u1")

#: hard ceiling on rows per frame: offsets are u32, so categorical data
#: is capped at 4 GiB per column per frame anyway; chunked writers split
#: long tables into many frames well below this
MAX_FRAME_ROWS = 1 << 40


def _pad8(n: int) -> int:
    return (-n) % 8


def _pad4(n: int) -> int:
    return (-n) % 4


def matches_frame_content_type(value: str | None) -> bool:
    """Is this ``Content-Type``/``Accept`` media type the frame codec's?

    Parameters after ``;`` are ignored; for ``Accept`` headers pass each
    comma-separated alternative (or the raw header — a substring match
    on the exact type token is performed across alternatives).
    """
    if not value:
        return False
    for alternative in value.split(","):
        if alternative.split(";", 1)[0].strip().lower() == FRAME_CONTENT_TYPE:
            return True
    return False


@dataclass
class Frame:
    """A decoded frame: an optional table plus JSON/array side-channels."""

    table: Table | None = None
    extra: dict = field(default_factory=dict)
    arrays: dict[str, np.ndarray] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------
def _encode_categorical(column: np.ndarray, name: str) -> list[bytes]:
    """Payload parts: validity bitmap | pad4 | u32 offsets | UTF-8 data."""
    n = len(column)
    valid = np.empty(n, dtype=bool)
    encoded: list[bytes] = []
    append = encoded.append
    for i, value in enumerate(column):
        if value is None:
            valid[i] = False
            append(b"")
        else:
            valid[i] = True
            append(str(value).encode("utf-8"))
    lengths = np.fromiter(map(len, encoded), dtype=np.uint64, count=n)
    offsets = np.zeros(n + 1, dtype=np.uint64)
    np.cumsum(lengths, out=offsets[1:])
    data_length = int(offsets[n])
    if data_length > 0xFFFFFFFF:
        raise FrameError(
            f"column {name!r} holds {data_length} UTF-8 bytes; u32 offsets cap a "
            "single frame's column data at 4 GiB — split the table into chunks"
        )
    bitmap = np.packbits(valid, bitorder="little").tobytes()
    return [
        bitmap,
        b"\x00" * _pad4(len(bitmap)),
        offsets.astype("<u4").tobytes(),
        b"".join(encoded),
    ]


def _little_endian(array: np.ndarray) -> np.ndarray:
    """C-contiguous little-endian view/copy suitable for raw transport."""
    array = np.ascontiguousarray(array)
    if array.dtype.byteorder == ">":
        array = array.astype(array.dtype.newbyteorder("<"))
    return array


def encode_frame(
    table: Table | None = None,
    *,
    extra: dict | None = None,
    arrays: dict[str, np.ndarray] | None = None,
) -> bytes:
    """Encode a table (and/or JSON ``extra``, named ``arrays``) as one frame.

    Deterministic: identical inputs produce identical bytes (meta keys
    are sorted, payload order follows schema/array-name order), which is
    what makes golden byte fixtures possible.
    """
    n_rows = 0 if table is None else int(table.n_rows)
    meta: dict = {"n_rows": n_rows, "columns": []}
    payloads: list[bytes] = []

    if table is not None:
        for spec in table.schema:
            meta["columns"].append({"name": spec.name, "kind": spec.kind})
            column = table.column(spec.name)
            if spec.is_numeric:
                section = [_little_endian(np.asarray(column, dtype=np.float64)).tobytes()]
            else:
                section = _encode_categorical(_as_object_column(column), spec.name)
            body = b"".join(section)
            payloads.append(body + b"\x00" * _pad8(len(body)))

    if arrays:
        meta["arrays"] = []
        for name in sorted(arrays):
            array = _little_endian(np.asarray(arrays[name]))
            if array.dtype.str not in _ARRAY_DTYPES:
                raise FrameError(
                    f"array {name!r} has unsupported dtype {array.dtype.str!r}; "
                    f"frames carry {_ARRAY_DTYPES}"
                )
            meta["arrays"].append(
                {"name": name, "dtype": array.dtype.str, "shape": list(array.shape)}
            )
            body = array.tobytes()
            payloads.append(body + b"\x00" * _pad8(len(body)))

    if extra:
        meta["extra"] = extra

    meta_bytes = json.dumps(
        meta, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")
    meta_padding = _pad8(_HEADER_SIZE + len(meta_bytes))
    frame_len = _HEADER_SIZE + len(meta_bytes) + meta_padding + sum(map(len, payloads))
    header = _HEADER.pack(MAGIC, FRAME_VERSION, 0, frame_len, len(meta_bytes))
    return b"".join([header, meta_bytes, b"\x00" * meta_padding, *payloads])


def _as_object_column(column) -> np.ndarray:
    """Materialize a categorical column (tolerates lazy frame columns)."""
    if isinstance(column, np.ndarray):
        return column
    return column[0 : len(column)]


# ---------------------------------------------------------------------------
# decoding
# ---------------------------------------------------------------------------
def frame_length(buf) -> int:
    """Total byte length of the frame starting at ``buf[0]``.

    Needs only the fixed 20-byte header; raises :class:`FrameError` on a
    bad magic/version before trusting any length field.
    """
    view = memoryview(buf)
    if len(view) < _HEADER_SIZE:
        raise FrameError(
            f"frame header needs {_HEADER_SIZE} bytes, got {len(view)}"
        )
    magic, version, flags, length, meta_length = _HEADER.unpack_from(view, 0)
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {bytes(magic)!r}; expected {MAGIC!r}")
    if version != FRAME_VERSION:
        raise FrameError(
            f"unsupported frame version {version}; this build speaks {FRAME_VERSION}"
        )
    if flags != 0:
        raise FrameError(f"unsupported frame flags 0x{flags:04x}")
    if length < _HEADER_SIZE + meta_length:
        raise FrameError(
            f"declared frame length {length} cannot hold its own header and meta"
        )
    return int(length)


class _Cursor:
    """Bounds-checked reader over one frame's bytes."""

    __slots__ = ("view", "pos")

    def __init__(self, view: memoryview, pos: int) -> None:
        self.view = view
        self.pos = pos

    def take(self, n: int, what: str) -> memoryview:
        if n < 0 or self.pos + n > len(self.view):
            raise FrameError(
                f"truncated frame: {what} declares {n} bytes at offset {self.pos}, "
                f"but only {len(self.view) - self.pos} remain"
            )
        chunk = self.view[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def skip_pad(self, pad: int) -> None:
        self.take(pad, "padding")


def _meta_int(meta: dict, key: str, maximum: int) -> int:
    value = meta.get(key)
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise FrameError(f"frame meta {key!r} must be a non-negative integer, got {value!r}")
    if value > maximum:
        raise FrameError(f"frame meta {key!r} = {value} exceeds the supported maximum")
    return value


def _decode_meta(view: memoryview) -> tuple[dict, int]:
    length = frame_length(view)
    if length != len(view):
        raise FrameError(
            f"frame declares {length} bytes but {len(view)} were provided"
        )
    (_, _, _, _, meta_length) = _HEADER.unpack_from(view, 0)
    if _HEADER_SIZE + meta_length > len(view):
        raise FrameError("truncated frame: meta extends past the end of the buffer")
    try:
        meta = json.loads(bytes(view[_HEADER_SIZE : _HEADER_SIZE + meta_length]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"malformed frame meta: {exc}") from None
    if not isinstance(meta, dict):
        raise FrameError("frame meta must be a JSON object")
    payload_start = _HEADER_SIZE + meta_length + _pad8(_HEADER_SIZE + meta_length)
    return meta, payload_start


def _decode_string_column(
    cursor: _Cursor, n_rows: int, name: str
) -> np.ndarray:
    bitmap = cursor.take((n_rows + 7) // 8, f"column {name!r} validity bitmap")
    cursor.skip_pad(_pad4((n_rows + 7) // 8))
    offsets_raw = cursor.take((n_rows + 1) * 4, f"column {name!r} offsets")
    offsets = np.frombuffer(offsets_raw, dtype="<u4")
    if n_rows and (offsets[0] != 0 or np.any(np.diff(offsets.astype(np.int64)) < 0)):
        raise FrameError(f"column {name!r} offsets are not monotone from zero")
    if n_rows == 0:
        if offsets[0] != 0:
            raise FrameError(f"column {name!r} offsets are not monotone from zero")
    data = cursor.take(int(offsets[-1]), f"column {name!r} string data")
    column = np.empty(n_rows, dtype=object)
    if n_rows:
        offs = offsets.astype(np.int64)
        starts = offs[:-1]
        lengths = offs[1:] - starts
        column[:] = ""
        buffer = np.frombuffer(data, dtype=np.uint8)
        raw = bytes(data)
        longest = int(lengths.max())
        if longest <= 64:
            widths = np.flatnonzero(np.bincount(lengths, minlength=1)).tolist()
        else:
            widths = np.unique(lengths).tolist()
        # With one distinct nonzero width, the data section is exactly
        # the row-ordered concatenation of the non-empty values — no
        # gather needed, a reshape suffices.
        single_width = len([w for w in widths if w]) == 1
        for width in widths:
            if width == 0:
                continue
            rows = np.flatnonzero(lengths == width)
            if width <= 8 and rows.size > 1:
                # Vectorized: pack every value of this width into one
                # zero-padded u64 key, dedupe the keys in C, and decode
                # each *distinct* value exactly once — on low-cardinality
                # categorical columns this replaces len(rows) Python
                # slice+decode operations with a handful.
                packed = np.zeros((rows.size, 8), dtype=np.uint8)
                if single_width:
                    packed[:, :width] = buffer[: rows.size * width].reshape(
                        rows.size, width
                    )
                else:
                    packed[:, :width] = buffer[starts[rows, None] + np.arange(width)]
                keys = packed.view("<u8").ravel()
                uniq = np.unique(keys)
                inverse = np.searchsorted(uniq, keys)
                uniq_bytes = uniq.view(np.uint8).tobytes()
                decoded = np.empty(uniq.size, dtype=object)
                try:
                    decoded[:] = [
                        uniq_bytes[p : p + width].decode("utf-8")
                        for p in range(0, len(uniq_bytes), 8)
                    ]
                except UnicodeDecodeError as exc:
                    raise FrameError(
                        f"column {name!r} data is not valid UTF-8: {exc}"
                    ) from None
                column[rows] = decoded[inverse]
            else:
                # Wide or singleton group: direct slices with an
                # interning memo so repeated values decode once.
                memo: dict[bytes, str] = {}
                out = np.empty(rows.size, dtype=object)
                values = []
                for s in starts[rows].tolist():
                    piece = raw[s : s + width]
                    got = memo.get(piece)
                    if got is None:
                        try:
                            got = piece.decode("utf-8")
                        except UnicodeDecodeError as exc:
                            raise FrameError(
                                f"column {name!r} data is not valid UTF-8: {exc}"
                            ) from None
                        memo[piece] = got
                    values.append(got)
                out[:] = values
                column[rows] = out
        valid = np.unpackbits(
            np.frombuffer(bitmap, dtype=np.uint8), count=n_rows, bitorder="little"
        ).astype(bool)
        column[~valid] = None
    return column


def _decode_columns(meta: dict, cursor: _Cursor, schema: TableSchema | None) -> Table | None:
    n_rows = _meta_int(meta, "n_rows", MAX_FRAME_ROWS)
    described = meta.get("columns", [])
    if not isinstance(described, list):
        raise FrameError("frame meta 'columns' must be a list")
    specs: list[tuple[str, str]] = []
    for entry in described:
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("name"), str)
            or entry.get("kind") not in ColumnKind.ALL
        ):
            raise FrameError(f"malformed frame column descriptor: {entry!r}")
        specs.append((entry["name"], entry["kind"]))
    if len({name for name, _ in specs}) != len(specs):
        raise FrameError("frame declares duplicate column names")
    if not specs:
        return None
    if schema is not None:
        declared = [(spec.name, spec.kind) for spec in schema]
        if declared != specs:
            raise FrameError(
                f"frame columns {specs} do not match the expected schema {declared} "
                "(frames require exact name/kind/order agreement)"
            )
    else:
        schema = TableSchema([ColumnSpec(name, kind) for name, kind in specs])
    columns: dict[str, np.ndarray] = {}
    for name, kind in specs:
        start = cursor.pos
        if kind == ColumnKind.NUMERIC:
            raw = cursor.take(n_rows * 8, f"column {name!r} float64 data")
            columns[name] = np.frombuffer(raw, dtype="<f8")
        else:
            columns[name] = _decode_string_column(cursor, n_rows, name)
        cursor.skip_pad(_pad8(cursor.pos - start))
    return Table._wrap(schema, columns, n_rows)


def _decode_arrays(meta: dict, cursor: _Cursor) -> dict[str, np.ndarray]:
    described = meta.get("arrays", [])
    if not isinstance(described, list):
        raise FrameError("frame meta 'arrays' must be a list")
    arrays: dict[str, np.ndarray] = {}
    for entry in described:
        if not isinstance(entry, dict) or not isinstance(entry.get("name"), str):
            raise FrameError(f"malformed frame array descriptor: {entry!r}")
        name = entry["name"]
        dtype = entry.get("dtype")
        if dtype not in _ARRAY_DTYPES:
            raise FrameError(
                f"array {name!r} declares unsupported dtype {dtype!r}; "
                f"frames carry {_ARRAY_DTYPES}"
            )
        shape = entry.get("shape")
        if (
            not isinstance(shape, list)
            or len(shape) > 4
            or any(not isinstance(d, int) or isinstance(d, bool) or d < 0 for d in shape)
        ):
            raise FrameError(f"array {name!r} declares a malformed shape {shape!r}")
        count = 1
        for dim in shape:
            count *= dim
        itemsize = np.dtype(dtype).itemsize
        # Bounds are enforced by the cursor *before* frombuffer, so a
        # hostile shape cannot reserve memory: views alias frame bytes.
        raw = cursor.take(count * itemsize, f"array {name!r} data")
        arrays[name] = np.frombuffer(raw, dtype=np.dtype(dtype)).reshape(tuple(shape))
        cursor.skip_pad(_pad8(count * itemsize))
    return arrays


def decode_frame(buf, schema: TableSchema | None = None) -> Frame:
    """Decode one complete frame.

    ``buf`` must hold exactly one frame (``frame_length(buf) ==
    len(buf)``). Numeric columns and arrays are zero-copy read-only
    views into ``buf``; categorical columns decode their UTF-8 payload
    into an object array of ``str``/``None``.

    ``schema`` pins the expected table schema: column names, kinds, and
    order must match exactly (the decoded table then carries the full
    pipeline schema, categories included).
    """
    view = memoryview(buf)
    if view.ndim != 1 or view.itemsize != 1:
        view = view.cast("B")
    meta, payload_start = _decode_meta(view)
    cursor = _Cursor(view, payload_start)
    table = _decode_columns(meta, cursor, schema)
    arrays = _decode_arrays(meta, cursor)
    extra = meta.get("extra", {})
    if not isinstance(extra, dict):
        raise FrameError("frame meta 'extra' must be a JSON object")
    if cursor.pos != len(view):
        raise FrameError(
            f"frame has {len(view) - cursor.pos} trailing bytes past its payloads"
        )
    return Frame(table=table, extra=extra, arrays=arrays)


def iter_frames(
    blocks: Iterable[bytes], max_frame_bytes: int | None = None
) -> Iterator[memoryview]:
    """Split a byte-block stream into per-frame memoryviews.

    The incremental counterpart of :func:`decode_frame` for framed
    request bodies and frame files: frames are self-delimiting via the
    ``frame_length`` header field, so no separator is needed.
    ``max_frame_bytes`` bounds what a single frame may make the caller
    buffer (:class:`FrameSizeError` — the 413 of the frame world);
    buffering stops as soon as a declared length exceeds it.
    """
    buffer = bytearray()
    for block in blocks:
        buffer += block
        while len(buffer) >= _HEADER_SIZE:
            needed = frame_length(buffer)
            if max_frame_bytes is not None and needed > max_frame_bytes:
                raise FrameSizeError(
                    f"frame declares {needed} bytes, exceeding the "
                    f"{max_frame_bytes}-byte limit"
                )
            if len(buffer) < needed:
                break
            frame = bytes(buffer[:needed])
            del buffer[:needed]
            yield memoryview(frame)
        if max_frame_bytes is not None and len(buffer) > max_frame_bytes:
            raise FrameSizeError(
                f"framed stream buffered {len(buffer)} bytes without completing "
                f"a frame (limit {max_frame_bytes})"
            )
    if buffer:
        raise FrameError(
            f"framed stream ended with {len(buffer)} trailing bytes "
            "(truncated final frame)"
        )


# ---------------------------------------------------------------------------
# ValidationReport frames
# ---------------------------------------------------------------------------
def report_to_frame(report, errors: str = "sparse") -> bytes:
    """Encode a :class:`~repro.core.validator.ValidationReport` as a frame.

    Scalars and feature names ride the JSON ``extra``; flags and error
    values ride binary arrays (``"dense"``: full matrices at 8 bytes a
    cell instead of JSON decimal text; ``"sparse"``: values at flagged
    coordinates only; ``"none"``: flags and verdict only) — the same
    three fidelity modes as :func:`repro.api.protocol.report_to_dict`,
    decoding to the identical report.
    """
    from repro.api.protocol import envelope

    if errors not in ("dense", "sparse", "none"):
        raise FrameError(f"unknown errors mode {errors!r}")
    extra = envelope("validation_report")
    extra.update(
        n_rows=int(report.row_flags.shape[0]),
        n_flagged=int(report.n_flagged),
        n_features=int(report.cell_flags.shape[1]) if report.cell_flags.ndim == 2 else 0,
        feature_names=list(report.feature_names),
        threshold=float(report.threshold),
        flagged_fraction=float(report.flagged_fraction),
        is_problematic=bool(report.is_problematic),
        errors=errors,
    )
    if report.rule_report is not None:
        # Additive, mirroring report_to_dict: the key is *omitted* (not
        # null) when rules are off, so rules-off frames stay byte-
        # identical to pre-rules encoders.
        extra["rule_report"] = report.rule_report.to_dict()
    arrays = {
        "row_flags": np.asarray(report.row_flags, dtype=bool),
        "cell_flags": np.asarray(report.cell_flags, dtype=bool),
    }
    if errors == "dense":
        arrays["sample_errors"] = np.asarray(report.sample_errors, dtype=np.float64)
        arrays["cell_errors"] = np.asarray(report.cell_errors, dtype=np.float64)
    elif errors == "sparse":
        flagged = np.flatnonzero(report.row_flags)
        rows, cols = np.nonzero(report.cell_flags)
        arrays["sample_values"] = np.asarray(report.sample_errors, dtype=np.float64)[flagged]
        arrays["cell_values"] = np.asarray(report.cell_errors, dtype=np.float64)[rows, cols]
    return encode_frame(extra=extra, arrays=arrays)


def report_from_frame(frame: Frame):
    """Decode a :func:`report_to_frame` frame (exact under "dense")."""
    from repro.api.protocol import check_envelope
    from repro.core.validator import ValidationReport

    payload = check_envelope(frame.extra, "validation_report")
    mode = payload.get("errors")
    if mode not in ("dense", "sparse", "none"):
        raise FrameError(f"unknown errors mode {mode!r}")
    try:
        row_flags = np.asarray(frame.arrays["row_flags"], dtype=bool)
        cell_flags = np.asarray(frame.arrays["cell_flags"], dtype=bool)
        if mode == "dense":
            sample_errors = frame.arrays["sample_errors"].astype(np.float64, copy=True)
            cell_errors = frame.arrays["cell_errors"].astype(np.float64, copy=True)
        else:
            sample_errors = np.zeros(row_flags.shape[0], dtype=np.float64)
            cell_errors = np.zeros(cell_flags.shape, dtype=np.float64)
            if mode == "sparse":
                sample_errors[np.flatnonzero(row_flags)] = frame.arrays["sample_values"]
                cell_errors[np.nonzero(cell_flags)] = frame.arrays["cell_values"]
    except KeyError as exc:
        raise FrameError(f"report frame is missing array {exc.args[0]!r}") from None
    except (ValueError, IndexError) as exc:
        raise FrameError(f"report frame arrays are inconsistent: {exc}") from None
    rule_payload = payload.get("rule_report")
    rule_report = None
    if rule_payload is not None:
        from repro.rules import RuleReport

        rule_report = RuleReport.from_dict(rule_payload)
    return ValidationReport(
        sample_errors=sample_errors,
        cell_errors=cell_errors,
        row_flags=row_flags,
        cell_flags=cell_flags,
        threshold=float(payload["threshold"]),
        flagged_fraction=float(payload["flagged_fraction"]),
        is_problematic=bool(payload["is_problematic"]),
        feature_names=list(payload["feature_names"]),
        rule_report=rule_report,
    )


# ---------------------------------------------------------------------------
# frame files: memory-mapped out-of-core tables
# ---------------------------------------------------------------------------
class FrameFileWriter:
    """Spill tables to a frame file chunk by chunk, never holding them whole.

    Each :meth:`write` appends its rows as self-delimiting frames of at
    most ``chunk_rows`` rows (the granularity at which readers later
    page data back in); the resulting file is simultaneously a valid
    framed ``/validate_stream`` request body.
    """

    def __init__(self, path, chunk_rows: int = 65536) -> None:
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be positive, got {chunk_rows}")
        self.path = Path(path)
        self.chunk_rows = chunk_rows
        self.schema: TableSchema | None = None
        self.rows_written = 0
        self._handle = open(self.path, "wb")

    def write(self, table: Table) -> None:
        if self._handle is None:
            raise ValueError("writer is closed")
        if self.schema is None:
            self.schema = table.schema
        elif table.schema != self.schema:
            from repro.exceptions import SchemaError

            raise SchemaError("all chunks of a frame file must share one schema")
        for start in range(0, max(table.n_rows, 1), self.chunk_rows):
            chunk = table.slice_rows(start, start + self.chunk_rows)
            if chunk.n_rows == 0 and table.n_rows > 0:
                break
            self._handle.write(encode_frame(chunk))
            self.rows_written += chunk.n_rows

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "FrameFileWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_frame_file(table: Table, path, chunk_rows: int = 65536) -> Path:
    """Spill ``table`` to ``path`` as a chunked frame file."""
    with FrameFileWriter(path, chunk_rows=chunk_rows) as writer:
        writer.write(table)
    return Path(path)


def iter_file_frames(path, max_frame_bytes: int | None = None) -> Iterator[bytes]:
    """Yield the raw bytes of each frame in a frame file, in order.

    The zero-re-encode upload path: these byte chunks can go straight
    onto a framed ``/validate_stream`` request body.
    """
    with open(path, "rb") as handle:
        def blocks() -> Iterator[bytes]:
            while True:
                block = handle.read(1 << 20)
                if not block:
                    return
                yield block

        for view in iter_frames(blocks(), max_frame_bytes=max_frame_bytes):
            yield bytes(view)


class _NumericSegment:
    """One frame's worth of a numeric column: a view over the file mmap."""

    __slots__ = ("values",)

    def __init__(self, values: np.ndarray) -> None:
        self.values = values

    def decode(self, start: int, stop: int) -> np.ndarray:
        return self.values[start:stop]


class _StringSegment:
    """One frame's worth of a categorical column, decoded on demand."""

    __slots__ = ("bitmap", "offsets", "data")

    def __init__(self, bitmap: memoryview, offsets: np.ndarray, data: memoryview) -> None:
        self.bitmap = bitmap
        self.offsets = offsets
        self.data = data

    def decode(self, start: int, stop: int) -> np.ndarray:
        n = stop - start
        column = np.empty(n, dtype=object)
        if n <= 0:
            return column
        ends = self.offsets[start : stop + 1].tolist()
        base = ends[0]
        raw = bytes(self.data[base : ends[-1]])
        text = raw.decode("utf-8")
        if len(text) == len(raw):
            column[:] = [text[ends[i] - base : ends[i + 1] - base] for i in range(n)]
        else:
            column[:] = [
                raw[ends[i] - base : ends[i + 1] - base].decode("utf-8") for i in range(n)
            ]
        bits = np.frombuffer(self.bitmap, dtype=np.uint8)[start // 8 : (stop + 7) // 8]
        valid = np.unpackbits(bits, bitorder="little")[
            start - (start // 8) * 8 : start - (start // 8) * 8 + n
        ].astype(bool)
        column[~valid] = None
        return column


class _MappedColumn:
    """Lazy ndarray-ish column over per-frame segments of a mapped file.

    Slicing materializes only the requested row window (numeric windows
    inside one segment are zero-copy mmap views, paged by the OS), so
    the streaming path touches O(chunk) memory however large the file.
    ``__array__`` lets whole-column NumPy ops (``missing_mask`` et al.)
    still work on tables small enough to materialize.
    """

    __slots__ = ("n_rows", "starts", "segments", "_dtype")

    def __init__(self, starts: list[int], segments: list, n_rows: int, dtype) -> None:
        self.starts = starts  # global start row of each segment
        self.segments = segments
        self.n_rows = n_rows
        self._dtype = np.dtype(dtype)

    @property
    def dtype(self):
        return self._dtype

    @property
    def shape(self):
        return (self.n_rows,)

    def __len__(self) -> int:
        return self.n_rows

    def _range(self, start: int, stop: int) -> np.ndarray:
        if stop <= start:
            return np.empty(0, dtype=self._dtype)
        import bisect

        first = bisect.bisect_right(self.starts, start) - 1
        parts: list[np.ndarray] = []
        position = start
        for index in range(first, len(self.segments)):
            seg_start = self.starts[index]
            seg_stop = self.starts[index + 1] if index + 1 < len(self.starts) else self.n_rows
            if position >= stop:
                break
            local_start = position - seg_start
            local_stop = min(stop, seg_stop) - seg_start
            parts.append(self.segments[index].decode(local_start, local_stop))
            position = seg_stop
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    def __getitem__(self, key):
        if isinstance(key, slice):
            start, stop, step = key.indices(self.n_rows)
            window = self._range(start, stop)
            return window[::step] if step != 1 else window
        if isinstance(key, (int, np.integer)):
            index = int(key)
            if index < 0:
                index += self.n_rows
            if not 0 <= index < self.n_rows:
                raise IndexError(f"row {key} out of range for {self.n_rows} rows")
            return self._range(index, index + 1)[0]
        indices = np.asarray(key)
        if indices.dtype == bool:
            indices = np.flatnonzero(indices)
        return self._gather(indices.astype(np.int64))

    def _gather(self, indices: np.ndarray) -> np.ndarray:
        out = np.empty(len(indices), dtype=self._dtype)
        wrapped = np.where(indices < 0, indices + self.n_rows, indices)
        if wrapped.size and (wrapped.min() < 0 or wrapped.max() >= self.n_rows):
            raise IndexError("row index out of range")
        for index, segment in enumerate(self.segments):
            seg_start = self.starts[index]
            seg_stop = self.starts[index + 1] if index + 1 < len(self.starts) else self.n_rows
            hit = (wrapped >= seg_start) & (wrapped < seg_stop)
            if hit.any():
                values = segment.decode(0, seg_stop - seg_start)
                out[hit] = values[wrapped[hit] - seg_start]
        return out

    def __iter__(self):
        for index in range(len(self.segments)):
            seg_start = self.starts[index]
            seg_stop = self.starts[index + 1] if index + 1 < len(self.starts) else self.n_rows
            yield from self.segments[index].decode(0, seg_stop - seg_start)

    def __array__(self, dtype=None, copy=None):
        window = self._range(0, self.n_rows)
        return window if dtype is None else window.astype(dtype)

    def copy(self) -> np.ndarray:
        return self._range(0, self.n_rows).copy()

    def tolist(self) -> list:
        return self._range(0, self.n_rows).tolist()


def open_frame_file(path, schema: TableSchema | None = None) -> Table:
    """Memory-map a frame file as an out-of-core :class:`Table`.

    The file is parsed frame by frame (headers only); column payloads
    stay on disk behind ``mmap`` until a row window is sliced. The
    returned table supports the full streaming path —
    ``table.column(name)[start:stop]``, :meth:`Table.slice_rows`,
    :meth:`~repro.data.plan.TransformPlan.transform_chunks` — with
    memory bounded by the window, so a file much larger than RAM
    validates out-of-core. Whole-column operations (``missing_mask``,
    ``copy``) still work but materialize the column.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        if handle.seek(0, 2) == 0:
            raise FrameError(f"frame file {path} is empty")
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    view = memoryview(mapped)
    position = 0
    starts: list[int] = []
    n_rows = 0
    columns: dict[str, list] = {}
    file_schema: TableSchema | None = None
    while position < len(view):
        length = frame_length(view[position:])
        if position + length > len(view):
            raise FrameError(f"truncated final frame in {path}")
        frame_view = view[position : position + length]
        meta, payload_start = _decode_meta(frame_view)
        frame_rows = _meta_int(meta, "n_rows", MAX_FRAME_ROWS)
        cursor = _Cursor(frame_view, payload_start)
        described = meta.get("columns", [])
        if not described:
            raise FrameError(f"frame file {path} contains a table-less frame")
        specs = [(entry.get("name"), entry.get("kind")) for entry in described]
        if file_schema is None:
            if schema is not None:
                declared = [(spec.name, spec.kind) for spec in schema]
                if declared != specs:
                    raise FrameError(
                        f"frame file columns {specs} do not match the expected "
                        f"schema {declared}"
                    )
                file_schema = schema
            else:
                file_schema = TableSchema([ColumnSpec(n, k) for n, k in specs])
            for name, kind in specs:
                columns[name] = []
        elif [(spec.name, spec.kind) for spec in file_schema] != specs:
            raise FrameError(f"frame file {path} changes schema mid-file")
        for name, kind in specs:
            section_start = cursor.pos
            if kind == ColumnKind.NUMERIC:
                raw = cursor.take(frame_rows * 8, f"column {name!r} float64 data")
                columns[name].append(_NumericSegment(np.frombuffer(raw, dtype="<f8")))
            else:
                bitmap = cursor.take((frame_rows + 7) // 8, f"column {name!r} bitmap")
                cursor.skip_pad(_pad4((frame_rows + 7) // 8))
                offsets_raw = cursor.take((frame_rows + 1) * 4, f"column {name!r} offsets")
                offsets = np.frombuffer(offsets_raw, dtype="<u4")
                if offsets[0] != 0 or (
                    frame_rows and np.any(np.diff(offsets.astype(np.int64)) < 0)
                ):
                    raise FrameError(f"column {name!r} offsets are not monotone from zero")
                data = cursor.take(int(offsets[-1]), f"column {name!r} string data")
                columns[name].append(_StringSegment(bitmap, offsets, data))
            cursor.skip_pad(_pad8(cursor.pos - section_start))
        starts.append(n_rows)
        n_rows += frame_rows
        position += length
    if file_schema is None:
        raise FrameError(f"frame file {path} holds no frames")
    mapped_columns: dict[str, np.ndarray] = {}
    for spec in file_schema:
        dtype = np.float64 if spec.is_numeric else object
        mapped_columns[spec.name] = _MappedColumn(starts, columns[spec.name], n_rows, dtype)
    table = Table._wrap(file_schema, mapped_columns, n_rows)
    table._frame_mmap = mapped  # keep the mapping alive with the table
    return table
