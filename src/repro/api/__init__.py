"""Versioned wire-ready validation API.

The canonical result protocol for everything Phase 2 produces: every
outcome object gains exact ``to_dict()``/``from_dict()`` JSON
round-trips under a single :data:`SCHEMA_VERSION`, with sparse
flagged-cell encoding for wire efficiency, plus the typed request
objects the HTTP gateway (:mod:`repro.serve`) consumes.

>>> from repro.api import to_dict, from_dict           # doctest: +SKIP
>>> payload = to_dict(pipeline.validate(table))        # doctest: +SKIP
>>> clone = from_dict(json.loads(json.dumps(payload))) # doctest: +SKIP
"""

from repro.api.framing import (
    FRAME_CONTENT_TYPE,
    FRAME_VERSION,
    Frame,
    FrameFileWriter,
    decode_frame,
    encode_frame,
    iter_frames,
    open_frame_file,
    report_from_frame,
    report_to_frame,
)
from repro.api.protocol import (
    CODEC_REVISION,
    SCHEMA_VERSION,
    check_envelope,
    decode_array,
    decode_mask,
    encode_array,
    encode_mask,
    envelope,
    from_dict,
    jsonable,
    render_summary,
    summary_dict,
    to_dict,
)
from repro.api.requests import RepairRequest, ValidateRequest

__all__ = [
    "SCHEMA_VERSION",
    "CODEC_REVISION",
    "envelope",
    "check_envelope",
    "encode_array",
    "decode_array",
    "encode_mask",
    "decode_mask",
    "jsonable",
    "summary_dict",
    "render_summary",
    "to_dict",
    "from_dict",
    "ValidateRequest",
    "RepairRequest",
    "FRAME_VERSION",
    "FRAME_CONTENT_TYPE",
    "Frame",
    "FrameFileWriter",
    "encode_frame",
    "decode_frame",
    "iter_frames",
    "open_frame_file",
    "report_to_frame",
    "report_from_frame",
]
