"""Phase 2: data-quality validation of unseen tables (§3.2.1).

The numerical hot path — per-cell reconstruction errors — runs through
the compiled :class:`~repro.runtime.engine.InferenceEngine` whenever the
model's architecture can be exported to pure-NumPy kernels (all built-in
encoders can); the autograd :class:`~repro.core.model.DQuaGModel` forward
is kept as a fallback and as the parity reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DQuaGConfig
from repro.core.model import DQuaGModel
from repro.core.thresholds import DatasetDecisionRule, ThresholdCalibration, flag_feature_cells
from repro.data.preprocess import TablePreprocessor
from repro.data.table import Table
from repro.exceptions import SchemaError

__all__ = ["ValidationReport", "DataQualityValidator", "assemble_report"]


@dataclass
class ValidationReport:
    """Full outcome of validating one table.

    Attributes
    ----------
    sample_errors:
        (n_rows,) reconstruction error per row.
    cell_errors:
        (n_rows, n_features) per-cell squared errors.
    row_flags:
        rows exceeding the clean-data threshold.
    cell_flags:
        the μ+kσ per-feature outliers within flagged rows (§3.2.1) —
        the cells the repair phase will modify.
    flagged_fraction / is_problematic:
        the batch-level decision (R_error vs the 5%·n rule).
    rule_report:
        optional fused :class:`~repro.rules.RuleReport` when the
        validate ran with a declarative rule set attached. Purely
        additive: the GNN-derived fields above are never altered by
        rule evaluation, so a rules-off run stays bit-identical.
    """

    sample_errors: np.ndarray
    cell_errors: np.ndarray
    row_flags: np.ndarray
    cell_flags: np.ndarray
    threshold: float
    flagged_fraction: float
    is_problematic: bool
    feature_names: list[str] = field(default_factory=list)
    rule_report: "object | None" = None

    @property
    def flagged_rows(self) -> np.ndarray:
        """Indices of problematic instances, as the paper reports them."""
        return np.flatnonzero(self.row_flags)

    @property
    def n_flagged(self) -> int:
        return int(self.row_flags.sum())

    def flagged_features_of(self, row: int) -> list[str]:
        """Names of problematic features of one row."""
        return [name for j, name in enumerate(self.feature_names) if self.cell_flags[row, j]]

    # -- rule fusion (repro.rules) -----------------------------------------
    @property
    def combined_cell_flags(self) -> np.ndarray:
        """Model cell flags OR rule-violation cells (copy when fused)."""
        if self.rule_report is None:
            return self.cell_flags
        return self.cell_flags | self.rule_report.cell_mask()

    def cell_provenance(self, row: int, col: int) -> str | None:
        """Who flagged one cell: ``'model'``, ``'rule'``, ``'both'``, or None."""
        model = bool(self.cell_flags[row, col])
        rule = (
            self.rule_report is not None
            and bool(
                ((self.rule_report.cell_rows == row) & (self.rule_report.cell_cols == col)).any()
            )
        )
        if model and rule:
            return "both"
        if model:
            return "model"
        if rule:
            return "rule"
        return None

    def provenance_counts(self) -> dict:
        """Flagged-cell counts by provenance (model / rule / both)."""
        model = self.cell_flags
        if self.rule_report is None:
            return {"model": int(model.sum()), "rule": 0, "both": 0}
        rule = self.rule_report.cell_mask()
        both = int((model & rule).sum())
        return {
            "model": int(model.sum()) - both,
            "rule": int(rule.sum()) - both,
            "both": both,
        }

    def summary(self) -> str:
        verdict = "PROBLEMATIC" if self.is_problematic else "OK"
        text = (
            f"{verdict}: {self.n_flagged}/{len(self.sample_errors)} rows flagged "
            f"({self.flagged_fraction:.2%}), threshold={self.threshold:.5f}"
        )
        if self.rule_report is not None:
            text += f"; {self.rule_report.summary()}"
        return text

    # -- wire protocol (repro.api) ----------------------------------------
    def to_dict(self, errors: str = "dense") -> dict:
        """Versioned JSON form; see :func:`repro.api.protocol.report_to_dict`."""
        from repro.api.protocol import report_to_dict

        return report_to_dict(self, errors=errors)

    @staticmethod
    def from_dict(payload: dict) -> "ValidationReport":
        from repro.api.protocol import report_from_dict

        return report_from_dict(payload)


def assemble_report(
    cell_errors: np.ndarray,
    calibration: ThresholdCalibration,
    rule: DatasetDecisionRule,
    feature_sigma: float,
    feature_scales: np.ndarray | None = None,
    feature_thresholds: np.ndarray | None = None,
    feature_names: list[str] | None = None,
) -> ValidationReport:
    """Turn raw per-cell errors into the full §3.2.1 decision report.

    Shared by the autograd validator, the compiled inference engine, and
    the streaming validator so every path applies identical scaling and
    flag rules. All decisions are row-local except ``flagged_fraction`` /
    ``is_problematic``, which is why chunked validation can reproduce the
    one-shot report exactly.
    """
    if feature_scales is not None:
        cell_errors = cell_errors / feature_scales[None, :]
    sample_errors = DQuaGModel.sample_errors(cell_errors)
    row_flags = calibration.flag_rows(sample_errors)
    cell_flags = flag_feature_cells(cell_errors, row_flags, sigma=feature_sigma)
    if feature_thresholds is not None:
        cell_flags |= (cell_errors > feature_thresholds[None, :]) & row_flags[:, None]
    flagged_fraction = float(row_flags.mean()) if row_flags.size else 0.0
    return ValidationReport(
        sample_errors=sample_errors,
        cell_errors=cell_errors,
        row_flags=row_flags,
        cell_flags=cell_flags,
        threshold=calibration.threshold,
        flagged_fraction=flagged_fraction,
        is_problematic=rule.is_problematic(flagged_fraction),
        feature_names=list(feature_names or []),
    )


class DataQualityValidator:
    """Applies a trained model + calibration to unseen tables."""

    def __init__(
        self,
        model: DQuaGModel,
        preprocessor: TablePreprocessor,
        calibration: ThresholdCalibration,
        config: DQuaGConfig | None = None,
        feature_thresholds: np.ndarray | None = None,
        feature_scales: np.ndarray | None = None,
        engine: "object | None" = None,
        use_engine: bool = True,
    ) -> None:
        self.model = model
        self.preprocessor = preprocessor
        self.calibration = calibration
        self.config = config or model.config
        # Optional per-feature clean-error quantiles: within a flagged
        # row, cells above their column's clean threshold are flagged
        # even when the row-relative μ+kσ rule misses them (helps rows
        # with several corrupted cells of different magnitudes).
        self.feature_thresholds = (
            None if feature_thresholds is None else np.asarray(feature_thresholds, dtype=np.float64)
        )
        # Optional per-feature error scales (mean clean cell error).
        # Dividing by them before aggregating makes every feature count
        # equally in the row error regardless of how precisely the model
        # reconstructs it — a typo in an easy categorical column then
        # weighs as much as an anomaly in a hard numeric one. The
        # calibration must have been computed in the same scaled space.
        self.feature_scales = (
            None if feature_scales is None else np.asarray(feature_scales, dtype=np.float64)
        )
        self.rule = DatasetDecisionRule(
            percentile=self.config.threshold_percentile,
            n_multiplier=self.config.dataset_rule_n,
        )
        self._engine = engine
        self._use_engine = use_engine

    @property
    def engine(self):
        """The compiled inference engine, built lazily on first use.

        ``None`` when engine use is disabled or the model cannot be
        exported (the autograd forward is then used instead).
        """
        if self._engine is None and self._use_engine:
            from repro.exceptions import KernelExportError
            from repro.runtime.engine import InferenceEngine

            try:
                self._engine = InferenceEngine(self.model)
            except KernelExportError:
                self._use_engine = False
        return self._engine

    def validate(self, table: Table) -> ValidationReport:
        """Validate a table with the same schema as the training data."""
        return self.validate_with_matrix(table)[1]

    def validate_with_matrix(self, table: Table) -> "tuple[np.ndarray, ValidationReport]":
        """Validate a table, also returning its preprocessed matrix.

        For callers that need the model-space matrix the validation
        already computed — e.g. the serving layer feeding the drift
        monitor — without paying a second preprocessing pass.
        """
        if table.schema != self.preprocessor.schema:
            raise SchemaError("table schema does not match the trained pipeline")
        matrix = self.preprocessor.compile().transform(table)
        return matrix, self.validate_matrix(matrix)

    def validate_matrix(self, matrix: np.ndarray) -> ValidationReport:
        """Validate an already-preprocessed matrix (used by benchmarks)."""
        engine = self.engine
        if engine is not None:
            cell_errors = engine.reconstruction_errors(matrix)
        else:
            cell_errors = self.model.reconstruction_errors(matrix)
        return assemble_report(
            cell_errors,
            calibration=self.calibration,
            rule=self.rule,
            feature_sigma=self.config.feature_sigma,
            feature_scales=self.feature_scales,
            feature_thresholds=self.feature_thresholds,
            feature_names=list(self.preprocessor.schema.names),
        )
