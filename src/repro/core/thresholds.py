"""Threshold calibration and decision rules (§3.1.4, §3.2.1).

* Row rule — a row is flagged when its reconstruction error exceeds the
  95th percentile of clean-data errors (not the maximum: even curated
  clean data holds residual noise).
* Dataset rule — a batch is problematic when its flagged-row fraction
  exceeds ``(1 − percentile) · n`` with ``n = 1.2``: ~5% of clean rows
  exceed the threshold by construction, so a 20% buffer separates
  sampling noise from real damage.
* Cell rule — within a flagged row, features whose error exceeds
  ``μ_row + k·σ_row`` (k = 5) are the problematic cells.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["ThresholdCalibration", "DatasetDecisionRule", "flag_feature_cells"]


@dataclass(frozen=True)
class ThresholdCalibration:
    """Row-level threshold learned from clean reconstruction errors."""

    threshold: float
    percentile: float
    clean_mean: float
    clean_p50: float
    clean_max: float
    n_samples: int

    @staticmethod
    def from_clean_errors(
        errors: np.ndarray,
        percentile: float = 95.0,
        confidence: float | None = None,
    ) -> "ThresholdCalibration":
        """Calibrate from clean errors.

        ``confidence`` (e.g. 0.9) selects a one-sided upper confidence
        bound on the percentile instead of the point estimate: with a
        finite calibration sample the empirical p95 has sampling noise of
        ~±sqrt(p(1−p)/n) in rank space, and an underestimated threshold
        silently inflates the clean flag-rate past the dataset rule's
        cutoff. ``None`` reproduces the paper's point estimate.
        """
        errors = np.asarray(errors, dtype=np.float64)
        if errors.size == 0:
            raise ValidationError("cannot calibrate a threshold from zero clean errors")
        if not 0.0 < percentile < 100.0:
            raise ValidationError(f"percentile must be in (0, 100), got {percentile}")
        if confidence is None:
            threshold = float(np.percentile(errors, percentile))
        else:
            if not 0.5 <= confidence < 1.0:
                raise ValidationError(f"confidence must be in [0.5, 1), got {confidence}")
            from scipy import stats

            n = errors.size
            p = percentile / 100.0
            z = float(stats.norm.ppf(confidence))
            rank = int(np.ceil(n * p + z * np.sqrt(n * p * (1.0 - p))))
            rank = min(max(rank, 0), n - 1)
            threshold = float(np.partition(errors, rank)[rank])
        return ThresholdCalibration(
            threshold=threshold,
            percentile=percentile,
            clean_mean=float(errors.mean()),
            clean_p50=float(np.median(errors)),
            clean_max=float(errors.max()),
            n_samples=int(errors.size),
        )

    def flag_rows(self, errors: np.ndarray) -> np.ndarray:
        """Boolean mask of rows whose error exceeds the threshold."""
        return np.asarray(errors, dtype=np.float64) > self.threshold

    # -- wire protocol (repro.api) ----------------------------------------
    def to_dict(self) -> dict:
        from repro.api.protocol import calibration_to_dict

        return calibration_to_dict(self)

    @staticmethod
    def from_dict(payload: dict) -> "ThresholdCalibration":
        from repro.api.protocol import calibration_from_dict

        return calibration_from_dict(payload)


@dataclass(frozen=True)
class DatasetDecisionRule:
    """The §3.2.1 batch-level rule: flagged fraction > (1 − pct) · n."""

    percentile: float = 95.0
    n_multiplier: float = 1.2

    @property
    def expected_clean_rate(self) -> float:
        return 1.0 - self.percentile / 100.0

    @property
    def cutoff(self) -> float:
        return self.expected_clean_rate * self.n_multiplier

    def is_problematic(self, flagged_fraction: float) -> bool:
        return flagged_fraction > self.cutoff


def flag_feature_cells(
    cell_errors: np.ndarray,
    row_mask: np.ndarray | None = None,
    sigma: float = 5.0,
) -> np.ndarray:
    """Per-cell outlier flags: error > μ_row + σ·std_row (§3.2.1).

    Applied only to rows in ``row_mask`` (all rows when ``None``); cells
    of unflagged rows are never marked.
    """
    cell_errors = np.asarray(cell_errors, dtype=np.float64)
    if cell_errors.ndim != 2:
        raise ValidationError(f"cell errors must be 2-D, got shape {cell_errors.shape}")
    mean = cell_errors.mean(axis=1, keepdims=True)
    std = cell_errors.std(axis=1, keepdims=True)
    flags = cell_errors > mean + sigma * std
    if row_mask is not None:
        flags &= np.asarray(row_mask, dtype=bool)[:, None]
    return flags
