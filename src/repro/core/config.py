"""DQuaG configuration (hyperparameters from §3 and §4.4)."""

from __future__ import annotations

from dataclasses import dataclass, field, asdict

from repro.exceptions import ConfigurationError
from repro.gnn.encoder import ENCODER_ARCHITECTURES

__all__ = ["DQuaGConfig"]


@dataclass
class DQuaGConfig:
    """All knobs of the DQuaG pipeline.

    Defaults follow the paper: GAT+GIN encoder, four layers, hidden
    dimension 64, learning rate 0.01, batch size 128 (§4.4); validation
    threshold at the 95th percentile of clean reconstruction errors with
    dataset-rule multiplier n = 1.2 (§3.1.4, §3.2.1); per-feature outlier
    rule μ + 5σ (§3.2.1); loss weights α = β = 1 (§3.1.2).
    """

    # model
    architecture: str = "gat_gin"
    hidden_dim: int = 64
    n_layers: int = 4
    gat_heads: int = 1
    feature_embedding_dim: int = 7

    # training
    learning_rate: float = 0.01
    batch_size: int = 128
    epochs: int = 40
    weight_decay: float = 0.0
    weighting_temperature: float | None = None  # None = median clean error

    # losses
    alpha: float = 1.0  # validation-loss weight
    beta: float = 1.0  # repair-loss weight

    # decision rules
    threshold_percentile: float = 95.0
    # One-sided confidence for the threshold order statistic: with finite
    # calibration samples the empirical p95 undershoots often enough to
    # push the clean flag-rate past the dataset cutoff; 0.9 keeps it at
    # or below the nominal 5%. None = the paper's point estimate.
    threshold_confidence: float | None = 0.9
    dataset_rule_n: float = 1.2
    # Per-feature cell rule: error > μ_row + k·σ_row. The paper states
    # k = 5, but for a single corrupted cell among F features the maximum
    # attainable z-score is √(F−1) (≈3.3 at F=12), so the literal rule can
    # never fire on the evaluation schemas; k = 2.5 keeps the rule's form
    # while making it achievable (see DESIGN.md §4.3 / EXPERIMENTS.md).
    feature_sigma: float = 2.5
    # Percentile of per-feature clean cell errors used as an absolute
    # cell-level outlier threshold within flagged rows (complements the
    # row-relative μ+kσ rule for rows with several corrupted cells).
    feature_threshold_percentile: float = 99.5

    # feature-graph construction
    graph_threshold: float = 0.25
    graph_max_degree: int | None = None

    # misc
    missing_sentinel: float = -1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.architecture not in ENCODER_ARCHITECTURES:
            raise ConfigurationError(
                f"unknown architecture {self.architecture!r}; choose from {ENCODER_ARCHITECTURES}"
            )
        if self.hidden_dim < 1:
            raise ConfigurationError(f"hidden_dim must be positive, got {self.hidden_dim}")
        if self.n_layers < 1:
            raise ConfigurationError(f"n_layers must be positive, got {self.n_layers}")
        if self.feature_embedding_dim < 0:
            raise ConfigurationError(f"feature_embedding_dim must be >= 0, got {self.feature_embedding_dim}")
        if self.learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be positive, got {self.learning_rate}")
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be positive, got {self.batch_size}")
        if self.epochs < 1:
            raise ConfigurationError(f"epochs must be positive, got {self.epochs}")
        if not 0.0 < self.threshold_percentile < 100.0:
            raise ConfigurationError(
                f"threshold_percentile must be in (0, 100), got {self.threshold_percentile}"
            )
        if self.dataset_rule_n <= 0:
            raise ConfigurationError(f"dataset_rule_n must be positive, got {self.dataset_rule_n}")
        if self.feature_sigma <= 0:
            raise ConfigurationError(f"feature_sigma must be positive, got {self.feature_sigma}")
        if not 0.0 < self.feature_threshold_percentile < 100.0:
            raise ConfigurationError(
                f"feature_threshold_percentile must be in (0, 100), "
                f"got {self.feature_threshold_percentile}"
            )
        if self.alpha < 0 or self.beta < 0:
            raise ConfigurationError(f"loss weights must be non-negative, got α={self.alpha}, β={self.beta}")

    @property
    def node_input_dim(self) -> int:
        """Per-node input width: scaled cell value ⊕ feature-identity embedding."""
        return 1 + self.feature_embedding_dim

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(payload: dict) -> "DQuaGConfig":
        return DQuaGConfig(**payload)
