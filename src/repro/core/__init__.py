"""DQuaG core: the paper's primary contribution (§3)."""

from repro.core.config import DQuaGConfig
from repro.core.model import DQuaGModel
from repro.core.losses import LossParts, compute_sample_weights, dquag_loss
from repro.core.thresholds import DatasetDecisionRule, ThresholdCalibration, flag_feature_cells
from repro.core.trainer import EpochStats, Trainer, TrainingHistory
from repro.core.validator import DataQualityValidator, ValidationReport
from repro.core.repair import RepairEngine, RepairSummary
from repro.core.pipeline import DQuaG
from repro.core.cleaning import CleaningOutcome, clean_dataset, select_cleanest
from repro.core.explain import FeatureContribution, attention_summary, explain_row

__all__ = [
    "DQuaGConfig",
    "DQuaGModel",
    "LossParts",
    "compute_sample_weights",
    "dquag_loss",
    "DatasetDecisionRule",
    "ThresholdCalibration",
    "flag_feature_cells",
    "EpochStats",
    "Trainer",
    "TrainingHistory",
    "DataQualityValidator",
    "ValidationReport",
    "RepairEngine",
    "RepairSummary",
    "DQuaG",
    "CleaningOutcome",
    "clean_dataset",
    "select_cleanest",
    "FeatureContribution",
    "attention_summary",
    "explain_row",
]
