"""Post-validation data cleaning and selection (the paper's §5 future work).

Three strategies for turning a :class:`ValidationReport` into a usable
downstream dataset:

* ``drop``   — remove flagged rows (conservative, loses data);
* ``repair`` — apply repair-decoder suggestions to flagged cells;
* ``hybrid`` — repair first, then drop rows whose post-repair error is
  still above the threshold (repair what can be repaired, discard the
  rest).

:func:`select_cleanest` implements quality-aware *selection*: rank rows
by reconstruction error and keep the best ``k`` — useful when a
downstream training job needs a fixed-size, highest-quality subset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import DQuaG
from repro.core.validator import ValidationReport
from repro.data.table import Table
from repro.exceptions import ConfigurationError

__all__ = ["CleaningOutcome", "clean_dataset", "select_cleanest"]

STRATEGIES = ("drop", "repair", "hybrid")


@dataclass(frozen=True)
class CleaningOutcome:
    """Result of one cleaning pass."""

    table: Table
    strategy: str
    n_rows_in: int
    n_rows_out: int
    n_rows_dropped: int
    n_cells_repaired: int
    residual_flagged_fraction: float

    @property
    def retention(self) -> float:
        return self.n_rows_out / self.n_rows_in if self.n_rows_in else 1.0


def clean_dataset(
    pipeline: DQuaG,
    table: Table,
    strategy: str = "hybrid",
    report: ValidationReport | None = None,
    repair_iterations: int = 2,
) -> CleaningOutcome:
    """Produce a cleaned version of ``table`` using a fitted pipeline."""
    if strategy not in STRATEGIES:
        raise ConfigurationError(f"unknown cleaning strategy {strategy!r}; choose from {STRATEGIES}")
    if report is None:
        report = pipeline.validate(table)

    n_cells_repaired = 0
    if strategy == "drop":
        keep = ~report.row_flags
        cleaned = table.take(np.flatnonzero(keep))
    else:
        cleaned, summary = pipeline.repair(table, report, iterations=repair_iterations)
        n_cells_repaired = summary.n_cells_repaired
        if strategy == "hybrid":
            post = pipeline.validate(cleaned)
            cleaned = cleaned.take(np.flatnonzero(~post.row_flags))

    residual = pipeline.validate(cleaned).flagged_fraction if cleaned.n_rows else 0.0
    return CleaningOutcome(
        table=cleaned,
        strategy=strategy,
        n_rows_in=table.n_rows,
        n_rows_out=cleaned.n_rows,
        n_rows_dropped=table.n_rows - cleaned.n_rows,
        n_cells_repaired=n_cells_repaired,
        residual_flagged_fraction=residual,
    )


def select_cleanest(pipeline: DQuaG, table: Table, k: int) -> Table:
    """Return the ``k`` rows with the lowest reconstruction error."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if k >= table.n_rows:
        return table.copy()
    report = pipeline.validate(table)
    order = np.argsort(report.sample_errors, kind="stable")
    return table.take(order[:k])
