"""The end-to-end DQuaG pipeline (Figure 2 of the paper).

:class:`DQuaG` ties everything together behind the same
:class:`~repro.baselines.base.BaselineValidator` interface the baselines
use, so experiments treat all methods uniformly:

* **fit** (Phase 1) — preprocess the clean table, build the feature
  graph (knowledge + statistics providers), train the dual-decoder GNN,
  and calibrate the 95th-percentile threshold;
* **validate / validate_batch** (Phase 2) — reconstruction-error
  validation with row, cell, and dataset decisions;
* **repair** — repair-decoder suggestions applied to flagged cells.

Phase 2 is the serving hot path: after ``fit`` (or ``load_weights``)
the model is compiled into the pure-NumPy
:class:`~repro.runtime.engine.InferenceEngine`, and ``validate`` /
``validate_batch`` / ``repair`` all route through it — no autograd
graph is built at inference time. :meth:`streaming_validator` exposes
the bounded-memory chunked path of :mod:`repro.runtime.streaming`, and
:class:`~repro.runtime.service.ValidationService` serves many saved
pipelines concurrently.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path

import numpy as np

from repro.baselines.base import BaselineValidator, BatchVerdict
from repro.core.config import DQuaGConfig
from repro.core.model import DQuaGModel
from repro.core.repair import RepairEngine, RepairSummary
from repro.core.thresholds import ThresholdCalibration
from repro.core.trainer import Trainer, TrainingHistory
from repro.core.validator import DataQualityValidator, ValidationReport
from repro.data.preprocess import TablePreprocessor
from repro.data.table import Table
from repro.exceptions import NotFittedError, SchemaError, SerializationError
from repro.graph.feature_graph import FeatureGraph
from repro.graph.inference import StatisticalRelationshipInference
from repro.graph.llm import FeatureGraphBuilder, HybridProvider, KnowledgeBaseProvider
from repro.nn.serialization import load_state, save_state
from repro.utils.logging import get_logger
from repro.utils.rng import derive_rng, ensure_rng

__all__ = ["DQuaG"]

logger = get_logger("core.pipeline")


class DQuaG(BaselineValidator):
    """Data Quality Graph: GNN-based validation and repair.

    >>> pipeline = DQuaG()                          # doctest: +SKIP
    >>> pipeline.fit(clean_table,                   # doctest: +SKIP
    ...              knowledge_edges=[("city", "country")])
    >>> report = pipeline.validate(new_table)       # doctest: +SKIP
    >>> fixed, _ = pipeline.repair(new_table)       # doctest: +SKIP
    """

    name = "dquag"
    supports_row_flags = True

    def __init__(self, config: DQuaGConfig | None = None) -> None:
        self.config = config or DQuaGConfig()
        self.preprocessor: TablePreprocessor | None = None
        self.graph: FeatureGraph | None = None
        self.model: DQuaGModel | None = None
        self.calibration: ThresholdCalibration | None = None
        self.history: TrainingHistory | None = None
        self._validator: DataQualityValidator | None = None
        self._repair_engine: RepairEngine | None = None
        self._future_categories: dict[str, list[str]] | None = None
        #: training-time distribution baseline for drift monitoring
        #: (built at fit(), persisted in save() archives)
        self._monitor_baseline = None
        #: one cached sharded executor, widened on demand (see validate())
        self._parallel_validator = None
        self._parallel_lock = threading.Lock()

    # -- phase 1 -----------------------------------------------------------
    def fit(
        self,
        clean: Table,
        rng: int | np.random.Generator | None = None,
        knowledge_edges: list[tuple[str, str]] | None = None,
        future_categories: dict[str, list[str]] | None = None,
        feature_graph: FeatureGraph | None = None,
        epochs: int | None = None,
        calibration_table: Table | None = None,
    ) -> "DQuaG":
        """Train on a clean dataset (Phase 1 of Figure 2).

        Parameters
        ----------
        knowledge_edges:
            Semantic relationships to seed the graph provider with (the
            role ChatGPT-4 plays in §3.1.1).
        feature_graph:
            Skip graph construction entirely and use this graph.
        calibration_table:
            Optional *held-out* clean table for threshold calibration.
            The paper collects error statistics on the training data
            itself (§3.1.4, the default here); a held-out table removes
            the train/test generalization gap from the threshold and
            keeps the expected clean flag-rate at 1 − percentile.
        """
        generator = ensure_rng(rng if rng is not None else self.config.seed)

        # Refitting invalidates any sharded worker pools serving the old
        # weights; their workers would keep validating with stale state.
        self.close_parallel()
        self._future_categories = future_categories
        self.preprocessor = TablePreprocessor(
            clean.schema, missing_sentinel=self.config.missing_sentinel
        ).fit(clean, future_categories=future_categories)

        if feature_graph is not None:
            self.graph = feature_graph
        else:
            knowledge = KnowledgeBaseProvider()
            if knowledge_edges:
                knowledge.register(clean.schema.names, knowledge_edges)
            inference = StatisticalRelationshipInference(
                threshold=self.config.graph_threshold,
                max_degree=self.config.graph_max_degree,
                seed=int(derive_rng(generator, "graph").integers(2**31)),
            )
            builder = FeatureGraphBuilder(
                HybridProvider(knowledge, inference),
                seed=int(derive_rng(generator, "graph-sample").integers(2**31)),
            )
            self.graph = builder.build(clean)
        logger.info("feature graph: %d nodes, %d edges", self.graph.n_nodes, self.graph.n_edges)

        self.model = DQuaGModel(self.graph, self.config, rng=derive_rng(generator, "model"))
        trainer = Trainer(self.model, self.config)
        matrix = self.preprocessor.compile().transform(clean)
        self.history = trainer.train(matrix, rng=derive_rng(generator, "train"), epochs=epochs)

        # Compile the inference kernels now and calibrate *through* them:
        # thresholds are order statistics of the exact error values the
        # serving path will produce, so engine and calibration can never
        # disagree at the last bit.
        engine = self._compile_kernels()
        errors_of = engine.reconstruction_errors if engine is not None else self.model.reconstruction_errors
        if calibration_table is not None:
            calib_matrix = self.preprocessor.compile().transform(calibration_table)
            calib_cell_errors = errors_of(calib_matrix)
        else:
            calib_cell_errors = errors_of(matrix)
        # Per-feature scales: features the model reconstructs precisely
        # (tiny clean error) must not be drowned out by intrinsically
        # noisy ones, so all error statistics live in scaled space.
        feature_scales = np.maximum(calib_cell_errors.mean(axis=0), 1e-10)
        scaled_cell_errors = calib_cell_errors / feature_scales[None, :]
        calib_errors = DQuaGModel.sample_errors(scaled_cell_errors)
        self.calibration = ThresholdCalibration.from_clean_errors(
            calib_errors,
            percentile=self.config.threshold_percentile,
            confidence=self.config.threshold_confidence,
        )
        feature_thresholds = np.percentile(
            scaled_cell_errors, self.config.feature_threshold_percentile, axis=0
        )
        self._build_phase2(
            feature_thresholds=feature_thresholds,
            feature_scales=feature_scales,
            clean_column_centers=np.median(matrix, axis=0),
            engine=engine,
        )
        # Freeze the clean distribution for drift monitoring: per-column
        # histograms of the exact matrix the model trained on, plus the
        # expected clean flag rate as the control-chart center.
        from repro.monitor import MonitorBaseline

        self._monitor_baseline = MonitorBaseline.from_matrix(
            self.preprocessor, matrix,
            flag_rate=1.0 - self.config.threshold_percentile / 100.0,
        )
        logger.info("calibrated threshold=%.6f (p%.0f)", self.calibration.threshold, self.config.threshold_percentile)
        return self

    # -- phase 2 --------------------------------------------------------------
    def validate(
        self, table: Table, workers: int | None = None, rules=None, use_shm: bool | None = None
    ) -> ValidationReport:
        """Full validation report for an unseen table (engine-compiled path).

        With ``workers > 1`` the table is split into chunk-aligned row
        shards validated on a process pool (see
        :mod:`repro.runtime.sharding`); the merged report is bit-identical
        to the single-process path. The pool is cached per worker count —
        release with :meth:`close_parallel` when done. ``use_shm``
        controls the shared-memory data plane of that pool (None =
        auto-detect, False = pickled fan-out, True = prefer shm with
        automatic fallback); single-process runs ignore it.

        ``rules`` attaches a declarative rule set (any form accepted by
        :func:`repro.rules.resolve_rules`): the encoded matrix is also
        evaluated against the compiled :class:`~repro.rules.RulePlan` and
        the outcome fused into ``report.rule_report`` — the GNN-derived
        fields are never altered, so a rules-off run stays bit-identical.
        """
        validator = self._require_validator()
        rule_plan = None
        if rules is not None:
            from repro.rules import resolve_rules

            rule_plan = resolve_rules(rules, validator.preprocessor)
        # Empty tables fall through: their one-shot report is
        # well-defined while a zero-shard plan is not.
        if workers is not None and workers > 1 and table.n_rows > 0:
            from repro.exceptions import TransientServiceError

            if table.schema != validator.preprocessor.schema:
                raise SchemaError("table schema does not match the trained pipeline")
            ruleset = None if rule_plan is None else rule_plan.ruleset
            try:
                return self.parallel_validator(workers, use_shm=use_shm).validate_table(
                    table, shards=workers, keep_cell_errors=True, rules=ruleset
                )
            except TransientServiceError:
                # A concurrent wider validate() closed our pool between
                # lookup and submission; the cache now holds the wider
                # pool, so one retry lands on it.
                return self.parallel_validator(workers, use_shm=use_shm).validate_table(
                    table, shards=workers, keep_cell_errors=True, rules=ruleset
                )
        if rule_plan is not None:
            from repro.rules import apply_rules

            matrix, report = validator.validate_with_matrix(table)
            return apply_rules(report, matrix, rule_plan)
        return validator.validate(table)

    def validate_batch(self, batch: Table) -> BatchVerdict:
        """Batch verdict on the shared baseline interface.

        ``details["summary"]`` is the structured
        :func:`~repro.api.protocol.summary_dict` payload (JSON-ready);
        call :meth:`BatchVerdict.summary` to render it for humans.
        """
        from repro.api.protocol import summary_dict

        report = self._require_validator().validate(batch)
        return BatchVerdict(
            is_problematic=report.is_problematic,
            flagged_rows=report.flagged_rows,
            score=report.flagged_fraction,
            details={"threshold": report.threshold, "summary": summary_dict(report)},
        )

    def repair(
        self, table: Table, report: ValidationReport | None = None, iterations: int = 1
    ) -> tuple[Table, RepairSummary]:
        """Repair flagged cells of ``table`` (validates first if needed).

        With ``iterations > 1`` the repair is reapplied: after each pass
        the repaired table is re-validated and any still-flagged cells
        are repaired again. Multi-cell corruptions benefit — the first
        pass fixes the dominant outlier cell, pulling the row back toward
        the clean manifold so remaining errors become visible. Stops
        early once the table is classified clean.
        """
        if self._repair_engine is None:
            raise NotFittedError("DQuaG used before fit()")
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        if report is None:
            report = self.validate(table)
        current = table
        total_cells = 0
        touched_rows = 0
        by_column: dict[str, int] = {}
        for i in range(iterations):
            current, summary = self._repair_engine.repair(current, report)
            total_cells += summary.n_cells_repaired
            touched_rows = max(touched_rows, summary.n_rows_touched)
            for column, count in summary.repairs_by_column.items():
                by_column[column] = by_column.get(column, 0) + count
            if i + 1 < iterations:
                report = self.validate(current)
                if not report.is_problematic and report.n_flagged == 0:
                    break
        return current, RepairSummary(
            n_rows_touched=touched_rows,
            n_cells_repaired=total_cells,
            repairs_by_column=by_column,
        )

    # -- runtime ---------------------------------------------------------------
    @property
    def engine(self):
        """The compiled :class:`~repro.runtime.engine.InferenceEngine`
        serving this pipeline (``None`` if the model is not exportable)."""
        return self._require_validator().engine

    def streaming_validator(
        self,
        chunk_size: int = 8192,
        keep_cell_errors: bool = False,
        monitor=None,
        clock=None,
        rules=None,
    ):
        """Bounded-memory chunked validator over this fitted pipeline.

        ``monitor`` attaches a :class:`~repro.monitor.monitor.DriftMonitor`
        (see :meth:`monitor`) that observes every validated chunk;
        ``rules`` attaches a declarative rule set evaluated per chunk
        (see :class:`~repro.runtime.streaming.StreamingValidator`).
        """
        from repro.runtime.streaming import StreamingValidator

        return StreamingValidator(
            self._require_validator(),
            chunk_size=chunk_size,
            keep_cell_errors=keep_cell_errors,
            monitor=monitor,
            clock=clock,
            rules=rules,
        )

    # -- drift monitoring --------------------------------------------------
    @property
    def monitor_baseline(self):
        """The training-time distribution baseline (``None`` when the
        pipeline was loaded from an archive that predates monitoring)."""
        return self._monitor_baseline

    def monitor(self, window_chunks: int = 32, **options):
        """A fresh :class:`~repro.monitor.monitor.DriftMonitor` over this
        pipeline's training-time baseline.

        The monitor compares everything it observes (tables, preprocessed
        chunks, partial reports) to the clean distribution frozen at
        ``fit()`` time; the baseline travels in ``save()`` archives, so
        reloaded pipelines monitor against the distribution they were
        actually trained on. ``options`` forward to
        :class:`~repro.monitor.monitor.DriftMonitor` (thresholds, EWMA
        parameters, ``clock`` for tests).
        """
        from repro.exceptions import ReproError
        from repro.monitor import DriftMonitor

        validator = self._require_validator()
        if self._monitor_baseline is None:
            raise ReproError(
                "this pipeline has no drift-monitoring baseline (archive saved "
                "before drift monitoring); call fit_monitor_baseline(clean_table) "
                "or refit and re-save"
            )
        return DriftMonitor(
            self._monitor_baseline,
            preprocessor=validator.preprocessor,
            window_chunks=window_chunks,
            **options,
        )

    def fit_monitor_baseline(self, clean: Table) -> "DQuaG":
        """(Re)build the monitoring baseline from a clean table.

        For pipelines restored from pre-monitoring archives, or to
        re-anchor monitoring on fresher clean data without retraining.
        """
        from repro.monitor import MonitorBaseline

        validator = self._require_validator()
        self._monitor_baseline = MonitorBaseline.from_matrix(
            validator.preprocessor,
            validator.preprocessor.compile().transform(clean),
            flag_rate=1.0 - self.config.threshold_percentile / 100.0,
        )
        return self

    def parallel_validator(
        self,
        workers: int | None = None,
        chunk_size: int = 8192,
        use_shm: bool | None = None,
    ):
        """The cached sharded executor over this fitted pipeline.

        One pool is kept, rebuilt wider when a larger worker count (or a
        different chunk size, or an explicitly different ``use_shm``
        setting) is requested; any shard count runs on it with
        bit-identical results. The pipeline is persisted to a temp
        archive on first use (workers rebuild from it — no live state is
        pickled); subsequent calls reuse the warm pool.
        """
        from repro.runtime.sharding import ParallelValidator

        self._require_validator()
        workers = (os.cpu_count() or 1) if workers is None else max(1, int(workers))
        # Serialized: concurrent first calls must not each save a temp
        # archive and spawn a pool, orphaning all but the last.
        with self._parallel_lock:
            parallel = self._parallel_validator
            if parallel is not None and (
                parallel.workers < workers
                or parallel.chunk_size != chunk_size
                or (use_shm is not None and parallel.use_shm != use_shm)
            ):
                self._parallel_validator = None
                parallel.close()
                parallel = None
            if parallel is None:
                parallel = ParallelValidator.from_pipeline(
                    self, workers=workers, chunk_size=chunk_size, use_shm=use_shm
                )
                self._parallel_validator = parallel
            return parallel

    def close_parallel(self) -> None:
        """Shut down the cached sharded worker pool and its temp archive."""
        with self._parallel_lock:
            parallel, self._parallel_validator = self._parallel_validator, None
        if parallel is not None:
            parallel.close()

    def _compile_kernels(self):
        """Compile the fitted model into an :class:`InferenceEngine`
        (``None`` when the architecture is not exportable)."""
        from repro.exceptions import KernelExportError
        from repro.runtime.engine import InferenceEngine

        try:
            return InferenceEngine(self.model)
        except KernelExportError as exc:
            logger.warning("model not exportable to NumPy kernels (%s); serving via autograd", exc)
            return None

    def _build_phase2(
        self,
        feature_thresholds: np.ndarray | None,
        feature_scales: np.ndarray | None,
        clean_column_centers: np.ndarray,
        engine=None,
    ) -> None:
        """Assemble validator + repair engine around one shared compiled
        inference engine (falling back to autograd when not exportable)."""
        if engine is None:
            engine = self._compile_kernels()
        # Warm the compiled preprocessing plan alongside the model
        # kernels: both fit() and load_weights() land here, so the first
        # request (local or via ValidationService) runs fully hot.
        self.preprocessor.compile()
        self._validator = DataQualityValidator(
            self.model, self.preprocessor, self.calibration, self.config,
            feature_thresholds=feature_thresholds,
            feature_scales=feature_scales,
            engine=engine,
            use_engine=engine is not None,
        )
        if engine is not None:
            engine.attach_context(
                preprocessor=self.preprocessor,
                calibration=self.calibration,
                feature_scales=self._validator.feature_scales,
                feature_thresholds=self._validator.feature_thresholds,
            )
        self._repair_engine = RepairEngine(
            self.model, self.preprocessor,
            clean_column_centers=clean_column_centers,
            engine=engine,
        )

    # -- persistence -------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist weights, config, graph, calibration, and the fitted
        preprocessor state (encoder vocabularies and scaling ranges)."""
        if self.model is None or self.calibration is None:
            raise NotFittedError("cannot save an unfitted DQuaG pipeline")
        validator = self._require_validator()
        metadata = {
            "config": self.config.to_dict(),
            "graph": self.graph.to_dict(),
            "calibration": {
                "threshold": self.calibration.threshold,
                "percentile": self.calibration.percentile,
                "clean_mean": self.calibration.clean_mean,
                "clean_p50": self.calibration.clean_p50,
                "clean_max": self.calibration.clean_max,
                "n_samples": self.calibration.n_samples,
            },
            "feature_scales": (
                None if validator.feature_scales is None else validator.feature_scales.tolist()
            ),
            "feature_thresholds": (
                None if validator.feature_thresholds is None else validator.feature_thresholds.tolist()
            ),
            # The fitted encoder state travels with the weights: a
            # reloaded pipeline must encode categories identically to
            # the one the threshold was calibrated on (refitting on a
            # different clean sample would silently shift codes).
            "preprocessor": self.preprocessor.to_metadata(),
            "future_categories": self._future_categories,
            "clean_column_centers": (
                None
                if self._repair_engine is None
                else self._repair_engine.clean_column_centers.tolist()
            ),
            # Additive since the monitoring era: archives without it
            # still load, they just cannot build a DriftMonitor until
            # fit_monitor_baseline() re-anchors them.
            "monitor_baseline": (
                None if self._monitor_baseline is None else self._monitor_baseline.to_metadata()
            ),
        }
        save_state(self.model.state_dict(), path, metadata=metadata)

    def load_weights(self, path: str | Path, clean: Table | None = None) -> "DQuaG":
        """Restore a saved pipeline from its archive alone.

        The archive carries the fitted preprocessor state (label
        vocabularies — including any ``future_categories`` supplied at
        fit time — and numeric scaling ranges), so no clean table is
        needed. ``clean`` is accepted for schema cross-checking only.
        """
        self.close_parallel()
        state, metadata = load_state(path)
        if "preprocessor" not in metadata:
            raise SerializationError(
                f"{path} does not carry preprocessor state (pre-runtime archive); "
                "retrain and re-save the pipeline"
            )
        self.config = DQuaGConfig.from_dict(metadata["config"])
        self.graph = FeatureGraph.from_dict(metadata["graph"])
        self.preprocessor = TablePreprocessor.from_metadata(metadata["preprocessor"])
        self._future_categories = metadata.get("future_categories")
        if clean is not None and clean.schema != self.preprocessor.schema:
            raise SchemaError("provided table schema does not match the saved pipeline")
        self.model = DQuaGModel(self.graph, self.config)
        self.model.load_state_dict(state)
        calibration = metadata["calibration"]
        self.calibration = ThresholdCalibration(
            threshold=calibration["threshold"],
            percentile=calibration["percentile"],
            clean_mean=calibration["clean_mean"],
            clean_p50=calibration["clean_p50"],
            clean_max=calibration["clean_max"],
            n_samples=calibration["n_samples"],
        )
        scales = metadata.get("feature_scales")
        thresholds = metadata.get("feature_thresholds")
        centers = metadata.get("clean_column_centers")
        baseline = metadata.get("monitor_baseline")
        if baseline is None:
            self._monitor_baseline = None
        else:
            from repro.monitor import MonitorBaseline

            self._monitor_baseline = MonitorBaseline.from_metadata(baseline)
        self._build_phase2(
            feature_thresholds=None if thresholds is None else np.asarray(thresholds),
            feature_scales=None if scales is None else np.asarray(scales),
            clean_column_centers=(
                np.full(len(self.preprocessor.schema), 0.5)
                if centers is None
                else np.asarray(centers, dtype=np.float64)
            ),
        )
        return self

    # -- internals ------------------------------------------------------------------
    def _require_validator(self) -> DataQualityValidator:
        if self._validator is None:
            raise NotFittedError("DQuaG used before fit()")
        return self._validator
