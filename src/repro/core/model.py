"""The DQuaG model: shared GNN encoder + dual decoders (§3.1.2).

The input is a preprocessed table matrix ``X ∈ R^{B×F}`` (B rows, F
features). Each row becomes a feature graph whose node ``f`` carries
``[x_f ⊕ E_f]`` — the scaled cell value concatenated with a learnable
per-feature identity embedding — so the shared decoders can be
feature-aware. The encoder produces node embeddings ``Z ∈ R^{B×F×h}``;
each decoder maps ``[Z_f ⊕ E_f] → x̂_f`` with a per-node MLP, yielding a
``(B, F)`` reconstruction (validation decoder) and repair proposal
(repair decoder).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DQuaGConfig
from repro.gnn.context import GraphContext
from repro.gnn.encoder import GNNEncoder, build_encoder
from repro.graph.feature_graph import FeatureGraph
from repro.nn import no_grad
from repro.nn.layers import MLP
from repro.nn.module import Module
from repro.nn.tensor import Parameter, Tensor
from repro.utils.rng import derive_rng, ensure_rng

__all__ = ["DQuaGModel"]


class DQuaGModel(Module):
    """GNN encoder + dual decoder over a fixed feature graph."""

    def __init__(
        self,
        graph: FeatureGraph,
        config: DQuaGConfig | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.config = config or DQuaGConfig()
        self.graph = graph
        self.ctx = GraphContext.from_feature_graph(graph)
        self.n_features = graph.n_nodes
        generator = ensure_rng(rng if rng is not None else self.config.seed)

        embed_dim = self.config.feature_embedding_dim
        scale = 1.0 / np.sqrt(max(embed_dim, 1))
        self.feature_embeddings = Parameter(
            derive_rng(generator, "embeddings").normal(0.0, scale, size=(self.n_features, embed_dim)),
            name="feature_embeddings",
        )

        self.encoder: GNNEncoder = build_encoder(
            self.config.architecture,
            in_features=self.config.node_input_dim,
            hidden_features=self.config.hidden_dim,
            graph=graph,
            n_layers=self.config.n_layers,
            gat_heads=self.config.gat_heads,
            rng=derive_rng(generator, "encoder"),
        )

        decoder_in = self.config.hidden_dim + embed_dim
        half = max(self.config.hidden_dim // 2, 4)
        self.validation_decoder = MLP(
            [decoder_in, half, 1], activation="relu", rng=derive_rng(generator, "val_dec")
        )
        self.repair_decoder = MLP(
            [decoder_in, half, 1], activation="relu", rng=derive_rng(generator, "rep_dec")
        )

    # -- forward ------------------------------------------------------------
    def node_inputs(self, x: Tensor) -> Tensor:
        """(B, F) value matrix → (B, F, 1+e) node-input tensor."""
        if x.ndim != 2 or x.shape[1] != self.n_features:
            raise ValueError(f"expected (batch, {self.n_features}) input, got {x.shape}")
        batch = x.shape[0]
        values = x.reshape(batch, self.n_features, 1)
        if self.config.feature_embedding_dim == 0:
            return values
        identity = self.feature_embeddings.expand_dims(0).broadcast_to(
            (batch, self.n_features, self.config.feature_embedding_dim)
        )
        return Tensor.concatenate([values, identity], axis=-1)

    def encode(self, x: Tensor) -> Tensor:
        """(B, F) → node embeddings (B, F, hidden)."""
        return self.encoder(self.node_inputs(x), self.ctx)

    def _decode(self, decoder: MLP, embeddings: Tensor) -> Tensor:
        batch = embeddings.shape[0]
        if self.config.feature_embedding_dim > 0:
            identity = self.feature_embeddings.expand_dims(0).broadcast_to(
                (batch, self.n_features, self.config.feature_embedding_dim)
            )
            decoder_in = Tensor.concatenate([embeddings, identity], axis=-1)
        else:
            decoder_in = embeddings
        return decoder(decoder_in).squeeze(-1)  # (B, F)

    def forward(self, x: Tensor) -> tuple[Tensor, Tensor]:
        """Return ``(reconstruction, repair)``, each of shape (B, F)."""
        embeddings = self.encode(x)
        reconstruction = self._decode(self.validation_decoder, embeddings)
        repair = self._decode(self.repair_decoder, embeddings)
        return reconstruction, repair

    # -- inference helpers -------------------------------------------------------
    def reconstruction_errors(self, matrix: np.ndarray, chunk_size: int = 4096) -> np.ndarray:
        """Per-cell squared reconstruction errors, shape (B, F), no gradients.

        Large inputs are processed in chunks to bound peak memory — this
        is the inference path of the Figure 4 scalability study.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        out = np.empty_like(matrix)
        with no_grad():
            for start in range(0, matrix.shape[0], chunk_size):
                chunk = matrix[start : start + chunk_size]
                recon, _ = self.forward(Tensor(chunk))
                out[start : start + chunk_size] = (recon.numpy() - chunk) ** 2
        return out

    def repair_values(self, matrix: np.ndarray, chunk_size: int = 4096) -> np.ndarray:
        """Repair-decoder proposals in model space, shape (B, F), no gradients."""
        matrix = np.asarray(matrix, dtype=np.float64)
        out = np.empty_like(matrix)
        with no_grad():
            for start in range(0, matrix.shape[0], chunk_size):
                chunk = matrix[start : start + chunk_size]
                _, repair = self.forward(Tensor(chunk))
                out[start : start + chunk_size] = repair.numpy()
        return out

    @staticmethod
    def sample_errors(cell_errors: np.ndarray) -> np.ndarray:
        """Per-sample reconstruction error: mean over features (§3.1.4)."""
        return np.asarray(cell_errors).mean(axis=1)
