"""Training loop for the DQuaG model (§3.1.3).

Adam over mini-batches of the preprocessed clean matrix, minimizing the
multi-task loss; after the final epoch the trainer collects the clean
reconstruction-error statistics (§3.1.4) used for threshold calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DQuaGConfig
from repro.core.losses import dquag_loss
from repro.core.model import DQuaGModel
from repro.data.batching import iterate_minibatches
from repro.exceptions import TrainingError
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.utils.logging import get_logger
from repro.utils.rng import derive_rng, ensure_rng

__all__ = ["EpochStats", "TrainingHistory", "Trainer"]

logger = get_logger("core.trainer")


@dataclass(frozen=True)
class EpochStats:
    epoch: int
    total_loss: float
    validation_loss: float
    repair_loss: float


@dataclass
class TrainingHistory:
    """Per-epoch losses plus final clean reconstruction errors."""

    epochs: list[EpochStats] = field(default_factory=list)
    clean_sample_errors: np.ndarray | None = None

    @property
    def final_loss(self) -> float:
        if not self.epochs:
            raise TrainingError("no epochs recorded")
        return self.epochs[-1].total_loss

    def converged(self, patience_ratio: float = 0.98) -> bool:
        """Heuristic: last-epoch loss below ``patience_ratio ×`` first-epoch loss."""
        if len(self.epochs) < 2:
            return False
        return self.epochs[-1].total_loss < self.epochs[0].total_loss * patience_ratio


class Trainer:
    """Mini-batch Adam training of a :class:`DQuaGModel`."""

    def __init__(self, model: DQuaGModel, config: DQuaGConfig | None = None) -> None:
        self.model = model
        self.config = config or model.config
        self.optimizer = Adam(
            model.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )

    def train(
        self,
        matrix: np.ndarray,
        rng: int | np.random.Generator | None = None,
        epochs: int | None = None,
    ) -> TrainingHistory:
        """Train on the preprocessed clean matrix ``(n_rows, n_features)``."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise TrainingError(f"training matrix must be 2-D, got shape {matrix.shape}")
        if matrix.shape[0] == 0:
            raise TrainingError("training matrix has no rows")
        if matrix.shape[1] != self.model.n_features:
            raise TrainingError(
                f"matrix width {matrix.shape[1]} != model features {self.model.n_features}"
            )
        generator = ensure_rng(rng if rng is not None else self.config.seed)
        epochs = epochs or self.config.epochs

        history = TrainingHistory()
        self.model.train()
        for epoch in range(epochs):
            epoch_rng = derive_rng(generator, "epoch", epoch)
            totals, validations, repairs, batches = 0.0, 0.0, 0.0, 0
            for indices in iterate_minibatches(matrix.shape[0], self.config.batch_size, epoch_rng):
                batch = matrix[indices]
                self.optimizer.zero_grad()
                reconstruction, repair = self.model(Tensor(batch))
                parts = dquag_loss(
                    reconstruction,
                    repair,
                    batch,
                    alpha=self.config.alpha,
                    beta=self.config.beta,
                    weighting_temperature=self.config.weighting_temperature,
                )
                parts.total.backward()
                self.optimizer.step()
                totals += float(parts.total.numpy())
                validations += parts.validation
                repairs += parts.repair
                batches += 1
            stats = EpochStats(
                epoch=epoch,
                total_loss=totals / batches,
                validation_loss=validations / batches,
                repair_loss=repairs / batches,
            )
            if not np.isfinite(stats.total_loss):
                raise TrainingError(f"loss diverged at epoch {epoch}: {stats.total_loss}")
            history.epochs.append(stats)
            if epoch == 0 or (epoch + 1) % 10 == 0:
                logger.debug(
                    "epoch %d: total=%.5f validation=%.5f repair=%.5f",
                    epoch, stats.total_loss, stats.validation_loss, stats.repair_loss,
                )

        # §3.1.4: collect per-instance reconstruction errors on clean data.
        self.model.eval()
        cell_errors = self.model.reconstruction_errors(matrix)
        history.clean_sample_errors = DQuaGModel.sample_errors(cell_errors)
        return history
