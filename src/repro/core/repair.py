"""Phase 2: repair-suggestion generation (§3.2.2).

Only cells flagged by the validator are modified. The repair decoder's
model-space proposal is mapped back to data space: numeric features are
denormalized; categorical features snap to the *nearest valid category*
of the fitted label encoder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import DQuaGModel
from repro.core.validator import ValidationReport
from repro.data.preprocess import TablePreprocessor
from repro.data.table import Table
from repro.exceptions import RepairError, SchemaError

__all__ = ["RepairSummary", "RepairEngine"]


@dataclass
class RepairSummary:
    """What the repair pass changed."""

    n_rows_touched: int
    n_cells_repaired: int
    repairs_by_column: dict[str, int]

    def __repr__(self) -> str:
        return (
            f"RepairSummary(rows={self.n_rows_touched}, cells={self.n_cells_repaired}, "
            f"columns={sorted(self.repairs_by_column)})"
        )

    # -- wire protocol (repro.api) ----------------------------------------
    def to_dict(self) -> dict:
        from repro.api.protocol import repair_summary_to_dict

        return repair_summary_to_dict(self)

    @staticmethod
    def from_dict(payload: dict) -> "RepairSummary":
        from repro.api.protocol import repair_summary_from_dict

        return repair_summary_from_dict(payload)


class RepairEngine:
    """Generates repaired tables from validator output.

    Before querying the repair decoder, flagged cells are *masked* with
    the clean column centers (model-space medians of the training data):
    a corrupted value would otherwise poison its own node's embedding and
    drag the proposal toward the corruption. With the mask, proposals are
    conditioned only on the row's trustworthy cells.
    """

    def __init__(
        self,
        model: DQuaGModel,
        preprocessor: TablePreprocessor,
        clean_column_centers: np.ndarray | None = None,
        engine: "object | None" = None,
    ) -> None:
        self.model = model
        self.preprocessor = preprocessor
        if clean_column_centers is None:
            clean_column_centers = np.full(len(preprocessor.schema), 0.5)
        self.clean_column_centers = np.asarray(clean_column_centers, dtype=np.float64)
        # Optional compiled InferenceEngine: repair proposals then come
        # from the pure-NumPy repair-decoder kernel instead of autograd.
        self.engine = engine

    def repair(self, table: Table, report: ValidationReport) -> tuple[Table, RepairSummary]:
        """Return a repaired copy of ``table`` and a change summary.

        Missing cells are always repaired (they are sentinel outliers by
        construction); other cells only when flagged in ``report``.
        """
        if table.schema != self.preprocessor.schema:
            raise SchemaError("table schema does not match the trained pipeline")
        cell_flags = np.asarray(report.cell_flags, dtype=bool)
        if cell_flags.shape != (table.n_rows, table.n_columns):
            raise RepairError(
                f"report cell flags {cell_flags.shape} do not match table "
                f"({table.n_rows}, {table.n_columns})"
            )
        # Missing values are always in scope for repair.
        cell_flags = cell_flags | table.missing_mask()

        matrix = self.preprocessor.compile().transform(table)
        masked = matrix.copy()
        masked[cell_flags] = np.broadcast_to(self.clean_column_centers, matrix.shape)[cell_flags]
        if self.engine is not None:
            proposals = self.engine.repair_values(masked)
        else:
            proposals = self.model.repair_values(masked)

        repaired_columns: dict[str, np.ndarray] = {}
        repairs_by_column: dict[str, int] = {}
        for j, spec in enumerate(table.schema):
            rows = np.flatnonzero(cell_flags[:, j])
            column = table.column(spec.name).copy()
            if rows.size:
                if spec.is_categorical:
                    snapped = self._snap_categorical(spec.name, proposals[rows, j])
                    for row, value in zip(rows, snapped):
                        column[row] = value
                else:
                    normalizer = self.preprocessor.normalizer(spec.name)
                    column[rows] = normalizer.inverse_transform(proposals[rows, j])
                repairs_by_column[spec.name] = int(rows.size)
            repaired_columns[spec.name] = column

        repaired = Table(table.schema, repaired_columns)
        summary = RepairSummary(
            n_rows_touched=int(cell_flags.any(axis=1).sum()),
            n_cells_repaired=int(cell_flags.sum()),
            repairs_by_column=repairs_by_column,
        )
        return repaired, summary

    def _snap_categorical(self, name: str, scaled_values: np.ndarray) -> list[str]:
        """Map model-space proposals to the nearest valid category."""
        positions = self.preprocessor.valid_code_positions(name)
        encoder = self.preprocessor.label_encoder(name)
        snapped: list[str] = []
        for value in scaled_values:
            nearest = int(np.argmin(np.abs(positions - value)))
            snapped.append(encoder.classes_[nearest])
        return snapped
