"""The dual-decoder multi-task loss (§3.1.2).

``L_total = α · L_validation + β · L_repair`` where

* ``L_validation = (1/N) Σ w_i ‖X_i − X̂_i‖²`` with per-sample weights
  ``w_i`` that *decrease* with the sample's reconstruction error — normal
  samples dominate the gradient, suspect samples are down-weighted so the
  model never learns to reconstruct them well;
* ``L_repair = (1/N) Σ ‖X_i − X̃_i‖²`` — plain MSE toward the clean
  values (the training input is clean, so it is its own repair target).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor

__all__ = ["LossParts", "compute_sample_weights", "dquag_loss"]


@dataclass
class LossParts:
    """Total loss tensor plus detached scalar diagnostics."""

    total: Tensor
    validation: float
    repair: float


def compute_sample_weights(
    sample_errors: np.ndarray,
    temperature: float | None = None,
) -> np.ndarray:
    """Map per-sample errors to the §3.1.2 weighting scheme.

    ``w_i = exp(−e_i / τ)``, normalized to mean 1 so the loss scale is
    independent of the weighting. ``τ`` defaults to the median error of
    the batch — samples near the typical error keep weight ≈ e^{−1},
    while outliers (likely residual noise even in "clean" data, §3.1.4)
    are suppressed exponentially.
    """
    errors = np.asarray(sample_errors, dtype=np.float64)
    if errors.ndim != 1:
        raise ValueError(f"sample errors must be 1-D, got shape {errors.shape}")
    if errors.size == 0:
        return np.ones(0)
    if temperature is None:
        temperature = float(np.median(errors))
    temperature = max(temperature, 1e-12)
    # Clamp the exponent so extreme outliers keep a tiny-but-positive
    # weight instead of underflowing to exactly zero.
    weights = np.exp(np.clip(-errors / temperature, -60.0, 0.0))
    mean = weights.mean()
    if mean <= 0:
        return np.ones_like(weights)
    return weights / mean


def dquag_loss(
    reconstruction: Tensor,
    repair: Tensor,
    target: np.ndarray,
    alpha: float = 1.0,
    beta: float = 1.0,
    weighting_temperature: float | None = None,
) -> LossParts:
    """Assemble the multi-task loss for one mini-batch.

    Weights are computed from the *detached* reconstruction errors of the
    current forward pass, so no gradient flows through the weighting.
    """
    target = np.asarray(target, dtype=np.float64)
    detached_errors = ((reconstruction.numpy() - target) ** 2).mean(axis=1)
    weights = compute_sample_weights(detached_errors, weighting_temperature)

    validation_loss = F.weighted_mse_loss(reconstruction, target, weights)
    repair_loss = F.mse_loss(repair, target)
    total = validation_loss * alpha + repair_loss * beta
    return LossParts(
        total=total,
        validation=float(validation_loss.numpy()),
        repair=float(repair_loss.numpy()),
    )
