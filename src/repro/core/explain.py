"""Interpretability helpers (the paper's §5 interpretability goal).

Two complementary views of *why* a row was flagged:

* :func:`explain_row` — error decomposition: each feature's share of the
  row's reconstruction error, with the cell values in data space;
* :func:`attention_summary` — the GAT layers' learned feature-to-feature
  attention, averaged over a batch: which relationships the encoder
  actually uses (the learned counterpart of the §3.1.1 feature graph).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import DQuaG
from repro.core.validator import ValidationReport
from repro.data.table import Table
from repro.exceptions import ValidationError
from repro.nn import Tensor, no_grad

__all__ = ["FeatureContribution", "explain_row", "attention_summary"]


@dataclass(frozen=True)
class FeatureContribution:
    """One feature's role in a row's reconstruction error."""

    feature: str
    value: object
    cell_error: float
    share: float
    flagged: bool


def explain_row(report: ValidationReport, table: Table, row: int) -> list[FeatureContribution]:
    """Decompose a row's error into per-feature contributions (sorted
    by share, largest first)."""
    if not 0 <= row < table.n_rows:
        raise ValidationError(f"row {row} out of range for table of {table.n_rows} rows")
    cell_errors = report.cell_errors[row]
    total = float(cell_errors.sum())
    contributions = []
    for j, name in enumerate(report.feature_names):
        contributions.append(
            FeatureContribution(
                feature=name,
                value=table.column(name)[row],
                cell_error=float(cell_errors[j]),
                share=float(cell_errors[j]) / total if total > 0 else 0.0,
                flagged=bool(report.cell_flags[row, j]),
            )
        )
    return sorted(contributions, key=lambda c: -c.share)


def attention_summary(pipeline: DQuaG, table: Table, max_rows: int = 512) -> dict[tuple[str, str], float]:
    """Average GAT attention between feature pairs over a batch.

    Returns ``{(from_feature, to_feature): weight}`` for connected pairs,
    averaged over heads, layers, and rows. Raises if the encoder has no
    attention layers (e.g. the ``gcn`` ablation).
    """
    if pipeline.model is None:
        raise ValidationError("pipeline is not fitted")
    matrix = pipeline.preprocessor.compile().transform(table.head(max_rows))
    with no_grad():
        pipeline.model.encode(Tensor(matrix))
    maps = pipeline.model.encoder.attention_maps()
    if not maps:
        raise ValidationError(f"encoder {pipeline.config.architecture!r} has no attention layers")
    # Each map: (heads, batch, n, n) — average everything but the feature axes.
    stacked = np.mean([m.mean(axis=(0, 1)) for m in maps], axis=0)
    names = pipeline.graph.features
    mask = pipeline.model.ctx.attention_mask
    summary: dict[tuple[str, str], float] = {}
    for i, source in enumerate(names):
        for j, target in enumerate(names):
            if mask[i, j]:
                summary[(source, target)] = float(stacked[i, j])
    return summary
