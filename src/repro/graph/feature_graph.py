"""The knowledge-based feature graph G = (V, E) of §3.1.1.

Nodes are the columns of a table; undirected edges mark inferred
relationships between columns. The graph is consumed by the GNN encoder
as dense adjacency matrices (feature graphs are small — one node per
column — so dense message passing is exact).
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx
import numpy as np

from repro.exceptions import GraphConstructionError

__all__ = ["FeatureGraph"]


class FeatureGraph:
    """An undirected graph over feature (column) names."""

    def __init__(self, features: list[str], edges: Iterable[tuple[str, str]] = ()) -> None:
        if not features:
            raise GraphConstructionError("feature graph needs at least one feature")
        if len(set(features)) != len(features):
            raise GraphConstructionError("duplicate feature names")
        self.features = list(features)
        self._index = {name: i for i, name in enumerate(self.features)}
        self._edges: set[tuple[str, str]] = set()
        for a, b in edges:
            self.add_edge(a, b)

    # -- mutation -----------------------------------------------------------
    def add_edge(self, a: str, b: str) -> None:
        """Add an undirected edge; self-loops and unknown features are rejected."""
        if a not in self._index or b not in self._index:
            unknown = [n for n in (a, b) if n not in self._index]
            raise GraphConstructionError(f"edge references unknown features: {unknown}")
        if a == b:
            raise GraphConstructionError(f"self-loop on {a!r} not allowed (added separately in layers)")
        self._edges.add((min(a, b), max(a, b)))

    # -- inspection ------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.features)

    @property
    def edges(self) -> list[tuple[str, str]]:
        return sorted(self._edges)

    @property
    def n_edges(self) -> int:
        return len(self._edges)

    def has_edge(self, a: str, b: str) -> bool:
        return (min(a, b), max(a, b)) in self._edges

    def neighbors(self, name: str) -> list[str]:
        if name not in self._index:
            raise GraphConstructionError(f"unknown feature {name!r}")
        return sorted({b if a == name else a for a, b in self._edges if name in (a, b)})

    def degree(self, name: str) -> int:
        return len(self.neighbors(name))

    def isolated_features(self) -> list[str]:
        return [name for name in self.features if self.degree(name) == 0]

    def density(self) -> float:
        n = self.n_nodes
        if n < 2:
            return 0.0
        return self.n_edges / (n * (n - 1) / 2)

    def __repr__(self) -> str:
        return f"FeatureGraph(nodes={self.n_nodes}, edges={self.n_edges})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FeatureGraph)
            and self.features == other.features
            and self._edges == other._edges
        )

    # -- matrix views ---------------------------------------------------------
    def adjacency(self, self_loops: bool = False, dtype=np.float64) -> np.ndarray:
        """Dense (n, n) adjacency matrix in feature order."""
        n = self.n_nodes
        adj = np.zeros((n, n), dtype=dtype)
        for a, b in self._edges:
            i, j = self._index[a], self._index[b]
            adj[i, j] = adj[j, i] = 1.0
        if self_loops:
            adj[np.diag_indices(n)] = 1.0
        return adj

    def normalized_adjacency(self) -> np.ndarray:
        """Symmetric GCN normalization D^{-1/2}(A + I)D^{-1/2}."""
        adj = self.adjacency(self_loops=True)
        degree = adj.sum(axis=1)
        inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, 1e-12))
        return adj * inv_sqrt[:, None] * inv_sqrt[None, :]

    def attention_mask(self) -> np.ndarray:
        """Boolean (n, n) mask of allowed attention pairs (edges + self)."""
        return self.adjacency(self_loops=True).astype(bool)

    # -- interop ---------------------------------------------------------------
    def to_networkx(self) -> nx.Graph:
        graph = nx.Graph()
        graph.add_nodes_from(self.features)
        graph.add_edges_from(self._edges)
        return graph

    @staticmethod
    def from_networkx(graph: nx.Graph) -> "FeatureGraph":
        return FeatureGraph(sorted(graph.nodes), graph.edges)

    def to_dict(self) -> dict:
        """JSON-serializable form (matches the paper's relationships schema)."""
        return {
            "features": self.features,
            "relationships": [{"feature1": a, "feature2": b} for a, b in self.edges],
        }

    @staticmethod
    def from_dict(payload: dict) -> "FeatureGraph":
        try:
            features = payload["features"]
            relationships = payload["relationships"]
        except KeyError as exc:
            raise GraphConstructionError(f"missing key in feature-graph payload: {exc}") from exc
        edges = [(rel["feature1"], rel["feature2"]) for rel in relationships]
        return FeatureGraph(features, edges)

    # -- repairs -----------------------------------------------------------------
    def with_isolated_connected(self, anchor_strategy: str = "hub") -> "FeatureGraph":
        """Return a copy where isolated nodes get fallback edges.

        GNN message passing over an isolated node degenerates to a self-MLP;
        connecting isolates to the highest-degree node ("hub") or in a chain
        ("chain") keeps gradients flowing. Does nothing if no isolates exist.
        """
        isolates = self.isolated_features()
        if not isolates:
            return self
        clone = FeatureGraph(self.features, self._edges)
        if anchor_strategy == "hub":
            ranked = sorted(self.features, key=lambda n: (-self.degree(n), n))
            hub = ranked[0]
            for name in isolates:
                if name != hub:
                    clone.add_edge(name, hub)
                elif len(ranked) > 1:
                    clone.add_edge(name, ranked[1])
        elif anchor_strategy == "chain":
            ordered = [n for n in self.features]
            for a, b in zip(ordered[:-1], ordered[1:]):
                if a in isolates or b in isolates:
                    clone.add_edge(a, b)
        else:
            raise GraphConstructionError(f"unknown anchor strategy {anchor_strategy!r}")
        return clone
