"""The ChatGPT-4 feature-relationship protocol, offline (paper §3.1.1).

The paper sends feature names ``F``, descriptions ``D``, and 100 sampled
rows ``S`` to ChatGPT-4 in a structured prompt, and receives a JSON object
``{"relationships": [{"feature1": ..., "feature2": ...}, ...]}``.

This module reproduces the *entire protocol* — prompt construction,
provider invocation, JSON parsing, validation — with pluggable providers
standing in for the LLM (DESIGN.md §1):

* :class:`KnowledgeBaseProvider` — curated per-dataset relationship sets
  playing the role of the LLM's world knowledge (e.g. city ↔ country);
* :class:`StatisticalProvider` — adapts
  :class:`~repro.graph.inference.StatisticalRelationshipInference` to the
  provider interface;
* :class:`HybridProvider` — union of both, which is what a strong LLM
  that also inspects the sample rows would produce.

A real LLM client could implement :class:`RelationshipProvider` with no
changes anywhere else.
"""

from __future__ import annotations

import json
from typing import Protocol

from repro.data.table import Table
from repro.exceptions import GraphConstructionError
from repro.graph.feature_graph import FeatureGraph
from repro.graph.inference import StatisticalRelationshipInference

__all__ = [
    "PROMPT_TEMPLATE",
    "build_prompt",
    "parse_relationships_json",
    "RelationshipProvider",
    "KnowledgeBaseProvider",
    "StatisticalProvider",
    "HybridProvider",
    "FeatureGraphBuilder",
]

# The paper's prompt, §3.1.1 ("Prompt for Feature Relationship Inference").
PROMPT_TEMPLATE = """Given the following information, please infer the relationships
between features. Provide your output in JSON format, capturing
the type of relationships.

Feature Names: {feature_names}
Feature Descriptions: {feature_descriptions}
Sample Data Points: {sample_points}

Output: Please return a JSON object in the format:
{{"relationships": [{{"feature1": ..., "feature2": ...}},
{{"feature1": ..., "feature2": ...}}, ...]}}"""


def build_prompt(feature_names: list[str], descriptions: dict[str, str], samples: list[dict]) -> str:
    """Render the structured prompt from (F, D, S)."""
    return PROMPT_TEMPLATE.format(
        feature_names=json.dumps(feature_names),
        feature_descriptions=json.dumps(descriptions),
        sample_points=json.dumps(samples, default=str),
    )


def parse_relationships_json(payload: str, known_features: list[str]) -> list[tuple[str, str]]:
    """Parse and validate a provider's JSON reply.

    Tolerates the two shapes seen in the wild: objects with
    ``feature1``/``feature2`` keys and 2-element lists. Unknown feature
    names and self-pairs are rejected with :class:`GraphConstructionError`.
    """
    try:
        document = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise GraphConstructionError(f"provider returned invalid JSON: {exc}") from exc
    if not isinstance(document, dict) or "relationships" not in document:
        raise GraphConstructionError("provider reply missing 'relationships' key")
    known = set(known_features)
    edges: list[tuple[str, str]] = []
    for item in document["relationships"]:
        if isinstance(item, dict):
            try:
                a, b = item["feature1"], item["feature2"]
            except KeyError as exc:
                raise GraphConstructionError(f"relationship entry missing key: {exc}") from exc
        elif isinstance(item, (list, tuple)) and len(item) == 2:
            a, b = item
        else:
            raise GraphConstructionError(f"unparseable relationship entry: {item!r}")
        if a not in known or b not in known:
            raise GraphConstructionError(f"relationship references unknown feature: {(a, b)}")
        if a == b:
            raise GraphConstructionError(f"self-relationship on {a!r}")
        edges.append((a, b))
    return edges


class RelationshipProvider(Protocol):
    """Anything that can answer the feature-relationship prompt."""

    def complete(self, prompt: str, table: Table) -> str:
        """Return the JSON reply for ``prompt`` (the sampled table is
        passed for providers that compute rather than recall)."""
        ...


class KnowledgeBaseProvider:
    """Replays curated semantic relationships for a known schema.

    The knowledge base maps frozensets of feature names → edge lists and
    is populated by each dataset simulator (``repro.datasets``) with the
    relationships a domain expert / LLM would state.
    """

    def __init__(self, knowledge: dict[frozenset, list[tuple[str, str]]] | None = None) -> None:
        self._knowledge: dict[frozenset, list[tuple[str, str]]] = dict(knowledge or {})

    def register(self, feature_names: list[str], edges: list[tuple[str, str]]) -> None:
        self._knowledge[frozenset(feature_names)] = list(edges)

    def complete(self, prompt: str, table: Table) -> str:
        key = frozenset(table.schema.names)
        if key not in self._knowledge:
            raise GraphConstructionError(
                f"no knowledge registered for schema {sorted(key)}; "
                "register edges or use StatisticalProvider/HybridProvider"
            )
        edges = self._knowledge[key]
        return json.dumps({"relationships": [{"feature1": a, "feature2": b} for a, b in edges]})


class StatisticalProvider:
    """Computes relationships from the sampled rows (no prior knowledge)."""

    def __init__(self, inference: StatisticalRelationshipInference | None = None) -> None:
        self.inference = inference or StatisticalRelationshipInference()

    def complete(self, prompt: str, table: Table) -> str:
        graph = self.inference.infer(table)
        return json.dumps({"relationships": [{"feature1": a, "feature2": b} for a, b in graph.edges]})


class HybridProvider:
    """Union of knowledge-base and statistical edges (the LLM-like default)."""

    def __init__(
        self,
        knowledge: KnowledgeBaseProvider,
        inference: StatisticalRelationshipInference | None = None,
    ) -> None:
        self.knowledge = knowledge
        self.statistical = StatisticalProvider(inference)

    def complete(self, prompt: str, table: Table) -> str:
        edges: set[tuple[str, str]] = set()
        try:
            known = parse_relationships_json(self.knowledge.complete(prompt, table), table.schema.names)
            edges.update((min(a, b), max(a, b)) for a, b in known)
        except GraphConstructionError:
            pass  # no curated knowledge for this schema — fall back to statistics
        stat = parse_relationships_json(self.statistical.complete(prompt, table), table.schema.names)
        edges.update((min(a, b), max(a, b)) for a, b in stat)
        return json.dumps({"relationships": [{"feature1": a, "feature2": b} for a, b in sorted(edges)]})


class FeatureGraphBuilder:
    """End-to-end §3.1.1: sample rows, build prompt, query provider, parse.

    >>> builder = FeatureGraphBuilder(StatisticalProvider())
    >>> graph = builder.build(clean_table)   # doctest: +SKIP
    """

    def __init__(
        self,
        provider: RelationshipProvider,
        sample_size: int = 100,
        seed: int = 0,
    ) -> None:
        self.provider = provider
        self.sample_size = sample_size
        self.seed = seed

    def build(self, table: Table) -> FeatureGraph:
        if table.n_rows == 0:
            raise GraphConstructionError("cannot build a feature graph from an empty table")
        sample = table.sample(min(self.sample_size, table.n_rows), rng=self.seed)
        samples_as_dicts = [sample.row(i) for i in range(sample.n_rows)]
        prompt = build_prompt(table.schema.names, table.schema.descriptions, samples_as_dicts)
        reply = self.provider.complete(prompt, table)
        edges = parse_relationships_json(reply, table.schema.names)
        graph = FeatureGraph(table.schema.names, edges)
        return graph.with_isolated_connected()
