"""Statistical feature-relationship inference.

One of the two offline substitutes for the paper's ChatGPT-4 call
(DESIGN.md §1): association between every column pair is scored with a
measure appropriate to the pair's types, and pairs scoring at or above a
threshold become feature-graph edges.

* numeric ↔ numeric — |Spearman rank correlation| (captures monotone,
  not just linear, dependence);
* numeric ↔ categorical — correlation ratio η (between-group variance
  share);
* categorical ↔ categorical — bias-corrected Cramér's V.

All three live on [0, 1], so one threshold applies uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.data.schema import TableSchema
from repro.data.table import Table
from repro.graph.feature_graph import FeatureGraph

__all__ = ["AssociationScore", "StatisticalRelationshipInference", "cramers_v", "correlation_ratio"]


def cramers_v(a: np.ndarray, b: np.ndarray) -> float:
    """Bias-corrected Cramér's V between two categorical arrays."""
    mask = np.array([x is not None and y is not None for x, y in zip(a, b)])
    a, b = a[mask], b[mask]
    if len(a) < 2:
        return 0.0
    a_codes, a_levels = _codes(a)
    b_codes, b_levels = _codes(b)
    r, k = len(a_levels), len(b_levels)
    if r < 2 or k < 2:
        return 0.0
    contingency = np.zeros((r, k))
    np.add.at(contingency, (a_codes, b_codes), 1.0)
    chi2 = stats.chi2_contingency(contingency, correction=False)[0]
    n = contingency.sum()
    phi2 = chi2 / n
    # Bergsma–Wicher bias correction.
    phi2_corrected = max(0.0, phi2 - (k - 1) * (r - 1) / (n - 1))
    r_corrected = r - (r - 1) ** 2 / (n - 1)
    k_corrected = k - (k - 1) ** 2 / (n - 1)
    denominator = min(r_corrected - 1, k_corrected - 1)
    if denominator <= 0:
        return 0.0
    return float(np.sqrt(phi2_corrected / denominator))


def correlation_ratio(categories: np.ndarray, values: np.ndarray) -> float:
    """Correlation ratio η: share of numeric variance explained by category."""
    mask = np.array([c is not None for c in categories]) & np.isfinite(values)
    categories, values = categories[mask], values[mask]
    if len(values) < 2:
        return 0.0
    total_var = values.var()
    if total_var == 0.0:
        return 0.0
    codes, levels = _codes(categories)
    if len(levels) < 2:
        return 0.0
    grand_mean = values.mean()
    between = 0.0
    for level in range(len(levels)):
        group = values[codes == level]
        if group.size:
            between += group.size * (group.mean() - grand_mean) ** 2
    return float(np.sqrt(between / (len(values) * total_var)))


def _codes(values: np.ndarray) -> tuple[np.ndarray, list]:
    levels = sorted({str(v) for v in values})
    code_of = {v: i for i, v in enumerate(levels)}
    return np.array([code_of[str(v)] for v in values]), levels


@dataclass(frozen=True)
class AssociationScore:
    """Scored column pair, sortable by strength."""

    feature_a: str
    feature_b: str
    score: float
    measure: str


class StatisticalRelationshipInference:
    """Score all column pairs and emit edges above a threshold.

    Parameters
    ----------
    threshold:
        Minimum association score for an edge (default 0.25 — permissive
        enough to keep genuinely related columns, strict enough to avoid a
        near-complete graph).
    max_degree:
        Optional per-node cap; keeps hub nodes from connecting to
        everything when many columns co-vary. Strongest edges win.
    sample_limit:
        Pairwise statistics are computed on at most this many rows
        (uniform subsample) for speed; None disables.
    """

    def __init__(
        self,
        threshold: float = 0.25,
        max_degree: int | None = None,
        sample_limit: int | None = 5000,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.threshold = threshold
        self.max_degree = max_degree
        self.sample_limit = sample_limit
        self.seed = seed

    def score_pairs(self, table: Table) -> list[AssociationScore]:
        """Association scores for every unordered column pair."""
        if self.sample_limit is not None and table.n_rows > self.sample_limit:
            table = table.sample(self.sample_limit, rng=self.seed)
        schema = table.schema
        names = schema.names
        scores: list[AssociationScore] = []
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                score, measure = self._score(table, schema, a, b)
                scores.append(AssociationScore(a, b, score, measure))
        return scores

    def infer(self, table: Table) -> FeatureGraph:
        """Build the feature graph from scored pairs."""
        scores = self.score_pairs(table)
        selected = [s for s in scores if s.score >= self.threshold]
        if self.max_degree is not None:
            selected = self._cap_degree(selected)
        graph = FeatureGraph(table.schema.names, [(s.feature_a, s.feature_b) for s in selected])
        return graph.with_isolated_connected()

    # -- internals ---------------------------------------------------------
    def _score(self, table: Table, schema: TableSchema, a: str, b: str) -> tuple[float, str]:
        spec_a, spec_b = schema[a], schema[b]
        col_a, col_b = table.column(a), table.column(b)
        if spec_a.is_numeric and spec_b.is_numeric:
            mask = np.isfinite(col_a) & np.isfinite(col_b)
            if mask.sum() < 3:
                return 0.0, "spearman"
            a_vals, b_vals = col_a[mask], col_b[mask]
            # Constant columns (ptp == 0 is robust to float noise) carry no
            # rank signal; scipy would warn and return NaN.
            if np.ptp(a_vals) == 0 or np.ptp(b_vals) == 0:
                return 0.0, "spearman"
            rho = stats.spearmanr(a_vals, b_vals).statistic
            return (0.0 if np.isnan(rho) else abs(float(rho))), "spearman"
        if spec_a.is_categorical and spec_b.is_categorical:
            return cramers_v(col_a, col_b), "cramers_v"
        if spec_a.is_categorical:
            return correlation_ratio(col_a, col_b), "correlation_ratio"
        return correlation_ratio(col_b, col_a), "correlation_ratio"

    def _cap_degree(self, selected: list[AssociationScore]) -> list[AssociationScore]:
        degree: dict[str, int] = {}
        kept: list[AssociationScore] = []
        for score in sorted(selected, key=lambda s: -s.score):
            if (
                degree.get(score.feature_a, 0) < self.max_degree
                and degree.get(score.feature_b, 0) < self.max_degree
            ):
                kept.append(score)
                degree[score.feature_a] = degree.get(score.feature_a, 0) + 1
                degree[score.feature_b] = degree.get(score.feature_b, 0) + 1
        return kept
