"""Feature-graph construction (paper §3.1.1).

Builds the knowledge-based feature graph G = (V, E) over table columns,
either from pairwise association statistics or through the paper's
LLM-prompt protocol with offline providers.
"""

from repro.graph.feature_graph import FeatureGraph
from repro.graph.inference import (
    AssociationScore,
    StatisticalRelationshipInference,
    correlation_ratio,
    cramers_v,
)
from repro.graph.llm import (
    FeatureGraphBuilder,
    HybridProvider,
    KnowledgeBaseProvider,
    RelationshipProvider,
    StatisticalProvider,
    build_prompt,
    parse_relationships_json,
)

__all__ = [
    "FeatureGraph",
    "AssociationScore",
    "StatisticalRelationshipInference",
    "correlation_ratio",
    "cramers_v",
    "FeatureGraphBuilder",
    "HybridProvider",
    "KnowledgeBaseProvider",
    "RelationshipProvider",
    "StatisticalProvider",
    "build_prompt",
    "parse_relationships_json",
]
