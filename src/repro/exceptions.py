"""Exception hierarchy for the :mod:`repro` package.

Every error raised by library code derives from :class:`ReproError`, so
callers can catch one base class at API boundaries while still being able
to discriminate failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class SchemaError(ReproError):
    """A table does not conform to the expected :class:`TableSchema`."""


class NotFittedError(ReproError):
    """A stateful component was used before ``fit`` was called."""


class GraphConstructionError(ReproError):
    """The feature graph could not be constructed or validated."""


class TrainingError(ReproError):
    """Model training failed (diverged, empty data, bad configuration)."""


class ValidationError(ReproError):
    """Data-quality validation could not be performed."""


class RepairError(ReproError):
    """Repair-suggestion generation failed."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied."""


class RuleConfigError(ConfigurationError):
    """A declarative rule set is malformed or incompatible with a pipeline.

    Raised while parsing rule JSON (unknown predicate, bad severity,
    duplicate id) or while compiling a :class:`~repro.rules.RuleSet`
    against a preprocessor (unknown column, kind mismatch). Distinct
    from :class:`ConfigurationError` so transports can map it to
    HTTP 422 (unprocessable configuration) rather than 400, and so
    clients never retry it as transient."""


class SerializationError(ReproError):
    """Model or state (de)serialization failed."""


class KernelExportError(ReproError):
    """A module could not be compiled into a pure-NumPy inference kernel."""


class ProtocolError(SerializationError):
    """A wire payload failed the ``schema_version``/``kind`` gate or is malformed."""


class FrameError(ProtocolError):
    """A binary columnar frame is malformed, truncated, or inconsistent."""


class FrameSizeError(FrameError):
    """A frame declares a size beyond the caller's permitted bounds.

    Distinct from :class:`FrameError` so transports can map it to
    HTTP 413 (too large) rather than 400 (malformed)."""


class TransientServiceError(ReproError):
    """A server-side interruption (e.g. a pipeline re-registered mid-request)
    hit an otherwise well-formed request; retrying is expected to succeed."""


class AdmissionError(ReproError):
    """The request scheduler's bounded queue refused a request.

    Backpressure, not failure: the pipeline's queue is at its configured
    depth and accepting more work would only grow latency unboundedly.
    Transports map this to HTTP 429 with a ``Retry-After`` header built
    from :attr:`retry_after` (seconds); retrying after that delay is
    expected to succeed once the queue drains."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class GatewayError(ReproError):
    """An HTTP serving request failed (client-side view of a gateway error).

    ``status`` carries the HTTP status code when the failure came from a
    gateway response (``None`` for client-side failures), letting
    callers distinguish negotiation refusals (415) from genuine errors.

    ``retry_after`` carries the parsed ``Retry-After`` header (seconds)
    when the gateway sent one — populated on 429 admission rejections so
    the client's bounded-backoff retry can honor the server's hint.
    """

    def __init__(
        self, message: str, status: int | None = None, retry_after: float | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after
