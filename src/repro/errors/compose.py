"""Composite injectors: run several error generators over one table."""

from __future__ import annotations

import numpy as np

from repro.data.table import Table
from repro.errors.base import ErrorInjector, InjectionReport
from repro.utils.rng import derive_rng, ensure_rng

__all__ = ["CompositeInjector"]


class CompositeInjector(ErrorInjector):
    """Apply child injectors in sequence, merging their reports.

    Later injectors see the output of earlier ones (as in real pipelines
    where, e.g., a typo can land on a row that already lost a value).
    Each child draws from an independent derived RNG stream, so adding a
    child never changes the corruption produced by the others.
    """

    description = "composite"

    def __init__(self, injectors: list[ErrorInjector]) -> None:
        if not injectors:
            raise ValueError("CompositeInjector requires at least one child")
        self.injectors = list(injectors)

    def inject(self, table: Table, rng: int | np.random.Generator | None = None) -> tuple[Table, InjectionReport]:
        generator = ensure_rng(rng)
        report = InjectionReport.empty(table, "")
        current = table
        for i, injector in enumerate(self.injectors):
            child_rng = derive_rng(generator, "composite", i, injector.description)
            current, child_report = injector.inject(current, child_rng)
            report = report.merge(child_report)
        return current, report
