"""Error injection: ordinary errors, hidden conflicts, composition."""

from repro.errors.base import ErrorInjector, InjectionReport, select_rows
from repro.errors.qwerty import QWERTY_NEIGHBORS, qwerty_typo
from repro.errors.ordinary import (
    MissingValueInjector,
    NumericAnomalyInjector,
    StringTypoInjector,
)
from repro.errors.hidden import (
    CreditEmploymentBeforeBirthInjector,
    CreditIncomeEducationConflictInjector,
    HotelGroupConflictInjector,
    RowRuleConflictInjector,
)
from repro.errors.compose import CompositeInjector

__all__ = [
    "ErrorInjector",
    "InjectionReport",
    "select_rows",
    "QWERTY_NEIGHBORS",
    "qwerty_typo",
    "MissingValueInjector",
    "NumericAnomalyInjector",
    "StringTypoInjector",
    "CreditEmploymentBeforeBirthInjector",
    "CreditIncomeEducationConflictInjector",
    "HotelGroupConflictInjector",
    "RowRuleConflictInjector",
    "CompositeInjector",
]
