"""Hidden errors: logical and temporal conflicts between attributes (§4.1.2).

Each injected row stays *individually* plausible per column — every value
remains inside its column's clean range — but the combination is
impossible. Rule-based validators that check columns in isolation cannot
see these; the paper's Table 1 "Conflicts" rows probe exactly this.

Concrete injectors reproduce the paper's three scenarios:

* :class:`CreditEmploymentBeforeBirthInjector` — ``DAYS_EMPLOYED`` magnitude
  exceeds ``DAYS_BIRTH`` (employment precedes birth);
* :class:`CreditIncomeEducationConflictInjector` — high education and an
  advanced occupation paired with an implausibly low income;
* :class:`HotelGroupConflictInjector` — ``customer_type='Group'`` bookings
  with zero adults but babies present.

:class:`RowRuleConflictInjector` is the generic engine: give it a
row-transform and the columns it touches.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.data.table import Table
from repro.errors.base import ErrorInjector, InjectionReport, select_rows
from repro.utils.rng import ensure_rng

__all__ = [
    "RowRuleConflictInjector",
    "CreditEmploymentBeforeBirthInjector",
    "CreditIncomeEducationConflictInjector",
    "HotelGroupConflictInjector",
]


class RowRuleConflictInjector(ErrorInjector):
    """Apply a conflicting row-transform to a fraction of rows.

    Parameters
    ----------
    transform:
        ``transform(row_dict, rng) -> dict`` returning the new values for
        the columns it corrupts. Only keys in ``touched_columns`` may be
        returned.
    touched_columns:
        Columns the transform may modify — these cells enter the
        ground-truth mask.
    eligible:
        Optional row predicate; rows failing it are never corrupted
        (e.g. only bookings that *have* babies can become conflicting).
    """

    description = "hidden conflict"

    def __init__(
        self,
        transform: Callable[[dict, np.random.Generator], dict],
        touched_columns: list[str],
        fraction: float = 0.2,
        eligible: Callable[[dict], bool] | None = None,
        description: str | None = None,
    ) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if not touched_columns:
            raise ValueError("touched_columns must not be empty")
        self.transform = transform
        self.touched_columns = list(touched_columns)
        self.fraction = fraction
        self.eligible = eligible
        if description:
            self.description = description

    def prepare(self, table: Table) -> None:
        """Hook for subclasses to precompute table-level statistics the
        transform needs (e.g. clean marginal extremes). Default: no-op."""

    def inject(self, table: Table, rng: int | np.random.Generator | None = None) -> tuple[Table, InjectionReport]:
        generator = ensure_rng(rng)
        for name in self.touched_columns:
            table.schema[name]  # validate early
        self.prepare(table)
        if self.eligible is not None:
            candidates = np.array(
                [i for i in range(table.n_rows) if self.eligible(table.row(i))], dtype=int
            )
        else:
            candidates = np.arange(table.n_rows)
        report = InjectionReport.empty(table, self.description)
        if candidates.size == 0:
            return table.copy(), report
        n_target = max(1, int(round(table.n_rows * self.fraction)))
        chosen = generator.choice(candidates, size=min(n_target, candidates.size), replace=False)

        columns = {name: table.column(name).copy() for name in self.touched_columns}
        for row in chosen:
            updates = self.transform(table.row(int(row)), generator)
            unknown = set(updates) - set(self.touched_columns)
            if unknown:
                raise ValueError(f"transform modified undeclared columns: {sorted(unknown)}")
            for name, value in updates.items():
                columns[name][row] = value
                report.cell_mask[row, table.schema.index_of(name)] = True
        dirty = table.copy()
        for name, values in columns.items():
            dirty = dirty.with_column(name, values)
        return dirty, report


class CreditEmploymentBeforeBirthInjector(RowRuleConflictInjector):
    """Conflicts-1 (Credit Card): employment longer than the lifetime.

    Both ``DAYS_BIRTH`` and ``DAYS_EMPLOYED`` are negative day counts
    ("days ago"). The corrupted ``DAYS_EMPLOYED`` magnitude exceeds the
    *victim's own lifetime* but stays below the dataset's clean
    ``DAYS_EMPLOYED`` maximum, so the marginal remains in range while the
    pair is impossible — invisible to column-local range constraints.
    Only sufficiently young applicants are eligible (their lifetime fits
    under the clean employment maximum).
    """

    def __init__(self, fraction: float = 0.2) -> None:
        self._max_employed_magnitude: float = float("inf")

        def transform(row: dict, rng: np.random.Generator) -> dict:
            lifetime = abs(row["DAYS_BIRTH"])
            ceiling = min(1.4 * lifetime, self._max_employed_magnitude)
            magnitude = rng.uniform(1.02 * lifetime, max(ceiling, 1.03 * lifetime))
            return {"DAYS_EMPLOYED": -round(magnitude)}

        def eligible(row: dict) -> bool:
            return abs(row["DAYS_BIRTH"]) * 1.02 < self._max_employed_magnitude

        super().__init__(
            transform,
            touched_columns=["DAYS_EMPLOYED"],
            fraction=fraction,
            eligible=eligible,
            description="credit conflict: employed before birth",
        )

    def prepare(self, table: Table) -> None:
        # Conservative ceiling: the 99th percentile of the observed
        # employment magnitudes. The table being corrupted is typically a
        # *held-out* slice; its absolute maximum can exceed the range a
        # validator learned from training data, which would let a plain
        # range rule catch what must stay a purely relational conflict.
        # q99 keeps every forced value well inside any training range
        # while still exceeding the lifetimes of young applicants.
        self._max_employed_magnitude = float(
            np.quantile(np.abs(table.column("DAYS_EMPLOYED")), 0.99)
        )


class CreditIncomeEducationConflictInjector(RowRuleConflictInjector):
    """Conflicts-2 (Credit Card): advanced degree + advanced occupation,
    yet an income far below what that combination ever earns.

    The forced income is drawn from the *bottom of the clean income
    range* (still a legal value for, say, students), so only the joint
    distribution betrays the error.
    """

    ADVANCED_EDUCATION = ("Higher education", "Academic degree")
    ADVANCED_OCCUPATION = ("Managers", "High skill tech staff", "IT staff")

    def __init__(self, fraction: float = 0.2, forced_income: tuple[float, float] = (15_000.0, 30_000.0)) -> None:
        low, high = forced_income

        def transform(row: dict, rng: np.random.Generator) -> dict:
            return {
                "NAME_EDUCATION_TYPE": str(rng.choice(self.ADVANCED_EDUCATION)),
                "OCCUPATION_TYPE": str(rng.choice(self.ADVANCED_OCCUPATION)),
                "AMT_INCOME_TOTAL": float(rng.uniform(low, high)),
            }

        super().__init__(
            transform,
            touched_columns=["NAME_EDUCATION_TYPE", "OCCUPATION_TYPE", "AMT_INCOME_TOTAL"],
            fraction=fraction,
            description="credit conflict: elite education/occupation with minimal income",
        )


class HotelGroupConflictInjector(RowRuleConflictInjector):
    """Hotel Booking hidden error: 'Group' bookings with zero adults and
    more than zero babies — babies cannot travel alone."""

    def __init__(self, fraction: float = 0.2) -> None:
        def transform(row: dict, rng: np.random.Generator) -> dict:
            return {
                "customer_type": "Group",
                "adults": 0.0,
                "babies": float(rng.integers(1, 3)),
            }

        super().__init__(
            transform,
            touched_columns=["customer_type", "adults", "babies"],
            fraction=fraction,
            description="hotel conflict: group booking of unaccompanied babies",
        )
