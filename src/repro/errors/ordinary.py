"""The paper's three ordinary error types (§4.1.2).

Each injector targets a configurable set of columns and corrupts a
fraction (default 20%, per the paper) of the values in each.
"""

from __future__ import annotations

import numpy as np

from repro.data.table import Table
from repro.errors.base import ErrorInjector, InjectionReport, select_rows
from repro.errors.qwerty import qwerty_typo
from repro.exceptions import SchemaError
from repro.utils.rng import derive_rng, ensure_rng

__all__ = ["MissingValueInjector", "NumericAnomalyInjector", "StringTypoInjector"]


class _ColumnTargetedInjector(ErrorInjector):
    """Shared plumbing: validate targets, loop columns, build the report."""

    def __init__(self, columns: list[str], fraction: float = 0.2) -> None:
        if not columns:
            raise ValueError("at least one target column required")
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.columns = list(columns)
        self.fraction = fraction

    def inject(self, table: Table, rng: int | np.random.Generator | None = None) -> tuple[Table, InjectionReport]:
        generator = ensure_rng(rng)
        self._validate_targets(table)
        dirty = table.copy()
        report = InjectionReport.empty(table, self.description)
        for name in self.columns:
            column_rng = derive_rng(generator, self.description, name)
            rows = select_rows(table.n_rows, self.fraction, column_rng)
            if rows.size == 0:
                continue
            corrupted = self._corrupt(dirty.column(name).copy(), rows, table, name, column_rng)
            dirty = dirty.with_column(name, corrupted)
            report.cell_mask[rows, table.schema.index_of(name)] = True
        return dirty, report

    def _validate_targets(self, table: Table) -> None:
        for name in self.columns:
            table.schema[name]  # raises SchemaError when unknown

    def _corrupt(
        self,
        values: np.ndarray,
        rows: np.ndarray,
        table: Table,
        name: str,
        rng: np.random.Generator,
    ) -> np.ndarray:
        raise NotImplementedError


class MissingValueInjector(_ColumnTargetedInjector):
    """Empty cells "due to collection or integration errors"."""

    description = "missing values"

    def _corrupt(self, values, rows, table, name, rng):
        if table.schema[name].is_numeric:
            values[rows] = np.nan
        else:
            for row in rows:
                values[row] = None
        return values


class NumericAnomalyInjector(_ColumnTargetedInjector):
    """Out-of-range values from "sensor malfunctions or scaling issues".

    Each corrupted cell gets one of two treatments, mirroring the two
    causes the paper names:

    * scaling issue — value multiplied by ``scale_factor`` (default 100);
    * sensor malfunction — value replaced by a draw far outside the
      column's observed range.
    """

    description = "numeric anomalies"

    def __init__(
        self,
        columns: list[str],
        fraction: float = 0.2,
        scale_factor: float = 100.0,
        out_of_range_sigma: float = 10.0,
    ) -> None:
        super().__init__(columns, fraction)
        self.scale_factor = scale_factor
        self.out_of_range_sigma = out_of_range_sigma

    def _validate_targets(self, table: Table) -> None:
        super()._validate_targets(table)
        non_numeric = [n for n in self.columns if not table.schema[n].is_numeric]
        if non_numeric:
            raise SchemaError(f"numeric anomalies require numeric columns, got {non_numeric}")

    def _corrupt(self, values, rows, table, name, rng):
        finite = values[np.isfinite(values)]
        center = float(finite.mean()) if finite.size else 0.0
        spread = float(finite.std()) if finite.size else 1.0
        spread = spread if spread > 0 else max(abs(center), 1.0)
        use_scaling = rng.random(rows.size) < 0.5
        scaled = values[rows] * self.scale_factor
        shifted = center + np.sign(rng.normal(size=rows.size)) * self.out_of_range_sigma * spread
        values[rows] = np.where(use_scaling, scaled, shifted)
        return values


class StringTypoInjector(_ColumnTargetedInjector):
    """Spelling errors via neighboring QWERTY keys."""

    description = "string typos"

    def _validate_targets(self, table: Table) -> None:
        super()._validate_targets(table)
        non_categorical = [n for n in self.columns if not table.schema[n].is_categorical]
        if non_categorical:
            raise SchemaError(f"string typos require categorical columns, got {non_categorical}")

    def _corrupt(self, values, rows, table, name, rng):
        for row in rows:
            if values[row] is not None:
                values[row] = qwerty_typo(values[row], rng)
        return values
