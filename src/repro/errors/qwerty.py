"""QWERTY-keyboard typo model (paper §4.1.2).

String typos are "simulated by randomly replacing letters with
neighboring keys on a qwerty keyboard".
"""

from __future__ import annotations

import numpy as np

__all__ = ["QWERTY_NEIGHBORS", "qwerty_typo"]

_ROWS = ["qwertyuiop", "asdfghjkl", "zxcvbnm"]


def _build_neighbors() -> dict[str, str]:
    neighbors: dict[str, set[str]] = {}
    for r, row in enumerate(_ROWS):
        for c, char in enumerate(row):
            adjacent = neighbors.setdefault(char, set())
            if c > 0:
                adjacent.add(row[c - 1])
            if c < len(row) - 1:
                adjacent.add(row[c + 1])
            for other_r in (r - 1, r + 1):
                if 0 <= other_r < len(_ROWS):
                    other_row = _ROWS[other_r]
                    for cc in (c - 1, c, c + 1):
                        if 0 <= cc < len(other_row):
                            adjacent.add(other_row[cc])
    return {char: "".join(sorted(adj)) for char, adj in neighbors.items()}


QWERTY_NEIGHBORS: dict[str, str] = _build_neighbors()


def qwerty_typo(text: str, rng: np.random.Generator) -> str:
    """Replace one random letter of ``text`` with a keyboard neighbor.

    Case is preserved. Strings without any mappable letter get a
    neighbor-key character appended instead, so the output always
    differs from the input.
    """
    candidates = [i for i, ch in enumerate(text) if ch.lower() in QWERTY_NEIGHBORS]
    if not candidates:
        return text + "q"
    position = int(rng.choice(candidates))
    original = text[position]
    neighbors = QWERTY_NEIGHBORS[original.lower()]
    replacement = neighbors[int(rng.integers(len(neighbors)))]
    if original.isupper():
        replacement = replacement.upper()
    return text[:position] + replacement + text[position + 1 :]
