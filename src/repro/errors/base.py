"""Error-injection framework.

Injectors corrupt a clean :class:`~repro.data.table.Table` and return the
dirty copy together with an :class:`InjectionReport` recording exactly
which cells were touched — the ground truth every detection experiment
scores against.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.data.table import Table
from repro.utils.rng import ensure_rng

__all__ = ["InjectionReport", "ErrorInjector", "select_rows"]


class InjectionReport:
    """Ground-truth record of injected errors.

    ``cell_mask`` is boolean ``(n_rows, n_columns)`` in schema order;
    ``row_mask`` marks rows with at least one corrupted cell.
    """

    def __init__(self, cell_mask: np.ndarray, description: str = "") -> None:
        cell_mask = np.asarray(cell_mask, dtype=bool)
        if cell_mask.ndim != 2:
            raise ValueError(f"cell mask must be 2-D, got shape {cell_mask.shape}")
        self.cell_mask = cell_mask
        self.description = description

    @property
    def row_mask(self) -> np.ndarray:
        return self.cell_mask.any(axis=1)

    @property
    def n_dirty_rows(self) -> int:
        return int(self.row_mask.sum())

    @property
    def n_dirty_cells(self) -> int:
        return int(self.cell_mask.sum())

    def error_rate(self) -> float:
        """Fraction of rows carrying at least one injected error."""
        if self.cell_mask.shape[0] == 0:
            return 0.0
        return float(self.row_mask.mean())

    def merge(self, other: "InjectionReport") -> "InjectionReport":
        if self.cell_mask.shape != other.cell_mask.shape:
            raise ValueError(
                f"cannot merge reports of shapes {self.cell_mask.shape} and {other.cell_mask.shape}"
            )
        description = "; ".join(d for d in (self.description, other.description) if d)
        return InjectionReport(self.cell_mask | other.cell_mask, description)

    @staticmethod
    def empty(table: Table, description: str = "") -> "InjectionReport":
        return InjectionReport(np.zeros((table.n_rows, table.n_columns), dtype=bool), description)

    def __repr__(self) -> str:
        return f"InjectionReport(rows={self.n_dirty_rows}, cells={self.n_dirty_cells}, {self.description!r})"


class ErrorInjector(abc.ABC):
    """Base class: corrupt a table, report the ground truth."""

    description: str = "error"

    @abc.abstractmethod
    def inject(self, table: Table, rng: int | np.random.Generator | None = None) -> tuple[Table, InjectionReport]:
        """Return ``(dirty_table, report)``; the input table is not mutated."""

    def __call__(self, table: Table, rng: int | np.random.Generator | None = None) -> tuple[Table, InjectionReport]:
        return self.inject(table, rng)


def select_rows(n_rows: int, fraction: float, rng: np.random.Generator) -> np.ndarray:
    """Choose ``round(fraction * n_rows)`` distinct row indices."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    count = max(1, int(round(n_rows * fraction))) if n_rows > 0 else 0
    if count == 0:
        return np.array([], dtype=int)
    return rng.choice(n_rows, size=min(count, n_rows), replace=False)
