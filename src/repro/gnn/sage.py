"""GraphSAGE layer (Hamilton, Ying & Leskovec, 2017) — extension encoder.

Mean-aggregator variant: ``h'_i = W_self·h_i + W_neigh·mean_{j∈N(i)} h_j``.
Not part of the paper's Table 2 ablation; provided as an additional
architecture (``graphsage`` / ``sage_gin``) for users extending the
encoder study.
"""

from __future__ import annotations

import numpy as np

from repro.gnn.context import GraphContext
from repro.nn import init
from repro.nn.kernels import buffer
from repro.nn.module import Module
from repro.nn.tensor import Parameter, Tensor
from repro.utils.rng import ensure_rng

__all__ = ["SAGEConv"]


class SAGEConv(Module):
    """GraphSAGE-mean over batched node features (B, N, d)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        generator = ensure_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight_self = Parameter(init.xavier_uniform((in_features, out_features), generator), name="weight_self")
        self.weight_neigh = Parameter(init.xavier_uniform((in_features, out_features), generator), name="weight_neigh")
        self.bias = Parameter(init.zeros((out_features,)), name="bias")
        self._mean_adjacency: np.ndarray | None = None
        self._mean_adjacency_src: int | None = None

    def _mean_adj(self, ctx: GraphContext) -> np.ndarray:
        # Row-normalize the (cached) adjacency: mean over neighbors.
        if self._mean_adjacency is None or self._mean_adjacency_src != id(ctx):
            degree = ctx.adjacency.sum(axis=1, keepdims=True)
            self._mean_adjacency = ctx.adjacency / np.maximum(degree, 1.0)
            self._mean_adjacency_src = id(ctx)
        return self._mean_adjacency

    def forward(self, x: Tensor, ctx: GraphContext) -> Tensor:
        if x.shape[-2] != ctx.n_nodes:
            raise ValueError(f"node axis {x.shape[-2]} != graph nodes {ctx.n_nodes}")
        neighbor_mean = Tensor(self._mean_adj(ctx)) @ x
        return x @ self.weight_self + neighbor_mean @ self.weight_neigh + self.bias

    def export_kernel(self, ctx: GraphContext):
        """Compile into a pure-NumPy forward: ``X W_s + (Ā X) W_n + b``."""
        mean_adjacency = self._mean_adj(ctx).copy()
        weight_self = self.weight_self.data.copy()
        weight_neigh = self.weight_neigh.data.copy()
        bias = self.bias.data.copy()
        keys = tuple((id(self), role) for role in ("self", "mean", "neigh"))

        def kernel(x: np.ndarray, ws=None) -> np.ndarray:
            out_shape = x.shape[:-1] + (weight_self.shape[1],)
            out = np.matmul(x, weight_self, out=buffer(ws, keys[0], out_shape))
            mean = np.matmul(mean_adjacency, x, out=buffer(ws, keys[1], x.shape))
            out += np.matmul(mean, weight_neigh, out=buffer(ws, keys[2], out_shape))
            out += bias
            return out

        return kernel

    def __repr__(self) -> str:
        return f"SAGEConv({self.in_features}, {self.out_features})"
