"""GNN layers and encoder assembly for feature graphs."""

from repro.gnn.context import GraphContext
from repro.gnn.gcn import GCNConv
from repro.gnn.gat import GATConv
from repro.gnn.gin import GINConv
from repro.gnn.graph2vec import Graph2VecEncoder, wl_subtree_signatures
from repro.gnn.sage import SAGEConv
from repro.gnn.encoder import (
    ENCODER_ARCHITECTURES,
    PAPER_ARCHITECTURES,
    GNNEncoder,
    build_encoder,
)

__all__ = [
    "GraphContext",
    "GCNConv",
    "GATConv",
    "GINConv",
    "Graph2VecEncoder",
    "wl_subtree_signatures",
    "SAGEConv",
    "ENCODER_ARCHITECTURES",
    "PAPER_ARCHITECTURES",
    "GNNEncoder",
    "build_encoder",
]
