"""GNN encoder assembly (paper §3.1.2 and the §4.4 ablation).

The paper's encoder alternates GAT and GIN layers (GAT-GIN-GAT-GIN).
:func:`build_encoder` also assembles the four ablation variants of
Table 2 so the comparison runs through one code path:

=============  ============================
architecture   layer sequence (4 layers)
=============  ============================
``gat_gin``    GAT, GIN, GAT, GIN  (paper)
``gcn``        GCN, GCN, GCN, GCN
``gcn_gat``    GCN, GAT, GCN, GAT
``gcn_gin``    GCN, GIN, GCN, GIN
``graph2vec``  fixed WL encoder (1 layer)
``graphsage``  SAGE ×4            (extension)
``sage_gin``   SAGE, GIN, ...     (extension)
=============  ============================
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError, KernelExportError
from repro.gnn.context import GraphContext
from repro.gnn.gat import GATConv
from repro.gnn.gcn import GCNConv
from repro.gnn.gin import GINConv
from repro.gnn.graph2vec import Graph2VecEncoder
from repro.gnn.sage import SAGEConv
from repro.graph.feature_graph import FeatureGraph
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.utils.rng import derive_rng, ensure_rng

__all__ = ["GNNEncoder", "build_encoder", "ENCODER_ARCHITECTURES"]

ENCODER_ARCHITECTURES = ("gat_gin", "gcn", "gcn_gat", "gcn_gin", "graph2vec", "graphsage", "sage_gin")

#: the five architectures the paper's Table 2 compares
PAPER_ARCHITECTURES = ("gat_gin", "gcn", "gcn_gat", "gcn_gin", "graph2vec")


def _np_relu(x: np.ndarray) -> np.ndarray:
    # In-place twin of Tensor.relu: max(x, 0) == x * (x > 0).
    return np.maximum(x, 0.0, out=x)


def _np_elu(x: np.ndarray, scratch: np.ndarray | None = None) -> np.ndarray:
    # In-place twin of Tensor.elu (alpha = 1): the branch select
    # where(x > 0, x, expm1(min(x, 0))) equals max(x, expm1(min(x, 0))).
    # ``scratch`` (same shape as x) avoids two large temporaries.
    if scratch is None:
        return np.maximum(x, np.expm1(np.minimum(x, 0.0)), out=x)
    np.minimum(x, 0.0, out=scratch)
    np.expm1(scratch, out=scratch)
    return np.maximum(x, scratch, out=x)


class GNNEncoder(Module):
    """A stack of graph layers with inter-layer activations.

    GAT layers are followed by ELU (as in the GAT paper), GCN and GIN by
    ReLU; the final layer's output is left linear (the decoders apply
    their own non-linearities).
    """

    def __init__(self, layers: list[Module], activations: list[str]) -> None:
        super().__init__()
        if len(layers) != len(activations):
            raise ConfigurationError("layers and activations must align")
        self._layers = layers
        self._activations = activations
        for i, layer in enumerate(layers):
            self.register_module(f"conv{i}", layer)

    @property
    def n_layers(self) -> int:
        return len(self._layers)

    def forward(self, x: Tensor, ctx: GraphContext) -> Tensor:
        last = len(self._layers) - 1
        for i, (layer, activation) in enumerate(zip(self._layers, self._activations)):
            x = layer(x, ctx)
            if i < last:
                x = x.elu() if activation == "elu" else x.relu()
        return x

    def can_fold_embeddings(self, embeddings: np.ndarray) -> bool:
        """Whether :meth:`export_kernel` can fold constant per-feature
        embeddings into the first layer's affine (the layer must expose
        ``export_folded_kernel`` and take ``1 + embed_dim`` inputs)."""
        first = self._layers[0]
        return (
            hasattr(first, "export_folded_kernel")
            and getattr(first, "in_features", None) == 1 + int(embeddings.shape[-1])
        )

    def export_kernel(self, ctx: GraphContext, fold_embeddings: np.ndarray | None = None) -> Callable:
        """Compile the whole stack into one pure-NumPy forward function.

        Each layer contributes its own compiled kernel (weights are
        snapshotted at export time); the inter-layer ELU/ReLU pattern of
        :meth:`forward` is reproduced exactly. Activations run in place
        on the layer kernels' scratch buffers.

        With ``fold_embeddings`` (the constant ``(N, e)`` per-feature
        identity embeddings), the first layer is compiled with the
        embeddings folded into its affine — the returned kernel then
        takes the raw ``(B, N)`` value chunk instead of the
        ``(B, N, 1+e)`` node-input slab. Callers must check
        :meth:`can_fold_embeddings` first.
        """
        kernels: list[Callable] = []
        for i, layer in enumerate(self._layers):
            if i == 0 and fold_embeddings is not None:
                if not self.can_fold_embeddings(fold_embeddings):
                    raise KernelExportError(
                        f"layer {layer!r} cannot fold embeddings of shape "
                        f"{np.asarray(fold_embeddings).shape}"
                    )
                kernels.append(layer.export_folded_kernel(ctx, fold_embeddings))
                continue
            export = getattr(layer, "export_kernel", None)
            if export is None:
                raise KernelExportError(
                    f"layer {layer!r} does not implement export_kernel(); "
                    "cannot compile this encoder into an inference kernel"
                )
            kernels.append(export(ctx))
        activations = list(self._activations)
        last = len(kernels) - 1

        scratch_key = (id(self), "activation-scratch")

        def kernel(x: np.ndarray, ws=None) -> np.ndarray:
            for i, (layer_kernel, activation) in enumerate(zip(kernels, activations)):
                x = layer_kernel(x, ws)
                if i < last:
                    if activation == "elu":
                        # Only ELU needs scratch (for its expm1 branch).
                        scratch = None if ws is None else ws.get(scratch_key, x.shape)
                        x = _np_elu(x, scratch)
                    else:
                        x = _np_relu(x)
            return x

        return kernel

    def attention_maps(self) -> list[np.ndarray]:
        """Most recent attention tensors from any GAT layers (may be empty)."""
        return [
            layer.last_attention
            for layer in self._layers
            if isinstance(layer, GATConv) and layer.last_attention is not None
        ]


def build_encoder(
    architecture: str,
    in_features: int,
    hidden_features: int,
    graph: FeatureGraph,
    n_layers: int = 4,
    gat_heads: int = 1,
    rng: int | np.random.Generator | None = None,
) -> GNNEncoder:
    """Construct an encoder for one of :data:`ENCODER_ARCHITECTURES`."""
    if architecture not in ENCODER_ARCHITECTURES:
        raise ConfigurationError(
            f"unknown encoder architecture {architecture!r}; choose from {ENCODER_ARCHITECTURES}"
        )
    if n_layers < 1:
        raise ConfigurationError(f"n_layers must be >= 1, got {n_layers}")
    generator = ensure_rng(rng)

    if architecture == "graph2vec":
        layer = Graph2VecEncoder(in_features, hidden_features, graph, rng=derive_rng(generator, "g2v"))
        return GNNEncoder([layer], ["relu"])

    pattern = {
        "gat_gin": ["gat", "gin"],
        "gcn": ["gcn"],
        "gcn_gat": ["gcn", "gat"],
        "gcn_gin": ["gcn", "gin"],
        "graphsage": ["sage"],
        "sage_gin": ["sage", "gin"],
    }[architecture]

    layers: list[Module] = []
    activations: list[str] = []
    dim_in = in_features
    for i in range(n_layers):
        kind = pattern[i % len(pattern)]
        layer_rng = derive_rng(generator, "layer", i, kind)
        if kind == "gat":
            layers.append(GATConv(dim_in, hidden_features, heads=gat_heads, rng=layer_rng))
            activations.append("elu")
        elif kind == "gin":
            layers.append(GINConv(dim_in, hidden_features, rng=layer_rng))
            activations.append("relu")
        elif kind == "sage":
            layers.append(SAGEConv(dim_in, hidden_features, rng=layer_rng))
            activations.append("relu")
        else:
            layers.append(GCNConv(dim_in, hidden_features, rng=layer_rng))
            activations.append("relu")
        dim_in = hidden_features
    return GNNEncoder(layers, activations)
