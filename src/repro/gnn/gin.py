"""Graph Isomorphism Network layer (Xu et al., 2019).

``h'_i = MLP((1 + ε) h_i + Σ_{j∈N(i)} h_j)`` with a learnable ε and a
two-layer MLP, giving injective (multiset-distinguishing) aggregation.
"""

from __future__ import annotations

import numpy as np

from repro.gnn.context import GraphContext
from repro.nn.kernels import buffer
from repro.nn.layers import MLP
from repro.nn.module import Module
from repro.nn.tensor import Parameter, Tensor
from repro.utils.rng import ensure_rng

__all__ = ["GINConv"]


class GINConv(Module):
    """One GIN aggregation layer over batched node features (B, N, d)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        hidden_features: int | None = None,
        train_eps: bool = True,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        generator = ensure_rng(rng)
        hidden_features = hidden_features or out_features
        self.in_features = in_features
        self.out_features = out_features
        self.train_eps = train_eps
        self.eps = Parameter(np.zeros(()), name="eps")
        if not train_eps:
            self.eps.requires_grad = False
        self.mlp = MLP([in_features, hidden_features, out_features], activation="relu", rng=generator)

    def forward(self, x: Tensor, ctx: GraphContext) -> Tensor:
        if x.shape[-2] != ctx.n_nodes:
            raise ValueError(f"node axis {x.shape[-2]} != graph nodes {ctx.n_nodes}")
        neighbor_sum = Tensor(ctx.adjacency) @ x
        combined = x * (self.eps + 1.0) + neighbor_sum
        return self.mlp(combined)

    def export_kernel(self, ctx: GraphContext):
        """Compile into a pure-NumPy forward: ``MLP((1+ε)x + A x)``.

        The aggregation is folded into a single propagation matrix
        ``M = (1+ε)I + A`` (the adjacency carries no self-loops), so one
        batched matmul replaces the scale-and-add chain.
        """
        propagation = ctx.adjacency + float(self.eps.data + 1.0) * np.eye(ctx.n_nodes)
        mlp = self.mlp.export_kernel()
        key = (id(self), "combined")

        def kernel(x: np.ndarray, ws=None) -> np.ndarray:
            combined = np.matmul(propagation, x, out=buffer(ws, key, x.shape))
            return mlp(combined, ws)

        return kernel

    def __repr__(self) -> str:
        return f"GINConv({self.in_features}, {self.out_features}, train_eps={self.train_eps})"
