"""Graph2Vec-style fixed structural encoder (Narayanan et al., 2017).

Graph2Vec learns whole-graph embeddings from Weisfeiler–Lehman (WL)
subtree features. As a DQuaG *encoder* baseline (Table 2) we use the
per-node WL subtree signature of the feature graph, combine it with the
node's cell value, and project through a fixed random matrix. The
encoder has no trainable parameters — the dual decoders still learn on
top — which is exactly why it trails learned encoders in the ablation.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.gnn.context import GraphContext
from repro.graph.feature_graph import FeatureGraph
from repro.nn.kernels import buffer
from repro.nn.module import Module
from repro.nn.tensor import Parameter, Tensor
from repro.utils.rng import ensure_rng

__all__ = ["Graph2VecEncoder", "wl_subtree_signatures"]


def _stable_hash(label: str, buckets: int) -> int:
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % buckets


def wl_subtree_signatures(graph: FeatureGraph, iterations: int = 3, buckets: int = 32) -> np.ndarray:
    """Per-node WL subtree histogram, shape (n_nodes, buckets).

    Node labels start as degrees; each WL iteration relabels a node with
    the hash of its own label plus the sorted multiset of neighbor labels.
    The signature counts the labels a node carried across iterations —
    the classic WL subtree feature restricted to one node.
    """
    labels = {name: str(graph.degree(name)) for name in graph.features}
    signature = np.zeros((graph.n_nodes, buckets), dtype=np.float64)
    index = {name: i for i, name in enumerate(graph.features)}
    for name, label in labels.items():
        signature[index[name], _stable_hash(label, buckets)] += 1.0
    for _ in range(iterations):
        new_labels: dict[str, str] = {}
        for name in graph.features:
            neighborhood = sorted(labels[n] for n in graph.neighbors(name))
            new_labels[name] = f"{labels[name]}|{','.join(neighborhood)}"
        labels = {name: str(_stable_hash(label, 10**9)) for name, label in new_labels.items()}
        for name, label in labels.items():
            signature[index[name], _stable_hash(label, buckets)] += 1.0
    return signature


class Graph2VecEncoder(Module):
    """Fixed (non-learned) node encoder: [value ⊕ WL signature] → hidden.

    The projection matrix is seeded and frozen; gradients do not flow
    into the encoder (there is nothing to train). It is registered as a
    non-trainable :class:`Parameter` so that model (de)serialization
    restores the exact projection — a reloaded pipeline must reproduce
    the reconstruction errors its threshold was calibrated on.
    """

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        graph: FeatureGraph,
        wl_iterations: int = 3,
        wl_buckets: int = 32,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        generator = ensure_rng(rng if rng is not None else 0)
        self.in_features = in_features
        self.hidden_features = hidden_features
        signature = wl_subtree_signatures(graph, iterations=wl_iterations, buckets=wl_buckets)
        # Normalize signatures so value and structure are on similar scales.
        norms = np.linalg.norm(signature, axis=1, keepdims=True)
        self._signature = signature / np.maximum(norms, 1e-12)
        self.projection = Parameter(
            generator.normal(
                0.0,
                1.0 / np.sqrt(in_features + wl_buckets),
                size=(in_features + wl_buckets, hidden_features),
            ),
            name="projection",
        )
        self.projection.requires_grad = False

    def forward(self, x: Tensor, ctx: GraphContext) -> Tensor:
        batch = x.shape[0]
        n_nodes = x.shape[1]
        if n_nodes != self._signature.shape[0]:
            raise ValueError(f"node axis {n_nodes} != signature nodes {self._signature.shape[0]}")
        structure = np.broadcast_to(self._signature, (batch, n_nodes, self._signature.shape[1]))
        combined = np.concatenate([x.numpy(), structure], axis=-1)
        return Tensor(np.tanh(combined @ self.projection.data))

    def export_kernel(self, ctx: GraphContext):
        """Compile into a pure-NumPy forward.

        The WL signatures are constant per node, so their share of the
        projection — ``signature @ projection[values:]`` — is folded
        into a per-node constant at export time; only the value part
        multiplies per batch.
        """
        values_dim = self.in_features
        value_projection = self.projection.data[:values_dim].copy()
        structure_term = self._signature @ self.projection.data[values_dim:]  # (N, hidden)
        key = (id(self), "out")

        def kernel(x: np.ndarray, ws=None) -> np.ndarray:
            out_shape = x.shape[:-1] + (value_projection.shape[1],)
            out = np.matmul(x, value_projection, out=buffer(ws, key, out_shape))
            out += structure_term
            return np.tanh(out, out=out)

        return kernel

    def export_folded_kernel(self, ctx: GraphContext, embeddings: np.ndarray):
        """Compile with the constant identity embeddings folded away.

        Both constants — the WL structure term and the embeddings' share
        of the projection — collapse into one per-node vector; only the
        raw ``(B, N)`` cell values multiply per batch.
        """
        embeddings = np.asarray(embeddings, dtype=np.float64)
        value_row = self.projection.data[0].copy()  # (hidden,)
        constant = embeddings @ self.projection.data[1 : self.in_features]
        constant = constant + self._signature @ self.projection.data[self.in_features :]
        key = (id(self), "out")

        def kernel(values: np.ndarray, ws=None) -> np.ndarray:
            out_shape = values.shape + (value_row.shape[0],)
            out = buffer(ws, key, out_shape)
            np.multiply(values[..., None], value_row, out=out)
            out += constant
            return np.tanh(out, out=out)

        return kernel

    def __repr__(self) -> str:
        return f"Graph2VecEncoder({self.in_features}, {self.hidden_features})"
