"""Graph Convolutional Network layer (Kipf & Welling, 2017).

Dense batched formulation: ``out = Â X W + b`` with
``Â = D^{-1/2}(A+I)D^{-1/2}`` precomputed in :class:`GraphContext`.
"""

from __future__ import annotations

import numpy as np

from repro.gnn.context import GraphContext
from repro.nn import init
from repro.nn.kernels import buffer
from repro.nn.module import Module
from repro.nn.tensor import Parameter, Tensor
from repro.utils.rng import ensure_rng

__all__ = ["GCNConv"]


class GCNConv(Module):
    """One GCN propagation layer over batched node features (B, N, d)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        generator = ensure_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), generator), name="weight")
        self.bias = Parameter(init.zeros((out_features,)), name="bias")

    def forward(self, x: Tensor, ctx: GraphContext) -> Tensor:
        if x.shape[-2] != ctx.n_nodes:
            raise ValueError(f"node axis {x.shape[-2]} != graph nodes {ctx.n_nodes}")
        support = x @ self.weight
        propagated = Tensor(ctx.norm_adjacency) @ support
        return propagated + self.bias

    def export_kernel(self, ctx: GraphContext):
        """Compile into a pure-NumPy forward: ``Â (X W) + b``."""
        weight = self.weight.data.copy()
        bias = self.bias.data.copy()
        norm_adjacency = np.ascontiguousarray(ctx.norm_adjacency)
        support_key = (id(self), "support")
        out_key = (id(self), "out")

        def kernel(x: np.ndarray, ws=None) -> np.ndarray:
            out_shape = x.shape[:-1] + (weight.shape[1],)
            support = np.matmul(x, weight, out=buffer(ws, support_key, out_shape))
            out = np.matmul(norm_adjacency, support, out=buffer(ws, out_key, out_shape))
            out += bias
            return out

        return kernel

    def export_folded_kernel(self, ctx: GraphContext, embeddings: np.ndarray):
        """Compile with the constant identity embeddings folded away.

        ``X W`` over the ``[x_f ⊕ E_f]`` node input splits into
        ``values·W[0] + (E W[1:])`` with the second term
        batch-independent; the kernel takes the raw ``(B, N)`` value
        chunk and never materializes the node-input slab.
        """
        weight = self.weight.data.copy()
        bias = self.bias.data.copy()
        embeddings = np.asarray(embeddings, dtype=np.float64)
        value_weight = weight[0].copy()  # (out,)
        constant = embeddings @ weight[1:]  # (N, out), batch-independent
        norm_adjacency = np.ascontiguousarray(ctx.norm_adjacency)
        support_key = (id(self), "support")
        out_key = (id(self), "out")

        def kernel(values: np.ndarray, ws=None) -> np.ndarray:
            out_shape = values.shape + (weight.shape[1],)
            support = buffer(ws, support_key, out_shape)
            np.multiply(values[..., None], value_weight, out=support)
            support += constant
            out = np.matmul(norm_adjacency, support, out=buffer(ws, out_key, out_shape))
            out += bias
            return out

        return kernel

    def __repr__(self) -> str:
        return f"GCNConv({self.in_features}, {self.out_features})"
