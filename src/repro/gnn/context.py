"""Precomputed matrix views of a feature graph shared by all GNN layers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.feature_graph import FeatureGraph

__all__ = ["GraphContext"]


@dataclass(frozen=True)
class GraphContext:
    """Dense adjacency views of one feature graph.

    Attributes
    ----------
    adjacency:
        (n, n) 0/1 matrix, no self-loops — GIN neighbor aggregation.
    norm_adjacency:
        D^{-1/2}(A+I)D^{-1/2} — GCN propagation.
    attention_mask:
        boolean (n, n) with self-loops — allowed GAT attention pairs.
    """

    adjacency: np.ndarray
    norm_adjacency: np.ndarray
    attention_mask: np.ndarray

    @property
    def n_nodes(self) -> int:
        return self.adjacency.shape[0]

    @staticmethod
    def from_feature_graph(graph: FeatureGraph) -> "GraphContext":
        return GraphContext(
            adjacency=graph.adjacency(self_loops=False),
            norm_adjacency=graph.normalized_adjacency(),
            attention_mask=graph.attention_mask(),
        )
