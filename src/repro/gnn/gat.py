"""Graph Attention Network layer (Veličković et al., 2018).

Dense batched multi-head attention restricted to feature-graph edges
(plus self-loops). For node counts of tabular feature graphs (≲ 25) the
(B, N, N) attention matrices are tiny, so the dense form is both exact
and fast.

Per head: ``e_ij = LeakyReLU(a_src · Wh_i + a_dst · Wh_j)``, masked
softmax over ``j``, then ``h'_i = Σ_j α_ij Wh_j``. Heads are concatenated.
"""

from __future__ import annotations

import numpy as np

from repro.gnn.context import GraphContext
from repro.nn import functional as F
from repro.nn import init
from repro.nn.kernels import buffer
from repro.nn.module import Module
from repro.nn.tensor import Parameter, Tensor
from repro.utils.rng import ensure_rng

__all__ = ["GATConv"]


class GATConv(Module):
    """Multi-head graph attention over batched node features (B, N, d)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        heads: int = 1,
        negative_slope: float = 0.2,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if out_features % heads != 0:
            raise ValueError(f"out_features {out_features} not divisible by heads {heads}")
        generator = ensure_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.heads = heads
        self.head_dim = out_features // heads
        self.negative_slope = negative_slope
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), generator), name="weight")
        self.attn_src = Parameter(init.xavier_uniform((heads, self.head_dim), generator), name="attn_src")
        self.attn_dst = Parameter(init.xavier_uniform((heads, self.head_dim), generator), name="attn_dst")
        self.bias = Parameter(init.zeros((out_features,)), name="bias")
        self._last_attention: np.ndarray | None = None

    def forward(self, x: Tensor, ctx: GraphContext) -> Tensor:
        if x.shape[-2] != ctx.n_nodes:
            raise ValueError(f"node axis {x.shape[-2]} != graph nodes {ctx.n_nodes}")
        transformed = x @ self.weight  # (B, N, heads*head_dim)
        head_outputs: list[Tensor] = []
        attention_snapshots: list[np.ndarray] = []
        for h in range(self.heads):
            lo, hi = h * self.head_dim, (h + 1) * self.head_dim
            h_feat = transformed[..., lo:hi]  # (B, N, head_dim)
            src_score = h_feat @ self.attn_src[h]  # (B, N)
            dst_score = h_feat @ self.attn_dst[h]  # (B, N)
            # scores[b, i, j] = src_i + dst_j ; i attends over its neighbors j.
            scores = src_score.expand_dims(-1) + dst_score.expand_dims(-2)
            scores = scores.leaky_relu(self.negative_slope)
            attention = F.masked_softmax(scores, ctx.attention_mask, axis=-1)
            attention_snapshots.append(attention.numpy())
            head_outputs.append(attention @ h_feat)  # (B, N, head_dim)
        out = head_outputs[0] if self.heads == 1 else Tensor.concatenate(head_outputs, axis=-1)
        self._last_attention = np.stack(attention_snapshots, axis=0)
        return out + self.bias

    def export_kernel(self, ctx: GraphContext):
        """Compile into a pure-NumPy forward numerically identical to
        :meth:`forward` (masked softmax included) minus the attention
        snapshots and graph bookkeeping. The score/softmax chain runs in
        place on workspace scratch; the leaky-ReLU branch select is
        computed as ``max(x, slope·x)`` (equal for slope < 1)."""
        weight = self.weight.data.copy()
        attend = self._export_attention(ctx)
        key = (id(self), "transform")
        out_features = self.out_features

        def kernel(x: np.ndarray, ws=None) -> np.ndarray:
            out_shape = x.shape[:-1] + (out_features,)
            transformed = np.matmul(x, weight, out=buffer(ws, key, out_shape))
            return attend(transformed, ws)

        return kernel

    def export_folded_kernel(self, ctx: GraphContext, embeddings: np.ndarray):
        """Compile with the constant identity embeddings folded away.

        The layer input is ``[x_f ⊕ E_f]`` with ``E`` batch-independent,
        so ``X W`` splits into a per-value rank-1 term plus a constant:
        ``values·W[0] + (E W[1:])``. The kernel takes the raw ``(B, N)``
        value chunk — the ``(B, N, 1+e)`` node-input slab is never
        materialized at all.
        """
        weight = self.weight.data.copy()
        embeddings = np.asarray(embeddings, dtype=np.float64)
        value_weight = weight[0].copy()  # (out,)
        constant = embeddings @ weight[1:]  # (N, out), batch-independent
        attend = self._export_attention(ctx)
        key = (id(self), "transform")
        out_features = self.out_features

        def kernel(values: np.ndarray, ws=None) -> np.ndarray:
            out_shape = values.shape + (out_features,)
            transformed = buffer(ws, key, out_shape)
            np.multiply(values[..., None], value_weight, out=transformed)
            transformed += constant
            return attend(transformed, ws)

        return kernel

    def _export_attention(self, ctx: GraphContext):
        """The per-head attention chain over already-transformed features,
        shared by the plain and embedding-folded kernels."""
        attn_src = self.attn_src.data.copy()
        attn_dst = self.attn_dst.data.copy()
        bias = self.bias.data.copy()
        mask_bias = np.where(np.asarray(ctx.attention_mask, dtype=bool), 0.0, -1e9)
        heads, head_dim, slope = self.heads, self.head_dim, self.negative_slope
        n_nodes = ctx.n_nodes

        def attend(transformed: np.ndarray, ws=None) -> np.ndarray:
            batch = transformed.shape[0]
            out = buffer(ws, (id(self), "out"), (batch, n_nodes, heads * head_dim))
            scores = buffer(ws, (id(self), "scores"), (batch, n_nodes, n_nodes))
            scaled = buffer(ws, (id(self), "scaled"), (batch, n_nodes, n_nodes))
            for h in range(heads):
                h_feat = transformed[..., h * head_dim : (h + 1) * head_dim]
                src_score = h_feat @ attn_src[h]  # (B, N)
                dst_score = h_feat @ attn_dst[h]  # (B, N)
                np.add(src_score[..., :, None], dst_score[..., None, :], out=scores)
                np.multiply(scores, slope, out=scaled)
                np.maximum(scores, scaled, out=scores)  # = LeakyReLU
                scores += mask_bias
                scores -= scores.max(axis=-1, keepdims=True)
                np.exp(scores, out=scores)
                scores /= scores.sum(axis=-1, keepdims=True)
                np.matmul(scores, h_feat, out=out[..., h * head_dim : (h + 1) * head_dim])
            out += bias
            return out

        return attend

    @property
    def last_attention(self) -> np.ndarray | None:
        """(heads, B, N, N) attention weights from the latest forward pass.

        Exposed for the interpretability extension (DESIGN.md §6).
        """
        return self._last_attention

    def __repr__(self) -> str:
        return f"GATConv({self.in_features}, {self.out_features}, heads={self.heads})"
