"""Declarative rule predicates — the JSON spec vocabulary of ``repro.rules``.

A predicate is the testable half of a :class:`~repro.rules.Rule`: a small
frozen description parsed from JSON and validated *structurally* here
(required keys, operator names, regex syntax, bound ordering). Column
existence and kind compatibility are checked later, at
``RuleSet.compile(preprocessor)`` time, when a fitted schema is
available. Every parse failure raises
:class:`~repro.exceptions.RuleConfigError` naming the JSON path of the
offending key, so gateway clients get actionable 422 messages.

Predicate types and their scopes:

===============  ======  ====================================================
type             scope   meaning
===============  ======  ====================================================
``range``        column  numeric value within ``[min, max]`` (either bound
                         optional, at least one required)
``not_null``     column  value present (not missing)
``in_set``       column  categorical value among ``values`` (every listed
                         value must be a fitted category)
``regex``        column  categorical value fully matches ``pattern``
``unique``       table   no duplicate values within the column
``compare``      row     cross-column numeric comparison ``left <op> right``
``conditional``  row     ``then`` must hold on rows where ``when`` holds
===============  ======  ====================================================
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.exceptions import RuleConfigError

__all__ = [
    "COMPARE_OPS",
    "PREDICATE_TYPES",
    "ComparePredicate",
    "ConditionalPredicate",
    "InSetPredicate",
    "NotNullPredicate",
    "RangePredicate",
    "RegexPredicate",
    "UniquePredicate",
    "parse_predicate",
]

#: Comparison operators accepted by ``compare`` predicates.
COMPARE_OPS = ("lt", "le", "gt", "ge", "eq", "ne")


@dataclass(frozen=True)
class RangePredicate:
    """Numeric value within ``[minimum, maximum]`` (raw units)."""

    column: str
    minimum: float | None = None
    maximum: float | None = None

    type = "range"
    scope = "column"

    @property
    def columns(self) -> tuple[str, ...]:
        return (self.column,)

    def to_spec(self) -> dict:
        spec: dict = {"type": self.type, "column": self.column}
        if self.minimum is not None:
            spec["min"] = self.minimum
        if self.maximum is not None:
            spec["max"] = self.maximum
        return spec


@dataclass(frozen=True)
class NotNullPredicate:
    """Value present: missing cells violate."""

    column: str

    type = "not_null"
    scope = "column"

    @property
    def columns(self) -> tuple[str, ...]:
        return (self.column,)

    def to_spec(self) -> dict:
        return {"type": self.type, "column": self.column}


@dataclass(frozen=True)
class InSetPredicate:
    """Categorical value among an allowed set of fitted categories."""

    column: str
    values: tuple[str, ...]

    type = "in_set"
    scope = "column"

    @property
    def columns(self) -> tuple[str, ...]:
        return (self.column,)

    def to_spec(self) -> dict:
        return {"type": self.type, "column": self.column, "values": list(self.values)}


@dataclass(frozen=True)
class RegexPredicate:
    """Categorical value fully matches ``pattern`` (``re.fullmatch``)."""

    column: str
    pattern: str

    type = "regex"
    scope = "column"

    @property
    def columns(self) -> tuple[str, ...]:
        return (self.column,)

    def to_spec(self) -> dict:
        return {"type": self.type, "column": self.column, "pattern": self.pattern}


@dataclass(frozen=True)
class UniquePredicate:
    """No duplicate values within the column (table scope)."""

    column: str

    type = "unique"
    scope = "table"

    @property
    def columns(self) -> tuple[str, ...]:
        return (self.column,)

    def to_spec(self) -> dict:
        return {"type": self.type, "column": self.column}


@dataclass(frozen=True)
class ComparePredicate:
    """Cross-column numeric comparison ``left <op> right`` (raw units)."""

    left: str
    op: str
    right: str

    type = "compare"
    scope = "row"

    @property
    def columns(self) -> tuple[str, ...]:
        return (self.left, self.right)

    def to_spec(self) -> dict:
        return {"type": self.type, "left": self.left, "op": self.op, "right": self.right}


@dataclass(frozen=True)
class ConditionalPredicate:
    """``then`` must hold wherever ``when`` holds (material implication).

    ``when``/``then`` are row-local predicates; ``unique`` and nested
    ``conditional`` are rejected at parse time (they are not row-local,
    so the implication would not be chunk-mergeable).
    """

    when: object
    then: object

    type = "conditional"
    scope = "row"

    @property
    def columns(self) -> tuple[str, ...]:
        return self.then.columns

    def to_spec(self) -> dict:
        return {"type": self.type, "when": self.when.to_spec(), "then": self.then.to_spec()}


def _check_keys(spec: dict, where: str, required: tuple, optional: tuple = ()) -> None:
    allowed = {"type", *required, *optional}
    unknown = sorted(set(spec) - allowed)
    if unknown:
        raise RuleConfigError(
            f"{where}: unknown key(s) {unknown} for predicate type {spec['type']!r} "
            f"(allowed: {sorted(allowed)})"
        )
    for key in required:
        if key not in spec:
            raise RuleConfigError(
                f"{where}: predicate type {spec['type']!r} requires key {key!r}"
            )


def _column(spec: dict, key: str, where: str) -> str:
    value = spec[key]
    if not isinstance(value, str) or not value:
        raise RuleConfigError(f"{where}.{key}: column name must be a non-empty string")
    return value


def _number(spec: dict, key: str, where: str) -> float:
    value = spec[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise RuleConfigError(f"{where}.{key}: expected a number, got {value!r}")
    return float(value)


def _parse_range(spec: dict, where: str) -> RangePredicate:
    _check_keys(spec, where, required=("column",), optional=("min", "max"))
    column = _column(spec, "column", where)
    minimum = _number(spec, "min", where) if "min" in spec else None
    maximum = _number(spec, "max", where) if "max" in spec else None
    if minimum is None and maximum is None:
        raise RuleConfigError(f"{where}: range predicate needs 'min' and/or 'max'")
    if minimum is not None and maximum is not None and minimum > maximum:
        raise RuleConfigError(f"{where}: range min {minimum} exceeds max {maximum}")
    return RangePredicate(column, minimum, maximum)


def _parse_not_null(spec: dict, where: str) -> NotNullPredicate:
    _check_keys(spec, where, required=("column",))
    return NotNullPredicate(_column(spec, "column", where))


def _parse_in_set(spec: dict, where: str) -> InSetPredicate:
    _check_keys(spec, where, required=("column", "values"))
    column = _column(spec, "column", where)
    values = spec["values"]
    if not isinstance(values, (list, tuple)) or not values:
        raise RuleConfigError(f"{where}.values: expected a non-empty list of strings")
    for value in values:
        if not isinstance(value, str):
            raise RuleConfigError(f"{where}.values: expected strings, got {value!r}")
    if len(set(values)) != len(values):
        raise RuleConfigError(f"{where}.values: duplicate values are not allowed")
    return InSetPredicate(column, tuple(values))


def _parse_regex(spec: dict, where: str) -> RegexPredicate:
    _check_keys(spec, where, required=("column", "pattern"))
    column = _column(spec, "column", where)
    pattern = spec["pattern"]
    if not isinstance(pattern, str):
        raise RuleConfigError(f"{where}.pattern: expected a string, got {pattern!r}")
    try:
        re.compile(pattern)
    except re.error as exc:
        raise RuleConfigError(f"{where}.pattern: invalid regex {pattern!r}: {exc}") from exc
    return RegexPredicate(column, pattern)


def _parse_unique(spec: dict, where: str) -> UniquePredicate:
    _check_keys(spec, where, required=("column",))
    return UniquePredicate(_column(spec, "column", where))


def _parse_compare(spec: dict, where: str) -> ComparePredicate:
    _check_keys(spec, where, required=("left", "op", "right"))
    left = _column(spec, "left", where)
    right = _column(spec, "right", where)
    op = spec["op"]
    if op not in COMPARE_OPS:
        raise RuleConfigError(
            f"{where}.op: unknown operator {op!r} (known: {', '.join(COMPARE_OPS)})"
        )
    if left == right:
        raise RuleConfigError(f"{where}: compare predicate needs two distinct columns")
    return ComparePredicate(left, op, right)


def _parse_conditional(spec: dict, where: str) -> ConditionalPredicate:
    _check_keys(spec, where, required=("when", "then"))
    when = parse_predicate(spec["when"], where=f"{where}.when", nested=True)
    then = parse_predicate(spec["then"], where=f"{where}.then", nested=True)
    return ConditionalPredicate(when, then)


_PARSERS = {
    "range": _parse_range,
    "not_null": _parse_not_null,
    "in_set": _parse_in_set,
    "regex": _parse_regex,
    "unique": _parse_unique,
    "compare": _parse_compare,
    "conditional": _parse_conditional,
}

#: Every recognized predicate type, in documentation order.
PREDICATE_TYPES = tuple(_PARSERS)


def parse_predicate(spec, where: str = "predicate", nested: bool = False):
    """Parse and structurally validate one predicate spec.

    ``nested`` marks specs inside a ``conditional``, where only
    row-local predicate types are legal.
    """
    if not isinstance(spec, dict):
        raise RuleConfigError(f"{where}: must be an object, got {type(spec).__name__}")
    kind = spec.get("type")
    parser = _PARSERS.get(kind)
    if parser is None:
        raise RuleConfigError(
            f"{where}.type: unknown predicate type {kind!r} "
            f"(known: {', '.join(_PARSERS)})"
        )
    if nested and kind in ("unique", "conditional"):
        raise RuleConfigError(
            f"{where}.type: {kind!r} predicates cannot nest inside 'conditional'"
        )
    return parser(spec, where)
