"""Declarative rule engine: compiled constraint validation fused with
GNN verdicts.

The GNN half of the stack catches statistical corruption; this package
adds the hard domain constraints production data quality needs — range,
not-null, set/regex membership, uniqueness, cross-column comparison,
conditional — as JSON-configured :class:`RuleSet` documents compiled by
:meth:`RuleSet.compile` into vectorized :class:`RulePlan` evaluators
over the already-encoded matrix (no per-row Python), exactly the way
``TablePreprocessor.compile`` produces a ``TransformPlan``.

Rule flags land in a :class:`RuleReport` that rides the existing
``ValidationReport`` additively (``report.rule_report``), with per-cell
provenance (model vs rule vs both) and severity rollups; chunk-local
:class:`RulePartial` results merge bit-exactly through
:func:`fold_rule_partials`, so the streamed and sharded paths agree
with one-shot evaluation to the last bit.
"""

from repro.rules.plan import RulePlan
from repro.rules.predicates import (
    COMPARE_OPS,
    PREDICATE_TYPES,
    ComparePredicate,
    ConditionalPredicate,
    InSetPredicate,
    NotNullPredicate,
    RangePredicate,
    RegexPredicate,
    UniquePredicate,
    parse_predicate,
)
from repro.rules.report import RuleOutcome, RulePartial, RuleReport, apply_rules, fold_rule_partials
from repro.rules.ruleset import RULE_SCHEMA_VERSION, SEVERITIES, SEVERITY_CODES, Rule, RuleSet


def resolve_ruleset(rules) -> "RuleSet | None":
    """Normalize any rules argument into an (uncompiled) :class:`RuleSet`.

    The sharded executor ships rule sets to worker processes as wire
    payloads and folds their outputs with only rule *metadata* — no
    preprocessor in sight — so it normalizes here rather than through
    :func:`resolve_rules`.
    """
    if rules is None or isinstance(rules, RuleSet):
        return rules
    if isinstance(rules, RulePlan):
        return rules.ruleset
    if isinstance(rules, dict):
        return RuleSet.from_payload(rules)
    return RuleSet.from_file(rules)


def resolve_rules(rules, preprocessor) -> "RulePlan | None":
    """Normalize any rules argument into a compiled :class:`RulePlan`.

    Accepts ``None`` (passthrough), an already-compiled :class:`RulePlan`,
    a :class:`RuleSet`, a wire payload ``dict``, or a path to a JSON rule
    file — the same spectrum every ``rules=`` parameter in the stack
    takes, so all entry points resolve identically.
    """
    if rules is None:
        return None
    if isinstance(rules, RulePlan):
        return rules
    if isinstance(rules, RuleSet):
        return rules.compile(preprocessor)
    if isinstance(rules, dict):
        return RuleSet.from_payload(rules).compile(preprocessor)
    return RuleSet.from_file(rules).compile(preprocessor)


__all__ = [
    "COMPARE_OPS",
    "PREDICATE_TYPES",
    "RULE_SCHEMA_VERSION",
    "SEVERITIES",
    "SEVERITY_CODES",
    "ComparePredicate",
    "ConditionalPredicate",
    "InSetPredicate",
    "NotNullPredicate",
    "RangePredicate",
    "RegexPredicate",
    "Rule",
    "RuleOutcome",
    "RulePartial",
    "RulePlan",
    "RuleReport",
    "RuleSet",
    "UniquePredicate",
    "apply_rules",
    "fold_rule_partials",
    "parse_predicate",
    "resolve_rules",
    "resolve_ruleset",
]
