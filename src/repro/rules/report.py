"""Rule evaluation results: chunk partials, fused reports, exact folds.

Rule evaluation follows the same merge discipline as the GNN half of
the stack: every chunk produces a :class:`RulePartial` of chunk-local
sparse violation coordinates, and :func:`fold_rule_partials` combines
offset-tagged partials into one :class:`RuleReport` that is bit-exactly
identical to a one-shot evaluation. Row-local rules merge by coordinate
translation alone; ``unique`` (table-scoped) rules defer their per-chunk
encoded column values — O(rows), the same budget the streaming stack
already spends on ``sample_errors`` — and adjudicate duplicates at fold
time.

Folding needs only the rule *metadata* (ids, severities, columns) plus
the feature-name order, never a preprocessor — that is what lets the
sharded coordinator fold worker partials without loading a weight
archive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.rules.ruleset import SEVERITIES, RuleSet

__all__ = ["RuleOutcome", "RulePartial", "RuleReport", "apply_rules", "fold_rule_partials"]


@dataclass
class RulePartial:
    """Rule evaluation of one chunk, in chunk-local row coordinates.

    ``violations`` holds one ``(rule_id, rows, cols)`` triple per
    non-unique rule (row-major sorted, possibly empty); ``unique_values``
    holds one ``(rule_id, rows, encoded_values)`` triple per ``unique``
    rule, carrying the present cells' encoded values for fold-time
    duplicate detection.
    """

    n_rows: int
    violations: list
    unique_values: list

    def to_payload(self) -> dict:
        from repro.api.protocol import encode_array

        return {
            "n_rows": int(self.n_rows),
            "violations": [
                {
                    "rule": rule_id,
                    "rows": np.asarray(rows, dtype=np.int64).tolist(),
                    "cols": np.asarray(cols, dtype=np.int64).tolist(),
                }
                for rule_id, rows, cols in self.violations
            ],
            "unique": [
                {
                    "rule": rule_id,
                    "rows": np.asarray(rows, dtype=np.int64).tolist(),
                    "values": encode_array(np.asarray(values, dtype=np.float64)),
                }
                for rule_id, rows, values in self.unique_values
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "RulePartial":
        from repro.api.protocol import decode_array

        violations = [
            (
                entry["rule"],
                np.asarray(entry["rows"], dtype=np.int64),
                np.asarray(entry["cols"], dtype=np.int64),
            )
            for entry in payload.get("violations", [])
        ]
        unique_values = [
            (
                entry["rule"],
                np.asarray(entry["rows"], dtype=np.int64),
                np.asarray(decode_array(entry["values"]), dtype=np.float64),
            )
            for entry in payload.get("unique", [])
        ]
        return cls(n_rows=int(payload["n_rows"]), violations=violations, unique_values=unique_values)


@dataclass
class RuleOutcome:
    """Per-rule rollup inside a :class:`RuleReport`."""

    rule_id: str
    scope: str
    severity: str
    columns: tuple
    n_cells: int
    n_rows: int

    def to_dict(self) -> dict:
        return {
            "id": self.rule_id,
            "scope": self.scope,
            "severity": self.severity,
            "columns": list(self.columns),
            "n_cells": int(self.n_cells),
            "n_rows": int(self.n_rows),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RuleOutcome":
        return cls(
            rule_id=payload["id"],
            scope=payload["scope"],
            severity=payload["severity"],
            columns=tuple(payload["columns"]),
            n_cells=int(payload["n_cells"]),
            n_rows=int(payload["n_rows"]),
        )


@dataclass
class RuleReport:
    """Fused result of evaluating a :class:`~repro.rules.RuleSet`.

    ``cell_rows``/``cell_cols`` list each violating cell once, sorted
    row-major; ``cell_severity`` carries the *maximum* severity code any
    rule assigned that cell (see ``repro.rules.SEVERITIES`` for the
    code → name mapping). ``outcomes`` roll up per-rule counts in rule
    order.
    """

    n_rows: int
    feature_names: list
    cell_rows: np.ndarray
    cell_cols: np.ndarray
    cell_severity: np.ndarray
    outcomes: list

    @property
    def n_cells(self) -> int:
        return int(self.cell_rows.size)

    @property
    def flagged_rows(self) -> np.ndarray:
        return np.unique(self.cell_rows)

    @property
    def n_flagged_rows(self) -> int:
        return int(self.flagged_rows.size)

    @property
    def max_severity(self) -> str | None:
        if self.cell_severity.size == 0:
            return None
        return SEVERITIES[int(self.cell_severity.max())]

    def by_severity(self) -> dict:
        """Distinct violating cells per (max-)severity tier."""
        counts = np.bincount(self.cell_severity, minlength=len(SEVERITIES))
        return {name: int(counts[code]) for code, name in enumerate(SEVERITIES)}

    def outcome(self, rule_id: str) -> RuleOutcome:
        for outcome in self.outcomes:
            if outcome.rule_id == rule_id:
                return outcome
        raise KeyError(rule_id)

    def cell_mask(self) -> np.ndarray:
        """Dense boolean (n_rows, n_features) mask of violating cells."""
        mask = np.zeros((self.n_rows, len(self.feature_names)), dtype=bool)
        if self.cell_rows.size:
            mask[self.cell_rows, self.cell_cols] = True
        return mask

    def severity_of(self, row: int, column) -> str | None:
        """Severity name at one cell (column by index or name), or None."""
        if isinstance(column, str):
            column = self.feature_names.index(column)
        hit = (self.cell_rows == row) & (self.cell_cols == column)
        if not hit.any():
            return None
        return SEVERITIES[int(self.cell_severity[np.flatnonzero(hit)[0]])]

    def summary(self) -> str:
        tiers = ", ".join(f"{name}={count}" for name, count in self.by_severity().items())
        return (
            f"rules: {self.n_cells} violating cell(s) across "
            f"{self.n_flagged_rows}/{self.n_rows} row(s) [{tiers}]"
        )

    def to_dict(self) -> dict:
        from repro.api.protocol import envelope

        payload = envelope("rule_report")
        payload.update(
            {
                "n_rows": int(self.n_rows),
                "feature_names": list(self.feature_names),
                "n_cells": self.n_cells,
                "cells": {
                    "rows": self.cell_rows.tolist(),
                    "cols": self.cell_cols.tolist(),
                    "severity": self.cell_severity.tolist(),
                },
                "by_severity": self.by_severity(),
                "max_severity": self.max_severity,
                "rules": [outcome.to_dict() for outcome in self.outcomes],
            }
        )
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RuleReport":
        from repro.api.protocol import check_envelope

        check_envelope(payload, "rule_report")
        cells = payload["cells"]
        return cls(
            n_rows=int(payload["n_rows"]),
            feature_names=list(payload["feature_names"]),
            cell_rows=np.asarray(cells["rows"], dtype=np.int64),
            cell_cols=np.asarray(cells["cols"], dtype=np.int64),
            cell_severity=np.asarray(cells["severity"], dtype=np.int64),
            outcomes=[RuleOutcome.from_dict(entry) for entry in payload["rules"]],
        )


_EMPTY = np.empty(0, dtype=np.int64)


def fold_rule_partials(parts, rules: RuleSet, feature_names) -> RuleReport:
    """Fold offset-tagged chunk partials into one exact :class:`RuleReport`.

    ``parts`` is an iterable of ``(offset, n_rows, RulePartial | None)``
    in ascending offset order (``None`` partials contribute rows but no
    rule data — a rules-off chunk). The result is bit-identical to
    evaluating the concatenated matrix in one shot.
    """
    feature_names = list(feature_names)
    index_of = {name: j for j, name in enumerate(feature_names)}
    n_features = len(feature_names)
    known = {rule.id for rule in rules}
    rows_by_rule: dict = {rule.id: [] for rule in rules}
    cols_by_rule: dict = {rule.id: [] for rule in rules}
    unique_rows: dict = {rule.id: [] for rule in rules if rule.predicate.type == "unique"}
    unique_vals: dict = {rule.id: [] for rule in rules if rule.predicate.type == "unique"}
    total_rows = 0
    for offset, n_rows, partial in parts:
        total_rows += int(n_rows)
        if partial is None:
            continue
        for rule_id, rows, cols in partial.violations:
            if rule_id not in known:
                raise ValidationError(f"rule partial references unknown rule {rule_id!r}")
            rows_by_rule[rule_id].append(np.asarray(rows, dtype=np.int64) + int(offset))
            cols_by_rule[rule_id].append(np.asarray(cols, dtype=np.int64))
        for rule_id, rows, values in partial.unique_values:
            if rule_id not in unique_rows:
                raise ValidationError(f"rule partial references unknown unique rule {rule_id!r}")
            unique_rows[rule_id].append(np.asarray(rows, dtype=np.int64) + int(offset))
            unique_vals[rule_id].append(np.asarray(values, dtype=np.float64))

    all_rows, all_cols, all_sev = [], [], []
    outcomes = []
    for rule in rules:
        if rule.predicate.type == "unique":
            gathered = unique_rows[rule.id]
            rows = np.concatenate(gathered) if gathered else _EMPTY
            values = (
                np.concatenate(unique_vals[rule.id])
                if unique_vals[rule.id]
                else np.empty(0, dtype=np.float64)
            )
            if values.size:
                _, inverse, counts = np.unique(values, return_inverse=True, return_counts=True)
                rows = rows[counts[inverse] > 1]
            else:
                rows = _EMPTY
            cols = np.full(rows.size, index_of[rule.predicate.column], dtype=np.int64)
        else:
            gathered = rows_by_rule[rule.id]
            rows = np.concatenate(gathered) if gathered else _EMPTY
            cols = np.concatenate(cols_by_rule[rule.id]) if cols_by_rule[rule.id] else _EMPTY
        outcomes.append(
            RuleOutcome(
                rule_id=rule.id,
                scope=rule.scope,
                severity=rule.severity,
                columns=tuple(dict.fromkeys(rule.predicate.columns)),
                n_cells=int(rows.size),
                n_rows=int(np.unique(rows).size),
            )
        )
        all_rows.append(rows)
        all_cols.append(cols)
        all_sev.append(np.full(rows.size, rule.severity_code, dtype=np.int64))

    rows_cat = np.concatenate(all_rows) if all_rows else _EMPTY
    cols_cat = np.concatenate(all_cols) if all_cols else _EMPTY
    sev_cat = np.concatenate(all_sev) if all_sev else _EMPTY
    if rows_cat.size == 0:
        cell_rows = cell_cols = cell_sev = _EMPTY
    else:
        # Dedupe cells flagged by several rules, keeping the max
        # severity: sort by flat cell key, reduce per group.
        keys = rows_cat * n_features + cols_cat
        order = np.argsort(keys, kind="stable")
        keys_sorted = keys[order]
        sev_sorted = sev_cat[order]
        cell_keys, first = np.unique(keys_sorted, return_index=True)
        cell_sev = np.maximum.reduceat(sev_sorted, first)
        cell_rows = cell_keys // n_features
        cell_cols = cell_keys % n_features
    return RuleReport(
        n_rows=total_rows,
        feature_names=feature_names,
        cell_rows=cell_rows,
        cell_cols=cell_cols,
        cell_severity=cell_sev,
        outcomes=outcomes,
    )


def apply_rules(report, matrix, plan):
    """Evaluate ``plan`` over an encoded matrix and attach the fused
    :class:`RuleReport` to a :class:`~repro.core.validator.ValidationReport`.

    The GNN flags on ``report`` are never touched — fusion is purely
    additive, which is what keeps rules-off output bit-identical.
    """
    partial = plan.evaluate(matrix)
    report.rule_report = fold_rule_partials(
        [(0, int(partial.n_rows), partial)], plan.ruleset, list(report.feature_names)
    )
    return report
