"""Versioned, JSON-configured rule sets.

:class:`RuleSet` is the declarative half of :mod:`repro.rules`: an
ordered collection of :class:`Rule` objects parsed from a versioned
JSON document and validated eagerly at load (duplicate ids, severity
tiers, predicate structure). It stays pure data until
:meth:`RuleSet.compile` binds it to a fitted preprocessor and produces
a :class:`~repro.rules.plan.RulePlan` of vectorized evaluators — the
same load-then-compile split ``TablePreprocessor``/``TransformPlan``
uses for encoders, with the same caching contract (recompiling against
the same preprocessor object is free).

Document shape (``rule_schema_version`` 1)::

    {
      "schema_version": 1, "kind": "rule_set",      # wire envelope
      "rule_schema_version": 1,
      "name": "hotel-checks",                        # optional
      "revision": 3,                                 # caller-managed, default 1
      "rules": [
        {"id": "adr-range", "severity": "error",
         "predicate": {"type": "range", "column": "adr", "min": 0, "max": 1000}},
        ...
      ]
    }
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.exceptions import RuleConfigError
from repro.rules.predicates import parse_predicate

__all__ = ["RULE_SCHEMA_VERSION", "SEVERITIES", "SEVERITY_CODES", "Rule", "RuleSet"]

#: Version of the rule *document* layout (independent of the wire
#: envelope's ``schema_version``): bump on renames/retypes of rule keys.
RULE_SCHEMA_VERSION = 1

#: Severity tiers, mildest first. Index = wire code.
SEVERITIES = ("info", "warn", "error")
SEVERITY_CODES = {name: code for code, name in enumerate(SEVERITIES)}

_RULE_KEYS = {"id", "severity", "scope", "predicate"}


class Rule:
    """One named, severity-tiered predicate."""

    __slots__ = ("id", "predicate", "severity")

    def __init__(self, id: str, predicate, severity: str = "error") -> None:
        if not isinstance(id, str) or not id:
            raise RuleConfigError(f"rule id must be a non-empty string, got {id!r}")
        if severity not in SEVERITIES:
            raise RuleConfigError(
                f"rule {id!r}: unknown severity {severity!r} "
                f"(known: {', '.join(SEVERITIES)})"
            )
        self.id = id
        self.predicate = predicate
        self.severity = severity

    @property
    def scope(self) -> str:
        """Evaluation scope, derived from the predicate type."""
        return self.predicate.scope

    @property
    def severity_code(self) -> int:
        return SEVERITY_CODES[self.severity]

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "severity": self.severity,
            "scope": self.scope,
            "predicate": self.predicate.to_spec(),
        }

    @classmethod
    def from_dict(cls, payload, where: str = "rule") -> "Rule":
        if not isinstance(payload, dict):
            raise RuleConfigError(f"{where}: must be an object, got {type(payload).__name__}")
        unknown = sorted(set(payload) - _RULE_KEYS)
        if unknown:
            raise RuleConfigError(f"{where}: unknown key(s) {unknown} (allowed: {sorted(_RULE_KEYS)})")
        if "id" not in payload:
            raise RuleConfigError(f"{where}: missing required key 'id'")
        if "predicate" not in payload:
            raise RuleConfigError(f"{where}: missing required key 'predicate'")
        rule_id = payload["id"]
        label = f"{where}({rule_id!r})" if isinstance(rule_id, str) and rule_id else where
        predicate = parse_predicate(payload["predicate"], where=f"{label}.predicate")
        rule = cls(rule_id, predicate, payload.get("severity", "error"))
        declared_scope = payload.get("scope")
        if declared_scope is not None and declared_scope != rule.scope:
            raise RuleConfigError(
                f"{label}: declared scope {declared_scope!r} conflicts with "
                f"predicate type {predicate.type!r} (which is {rule.scope!r}-scoped)"
            )
        return rule

    def __repr__(self) -> str:
        return f"Rule(id={self.id!r}, severity={self.severity!r}, type={self.predicate.type!r})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Rule) and self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash((self.id, self.severity, self.predicate))


class RuleSet:
    """An ordered, validated collection of rules.

    Rule order is preserved (it is the wire order and the evaluation
    order), ids are unique, and the set is immutable after
    construction. ``compile(preprocessor)`` caches its plan per
    preprocessor object, so repeated validates pay compilation once.
    """

    __slots__ = ("rules", "name", "revision", "_compiled")

    def __init__(self, rules, name: str | None = None, revision: int = 1) -> None:
        rules = tuple(rules)
        for rule in rules:
            if not isinstance(rule, Rule):
                raise RuleConfigError(f"RuleSet expects Rule objects, got {type(rule).__name__}")
        seen: set[str] = set()
        for rule in rules:
            if rule.id in seen:
                raise RuleConfigError(f"duplicate rule id {rule.id!r}")
            seen.add(rule.id)
        if name is not None and (not isinstance(name, str) or not name):
            raise RuleConfigError(f"rule set name must be a non-empty string, got {name!r}")
        if isinstance(revision, bool) or not isinstance(revision, int) or revision < 1:
            raise RuleConfigError(f"rule set revision must be a positive integer, got {revision!r}")
        self.rules = rules
        self.name = name
        self.revision = revision
        self._compiled: tuple | None = None

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)

    def __eq__(self, other) -> bool:
        return isinstance(other, RuleSet) and self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash(self.fingerprint)

    @property
    def fingerprint(self) -> str:
        """Content hash of the canonical wire form (cache/identity key)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def rule(self, rule_id: str) -> Rule:
        for rule in self.rules:
            if rule.id == rule_id:
                return rule
        raise KeyError(rule_id)

    def to_dict(self) -> dict:
        from repro.api.protocol import envelope

        payload = envelope("rule_set")
        payload["rule_schema_version"] = RULE_SCHEMA_VERSION
        if self.name is not None:
            payload["name"] = self.name
        payload["revision"] = self.revision
        payload["rules"] = [rule.to_dict() for rule in self.rules]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RuleSet":
        """Decode a fully enveloped ``rule_set`` payload."""
        from repro.api.protocol import check_envelope

        check_envelope(payload, "rule_set")
        return cls._from_body(payload)

    @classmethod
    def from_payload(cls, payload) -> "RuleSet":
        """Lenient decode: a RuleSet passes through; dicts may be bare
        (``{"rules": [...]}``) or carry the wire envelope."""
        if isinstance(payload, RuleSet):
            return payload
        if not isinstance(payload, dict):
            raise RuleConfigError(
                f"rule set must be an object, got {type(payload).__name__}"
            )
        if "schema_version" in payload or "kind" in payload:
            return cls.from_dict(payload)
        return cls._from_body(payload)

    @classmethod
    def _from_body(cls, payload: dict) -> "RuleSet":
        allowed = {"schema_version", "kind", "rule_schema_version", "name", "revision", "rules"}
        unknown = sorted(set(payload) - allowed)
        if unknown:
            raise RuleConfigError(f"rule set: unknown key(s) {unknown}")
        declared = payload.get("rule_schema_version", RULE_SCHEMA_VERSION)
        if declared != RULE_SCHEMA_VERSION:
            raise RuleConfigError(
                f"unsupported rule_schema_version {declared!r} "
                f"(this build reads {RULE_SCHEMA_VERSION})"
            )
        rules = payload.get("rules")
        if not isinstance(rules, list):
            raise RuleConfigError("rule set: 'rules' must be a list")
        parsed = [Rule.from_dict(rule, where=f"rules[{i}]") for i, rule in enumerate(rules)]
        return cls(parsed, name=payload.get("name"), revision=payload.get("revision", 1))

    @classmethod
    def from_json(cls, text: str) -> "RuleSet":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise RuleConfigError(f"rule set is not valid JSON: {exc}") from exc
        return cls.from_payload(payload)

    @classmethod
    def from_file(cls, path) -> "RuleSet":
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise RuleConfigError(f"cannot read rule file {path}: {exc}") from exc
        return cls.from_json(text)

    def compile(self, preprocessor):
        """Bind to a fitted preprocessor, producing a vectorized
        :class:`~repro.rules.plan.RulePlan` (cached per preprocessor)."""
        from repro.rules.plan import RulePlan

        cached = self._compiled
        if cached is not None and cached[0] is preprocessor:
            return cached[1]
        plan = RulePlan(self, preprocessor)
        self._compiled = (preprocessor, plan)
        return plan

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return f"RuleSet(rules={len(self.rules)},{label} revision={self.revision})"
