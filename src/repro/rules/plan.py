"""Compiled rule plans: vectorized predicate evaluation in encoded space.

:class:`RulePlan` is to a :class:`~repro.rules.RuleSet` what
``TransformPlan`` is to a ``TablePreprocessor``: an immutable compiled
form with no per-row Python on the hot path. Every predicate evaluates
directly over the already-encoded float64 matrix:

* ``range`` bounds are pushed through the exact forward affine
  ``(bound - minimum) / span`` once at compile time and compared in
  encoded space (a value equal to a bound never flags); ``compare``
  recovers raw values via the inverse affine
  ``raw = encoded * span + minimum`` — both deterministic across the
  one-shot / streamed / sharded paths because they all share the
  bit-identical encoded matrix;
* categorical membership (``in_set``/``regex``) compiles the allowed
  vocabulary entries to their scaled code positions (the same
  subtract-then-divide float ops the encoder runs) and evaluates with
  exact float64 equality via ``np.isin``. Unknown categorical values
  sit at ``1 + unknown_margin`` — outside every compiled position — so
  they count as membership violations;
* missing is ``encoded == missing_sentinel``; ``unique`` rules collect
  the present cells' encoded values (the affine is injective on a
  non-degenerate column, so encoded duplicates are raw duplicates).

Compilation validates rules against the fitted schema: unknown columns,
kind mismatches, and degenerate (constant) fitted ranges — whose raw
values are unrecoverable from the matrix — all raise
:class:`~repro.exceptions.RuleConfigError`.
"""

from __future__ import annotations

import re

import numpy as np

from repro.data import ColumnKind
from repro.exceptions import RuleConfigError, ValidationError
from repro.rules.report import RulePartial
from repro.rules.ruleset import RuleSet

__all__ = ["RulePlan"]


class _Column:
    """Per-column compile context derived from the fitted preprocessor."""

    __slots__ = (
        "name",
        "index",
        "kind",
        "sentinel",
        "unknown_value",
        "minimum",
        "span",
        "degenerate",
        "classes",
        "positions",
    )


class _RangeEval:
    """Range check in *encoded* space: the raw bounds are pushed through
    the exact forward affine once at compile time, so a data value equal
    to a bound compares equal (both went through the identical float
    ops) — no inverse-transform roundoff on the hot path."""

    __slots__ = ("j", "sentinel", "lo", "hi")

    def __init__(self, ctx: _Column, lo: float | None, hi: float | None) -> None:
        self.j = ctx.index
        self.sentinel = ctx.sentinel
        self.lo = None if lo is None else (lo - ctx.minimum) / ctx.span
        self.hi = None if hi is None else (hi - ctx.minimum) / ctx.span

    def violates(self, matrix: np.ndarray) -> np.ndarray:
        encoded = matrix[:, self.j]
        bad = np.zeros(encoded.shape, dtype=bool)
        if self.lo is not None:
            bad |= encoded < self.lo
        if self.hi is not None:
            bad |= encoded > self.hi
        return (encoded != self.sentinel) & bad

    def holds(self, matrix: np.ndarray) -> np.ndarray:
        encoded = matrix[:, self.j]
        ok = encoded != self.sentinel
        if self.lo is not None:
            ok = ok & (encoded >= self.lo)
        if self.hi is not None:
            ok = ok & (encoded <= self.hi)
        return ok


class _NotNullEval:
    __slots__ = ("j", "sentinel")

    def __init__(self, ctx: _Column) -> None:
        self.j = ctx.index
        self.sentinel = ctx.sentinel

    def violates(self, matrix: np.ndarray) -> np.ndarray:
        return matrix[:, self.j] == self.sentinel

    def holds(self, matrix: np.ndarray) -> np.ndarray:
        return matrix[:, self.j] != self.sentinel


class _MembershipEval:
    """Shared evaluator for ``in_set`` and ``regex``: allowed scaled
    positions were resolved at compile time."""

    __slots__ = ("j", "sentinel", "positions")

    def __init__(self, ctx: _Column, positions: np.ndarray) -> None:
        self.j = ctx.index
        self.sentinel = ctx.sentinel
        self.positions = positions

    def violates(self, matrix: np.ndarray) -> np.ndarray:
        encoded = matrix[:, self.j]
        return (encoded != self.sentinel) & ~np.isin(encoded, self.positions)

    def holds(self, matrix: np.ndarray) -> np.ndarray:
        return np.isin(matrix[:, self.j], self.positions)


_COMPARE_FN = {
    "lt": np.less,
    "le": np.less_equal,
    "gt": np.greater,
    "ge": np.greater_equal,
    "eq": np.equal,
    "ne": np.not_equal,
}


class _CompareEval:
    __slots__ = ("jl", "jr", "sentinel", "min_l", "span_l", "min_r", "span_r", "fn")

    def __init__(self, left: _Column, right: _Column, op: str) -> None:
        self.jl = left.index
        self.jr = right.index
        self.sentinel = left.sentinel
        self.min_l = left.minimum
        self.span_l = left.span
        self.min_r = right.minimum
        self.span_r = right.span
        self.fn = _COMPARE_FN[op]

    def _decode(self, matrix: np.ndarray):
        enc_l = matrix[:, self.jl]
        enc_r = matrix[:, self.jr]
        present = (enc_l != self.sentinel) & (enc_r != self.sentinel)
        raw_l = enc_l * self.span_l + self.min_l
        raw_r = enc_r * self.span_r + self.min_r
        return present, self.fn(raw_l, raw_r)

    def violates(self, matrix: np.ndarray) -> np.ndarray:
        present, satisfied = self._decode(matrix)
        return present & ~satisfied

    def holds(self, matrix: np.ndarray) -> np.ndarray:
        present, satisfied = self._decode(matrix)
        return present & satisfied


class _ConditionalEval:
    __slots__ = ("when", "then")

    def __init__(self, when, then) -> None:
        self.when = when
        self.then = then

    def violates(self, matrix: np.ndarray) -> np.ndarray:
        return self.when.holds(matrix) & self.then.violates(matrix)

    def holds(self, matrix: np.ndarray) -> np.ndarray:
        # Material implication over present rows.
        return ~self.when.holds(matrix) | self.then.holds(matrix)


class _UniqueEval:
    __slots__ = ("j", "sentinel", "unknown_value")

    def __init__(self, ctx: _Column) -> None:
        self.j = ctx.index
        self.sentinel = ctx.sentinel
        # Unknown categorical values all encode to the same position, so
        # two *different* novel strings would look like duplicates —
        # exclude them rather than fabricate violations.
        self.unknown_value = ctx.unknown_value if ctx.kind == "categorical" else None

    def collect(self, matrix: np.ndarray):
        encoded = matrix[:, self.j]
        usable = encoded != self.sentinel
        if self.unknown_value is not None:
            usable &= encoded != self.unknown_value
        rows = np.flatnonzero(usable).astype(np.int64)
        return rows, encoded[usable].astype(np.float64)


def _resolve(columns: dict, name: str, rule_id: str, expect: str | None = None) -> _Column:
    ctx = columns.get(name)
    if ctx is None:
        raise RuleConfigError(
            f"rule {rule_id!r}: unknown column {name!r} "
            f"(schema columns: {', '.join(columns)})"
        )
    if expect is not None and ctx.kind != expect:
        raise RuleConfigError(
            f"rule {rule_id!r}: column {name!r} is {ctx.kind}, "
            f"but the predicate requires a {expect} column"
        )
    return ctx


def _require_invertible(ctx: _Column, rule_id: str) -> _Column:
    if ctx.degenerate:
        raise RuleConfigError(
            f"rule {rule_id!r}: column {ctx.name!r} has a degenerate fitted range "
            f"(constant column); its raw values are not recoverable from the "
            f"encoded matrix"
        )
    return ctx


def _compile_predicate(predicate, columns: dict, rule_id: str):
    kind = predicate.type
    if kind == "range":
        ctx = _require_invertible(
            _resolve(columns, predicate.column, rule_id, expect="numeric"), rule_id
        )
        return _RangeEval(ctx, predicate.minimum, predicate.maximum)
    if kind == "not_null":
        return _NotNullEval(_resolve(columns, predicate.column, rule_id))
    if kind in ("in_set", "regex"):
        ctx = _require_invertible(
            _resolve(columns, predicate.column, rule_id, expect="categorical"), rule_id
        )
        if kind == "in_set":
            missing = sorted(set(predicate.values) - set(ctx.classes))
            if missing:
                raise RuleConfigError(
                    f"rule {rule_id!r}: value(s) {missing} are not fitted categories "
                    f"of column {ctx.name!r}; membership cannot be checked "
                    f"post-encoding (fit the encoder with them as future "
                    f"categories first)"
                )
            selected = np.array([cls in set(predicate.values) for cls in ctx.classes])
        else:
            matcher = re.compile(predicate.pattern)
            selected = np.array([matcher.fullmatch(cls) is not None for cls in ctx.classes])
            if not selected.any():
                raise RuleConfigError(
                    f"rule {rule_id!r}: pattern {predicate.pattern!r} matches no "
                    f"fitted category of column {ctx.name!r}"
                )
        return _MembershipEval(ctx, ctx.positions[selected])
    if kind == "unique":
        ctx = _require_invertible(_resolve(columns, predicate.column, rule_id), rule_id)
        return _UniqueEval(ctx)
    if kind == "compare":
        left = _require_invertible(
            _resolve(columns, predicate.left, rule_id, expect="numeric"), rule_id
        )
        right = _require_invertible(
            _resolve(columns, predicate.right, rule_id, expect="numeric"), rule_id
        )
        return _CompareEval(left, right, predicate.op)
    if kind == "conditional":
        when = _compile_predicate(predicate.when, columns, rule_id)
        then = _compile_predicate(predicate.then, columns, rule_id)
        return _ConditionalEval(when, then)
    raise RuleConfigError(f"rule {rule_id!r}: unknown predicate type {kind!r}")


class _CompiledRule:
    __slots__ = ("rule", "evaluator", "column_indices", "is_unique")

    def __init__(self, rule, columns: dict) -> None:
        self.rule = rule
        self.evaluator = _compile_predicate(rule.predicate, columns, rule.id)
        self.is_unique = rule.predicate.type == "unique"
        self.column_indices = np.array(
            sorted({columns[name].index for name in rule.predicate.columns}), dtype=np.int64
        )


class RulePlan:
    """A rule set bound to a fitted preprocessor — vectorized evaluators
    over the encoded matrix. Build via :meth:`RuleSet.compile`."""

    def __init__(self, ruleset: RuleSet, preprocessor) -> None:
        transform = preprocessor.compile()
        self.ruleset = ruleset
        self.schema = preprocessor.schema
        self.n_features = len(self.schema)
        self.feature_names = [spec.name for spec in self.schema]
        columns: dict[str, _Column] = {}
        for j, spec in enumerate(self.schema):
            normalizer = preprocessor.normalizer(spec.name)
            ctx = _Column()
            ctx.name = spec.name
            ctx.index = j
            ctx.sentinel = transform.missing_sentinel
            ctx.unknown_value = transform.unknown_value
            ctx.minimum = float(normalizer.minimum_)
            ctx.span = float(normalizer.maximum_) - float(normalizer.minimum_)
            ctx.degenerate = ctx.span == 0.0
            if spec.kind == ColumnKind.CATEGORICAL:
                ctx.kind = "categorical"
                ctx.classes = tuple(preprocessor.label_encoder(spec.name).classes_)
                codes = np.arange(len(ctx.classes), dtype=np.float64)
                if ctx.degenerate:
                    ctx.positions = np.full(len(ctx.classes), 0.5)
                else:
                    # The exact float ops the encoder runs, so positions
                    # compare equal to encoded cells bit-for-bit.
                    ctx.positions = np.divide(np.subtract(codes, ctx.minimum), ctx.span)
            else:
                ctx.kind = "numeric"
                ctx.classes = None
                ctx.positions = None
            columns[spec.name] = ctx
        self._compiled = [_CompiledRule(rule, columns) for rule in ruleset]

    def __len__(self) -> int:
        return len(self._compiled)

    def evaluate(self, matrix: np.ndarray) -> RulePartial:
        """Evaluate every rule over one encoded chunk.

        Returns a chunk-local :class:`~repro.rules.report.RulePartial`;
        all returned arrays are freshly allocated (the input buffer may
        be reused by the caller, as ``transform_chunks`` does).
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.n_features:
            raise ValidationError(
                f"rule plan compiled for {self.n_features} features, "
                f"got matrix of shape {matrix.shape}"
            )
        violations = []
        unique_values = []
        for compiled in self._compiled:
            if compiled.is_unique:
                rows, values = compiled.evaluator.collect(matrix)
                unique_values.append((compiled.rule.id, rows, values))
                continue
            rows = np.flatnonzero(compiled.evaluator.violates(matrix)).astype(np.int64)
            cols = compiled.column_indices
            if cols.size == 1:
                out_rows = rows
                out_cols = np.full(rows.size, cols[0], dtype=np.int64)
            else:
                # Row-major order: repeat rows across the sorted columns.
                out_rows = np.repeat(rows, cols.size)
                out_cols = np.tile(cols, rows.size)
            violations.append((compiled.rule.id, out_rows, out_cols))
        return RulePartial(
            n_rows=int(matrix.shape[0]), violations=violations, unique_values=unique_values
        )

    def __repr__(self) -> str:
        return f"RulePlan(rules={len(self._compiled)}, features={self.n_features})"
