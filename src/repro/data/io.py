"""CSV (de)serialization for :class:`~repro.data.table.Table`.

Only the standard library ``csv`` module is used. Missing values are
written as empty fields and read back as missing.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.data.schema import TableSchema
from repro.data.table import Table
from repro.exceptions import SchemaError

__all__ = ["write_csv", "read_csv"]


def write_csv(table: Table, path: str | Path) -> None:
    """Write ``table`` to ``path`` with a header row."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    names = table.schema.names
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        columns = [table.column(name) for name in names]
        specs = list(table.schema)
        for i in range(table.n_rows):
            row = []
            for spec, column in zip(specs, columns):
                value = column[i]
                if spec.is_numeric:
                    row.append("" if np.isnan(value) else repr(float(value)))
                else:
                    row.append("" if value is None else str(value))
            writer.writerow(row)


def read_csv(path: str | Path, schema: TableSchema) -> Table:
    """Read a CSV written by :func:`write_csv` against ``schema``."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path} is empty") from None
        if header != schema.names:
            raise SchemaError(f"{path} header {header} does not match schema {schema.names}")
        raw_rows = list(reader)

    columns: dict[str, list] = {name: [] for name in schema.names}
    for line_no, row in enumerate(raw_rows, start=2):
        if len(row) != len(schema):
            raise SchemaError(f"{path}:{line_no}: expected {len(schema)} fields, got {len(row)}")
        for spec, field in zip(schema, row):
            if field == "":
                columns[spec.name].append(np.nan if spec.is_numeric else None)
            elif spec.is_numeric:
                columns[spec.name].append(float(field))
            else:
                columns[spec.name].append(field)
    return Table(schema, columns)
