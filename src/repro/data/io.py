"""CSV (de)serialization for :class:`~repro.data.table.Table`.

Only the standard library ``csv`` module is used. Missing values are
written as empty fields and read back as missing.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.data.schema import TableSchema
from repro.data.table import Table
from repro.exceptions import SchemaError

__all__ = ["write_csv", "read_csv", "read_csv_chunks"]


def write_csv(table: Table, path: str | Path) -> None:
    """Write ``table`` to ``path`` with a header row."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    names = table.schema.names
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        columns = [table.column(name) for name in names]
        specs = list(table.schema)
        for i in range(table.n_rows):
            row = []
            for spec, column in zip(specs, columns):
                value = column[i]
                if spec.is_numeric:
                    row.append("" if np.isnan(value) else repr(float(value)))
                else:
                    row.append("" if value is None else str(value))
            writer.writerow(row)


def read_csv(path: str | Path, schema: TableSchema) -> Table:
    """Read a CSV written by :func:`write_csv` against ``schema``."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path} is empty") from None
        if header != schema.names:
            raise SchemaError(f"{path} header {header} does not match schema {schema.names}")
        raw_rows = list(reader)

    columns: dict[str, list] = {name: [] for name in schema.names}
    for line_no, row in enumerate(raw_rows, start=2):
        _append_row(columns, schema, row, path, line_no)
    return Table(schema, columns)


def read_csv_chunks(
    path: str | Path, schema: TableSchema, chunk_size: int = 8192
) -> Iterator[Table]:
    """Stream a CSV as :class:`Table` chunks of at most ``chunk_size`` rows.

    Only one chunk of rows is resident at a time — the row-chunk source
    for :class:`~repro.runtime.streaming.StreamingValidator` on tables
    too large to materialize.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path} is empty") from None
        if header != schema.names:
            raise SchemaError(f"{path} header {header} does not match schema {schema.names}")
        columns: dict[str, list] = {name: [] for name in schema.names}
        n_buffered = 0
        for line_no, row in enumerate(reader, start=2):
            _append_row(columns, schema, row, path, line_no)
            n_buffered += 1
            if n_buffered >= chunk_size:
                yield Table(schema, columns)
                columns = {name: [] for name in schema.names}
                n_buffered = 0
        if n_buffered:
            yield Table(schema, columns)


def _append_row(
    columns: dict[str, list], schema: TableSchema, row: list[str], path: Path, line_no: int
) -> None:
    if len(row) != len(schema):
        raise SchemaError(f"{path}:{line_no}: expected {len(schema)} fields, got {len(row)}")
    for spec, field in zip(schema, row):
        if field == "":
            columns[spec.name].append(np.nan if spec.is_numeric else None)
        elif spec.is_numeric:
            columns[spec.name].append(float(field))
        else:
            columns[spec.name].append(field)
