"""Feature encoding and normalization (paper §3.1).

* :class:`LabelEncoder` — categorical → integer codes.  Per the paper,
  the encoder is "fitted on both clean data and any possible future data"
  so unseen-but-anticipated categories encode consistently; truly unknown
  values at transform time map to a dedicated *unknown* code.
* :class:`MinMaxNormalizer` — numeric → [0, 1] (values outside the fitted
  range extrapolate past the unit interval, which is exactly what lets
  out-of-range anomalies surface as reconstruction outliers).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError

__all__ = ["LabelEncoder", "MinMaxNormalizer"]


class LabelEncoder:
    """Map category strings to dense integer codes.

    Unknown values at transform time receive the reserved code
    ``len(classes_)`` so they remain distinguishable (and, after scaling,
    sit outside the clean-data manifold). Missing (``None``) maps to NaN.
    """

    def __init__(self) -> None:
        self.classes_: list[str] | None = None
        self._code_of: dict[str, int] | None = None

    def fit(self, values, extra_values=()) -> "LabelEncoder":
        """Learn the category→code mapping.

        ``extra_values`` implements the paper's "possible future data"
        clause: anticipated categories not present in the clean sample.
        """
        observed = {str(v) for v in values if v is not None}
        observed |= {str(v) for v in extra_values if v is not None}
        self.classes_ = sorted(observed)
        self._code_of = {value: code for code, value in enumerate(self.classes_)}
        return self

    @staticmethod
    def from_classes(classes: list[str]) -> "LabelEncoder":
        """Restore a fitted encoder from its persisted vocabulary.

        The class list is taken verbatim (it was sorted at fit time), so
        a restored encoder assigns exactly the original codes.
        """
        encoder = LabelEncoder()
        encoder.classes_ = [str(v) for v in classes]
        encoder._code_of = {value: code for code, value in enumerate(encoder.classes_)}
        return encoder

    @property
    def unknown_code(self) -> int:
        self._check_fitted()
        return len(self.classes_)

    def transform(self, values) -> np.ndarray:
        """Encode to float codes (NaN for missing, unknown_code for novel)."""
        self._check_fitted()
        out = np.empty(len(values), dtype=np.float64)
        for i, value in enumerate(values):
            if value is None or (isinstance(value, float) and np.isnan(value)):
                out[i] = np.nan
            else:
                out[i] = self._code_of.get(str(value), self.unknown_code)
        return out

    def inverse_transform(self, codes: np.ndarray) -> np.ndarray:
        """Decode float codes back to category strings (object array).

        Codes are rounded (half-to-even, matching the scalar path's
        ``round()``) and clipped into the valid range, so arbitrary
        model outputs decode to the *nearest* valid category; NaN
        decodes to ``None``. Fully vectorized: one ``rint``/``clip``
        pass and an object-array ``take``, no per-value Python loop.
        """
        self._check_fitted()
        codes = np.asarray(codes, dtype=np.float64)
        missing = np.isnan(codes)
        out = np.empty(len(codes), dtype=object)
        out[:] = None
        if missing.all():
            return out
        top = len(self.classes_) - 1
        indices = np.clip(np.rint(codes), 0, top)
        indices = np.where(missing, 0, indices).astype(np.int64)
        # An object-array vocabulary keeps the decoded cells as the
        # original ``str`` instances rather than NumPy unicode scalars.
        classes = np.empty(len(self.classes_), dtype=object)
        classes[:] = self.classes_
        out[:] = np.take(classes, indices)
        out[missing] = None
        return out

    def _check_fitted(self) -> None:
        if self.classes_ is None:
            raise NotFittedError("LabelEncoder used before fit()")


class MinMaxNormalizer:
    """Scale numeric values to [0, 1] over the fitted range.

    Degenerate columns (constant value) scale to 0.5 so they carry no
    signal but remain finite.
    """

    def __init__(self) -> None:
        self.minimum_: float | None = None
        self.maximum_: float | None = None

    def fit(self, values: np.ndarray) -> "MinMaxNormalizer":
        finite = np.asarray(values, dtype=np.float64)
        finite = finite[np.isfinite(finite)]
        if finite.size == 0:
            raise ValueError("cannot fit MinMaxNormalizer on all-missing column")
        self.minimum_ = float(finite.min())
        self.maximum_ = float(finite.max())
        return self

    @staticmethod
    def from_range(minimum: float, maximum: float) -> "MinMaxNormalizer":
        """Restore a fitted normalizer from its persisted range."""
        normalizer = MinMaxNormalizer()
        normalizer.minimum_ = float(minimum)
        normalizer.maximum_ = float(maximum)
        return normalizer

    @property
    def span(self) -> float:
        self._check_fitted()
        return self.maximum_ - self.minimum_

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        values = np.asarray(values, dtype=np.float64)
        if self.span == 0.0:
            out = np.full(values.shape, 0.5)
            out[~np.isfinite(values)] = np.nan
            return out
        return (values - self.minimum_) / self.span

    def inverse_transform(self, scaled: np.ndarray) -> np.ndarray:
        self._check_fitted()
        scaled = np.asarray(scaled, dtype=np.float64)
        if self.span == 0.0:
            return np.full(scaled.shape, self.minimum_)
        return scaled * self.span + self.minimum_

    def _check_fitted(self) -> None:
        if self.minimum_ is None:
            raise NotFittedError("MinMaxNormalizer used before fit()")
