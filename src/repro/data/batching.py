"""Batch sampling utilities.

Two distinct notions of "batch" appear in the paper:

* *training mini-batches* (§4.4: batch size 128) — :func:`iterate_minibatches`;
* *validation batches* (§4.2: "randomly sampling 10% to generate 50
  batches") — :func:`sample_validation_batches`.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.table import Table
from repro.utils.rng import ensure_rng

__all__ = ["iterate_minibatches", "sample_validation_batches"]


def iterate_minibatches(
    n_rows: int,
    batch_size: int,
    rng: int | np.random.Generator | None,
    shuffle: bool = True,
) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``range(n_rows)`` in chunks of ``batch_size``."""
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    order = np.arange(n_rows)
    if shuffle:
        ensure_rng(rng).shuffle(order)
    for start in range(0, n_rows, batch_size):
        yield order[start : start + batch_size]


def sample_validation_batches(
    table: Table,
    count: int,
    fraction: float = 0.1,
    size: int | None = None,
    rng: int | np.random.Generator | None = None,
) -> list[Table]:
    """Draw ``count`` independent random batches from ``table``.

    Each batch contains ``size`` rows if given, otherwise
    ``fraction * len(table)`` rows (the paper's 10% protocol, §4.2).
    Sampling is with replacement across batches (batches are independent
    draws) and without replacement within a batch.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    generator = ensure_rng(rng)
    if size is None:
        size = max(1, int(round(table.n_rows * fraction)))
    if size > table.n_rows:
        raise ValueError(f"batch size {size} exceeds table rows {table.n_rows}")
    return [table.sample(size, rng=generator) for _ in range(count)]
