"""Column-major table container.

A :class:`Table` couples a :class:`~repro.data.schema.TableSchema` with a
dict of NumPy column arrays:

* numeric columns — ``float64`` arrays; missing values are ``NaN``;
* categorical columns — ``object`` arrays of ``str``; missing is ``None``.

Tables are the lingua franca between dataset generators, error injectors,
baselines, and the DQuaG pipeline.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.data.schema import ColumnSpec, TableSchema
from repro.exceptions import SchemaError
from repro.utils.rng import ensure_rng

__all__ = ["Table"]


class Table:
    """An immutable-by-convention column-major table."""

    def __init__(self, schema: TableSchema, columns: Mapping[str, np.ndarray | list]) -> None:
        self.schema = schema
        normalized: dict[str, np.ndarray] = {}
        n_rows: int | None = None
        for spec in schema:
            if spec.name not in columns:
                raise SchemaError(f"missing column {spec.name!r}")
            normalized[spec.name] = _normalize_column(spec, columns[spec.name])
            length = len(normalized[spec.name])
            if n_rows is None:
                n_rows = length
            elif length != n_rows:
                raise SchemaError(f"column {spec.name!r} has {length} rows, expected {n_rows}")
        extra = set(columns) - set(schema.names)
        if extra:
            raise SchemaError(f"columns not in schema: {sorted(extra)}")
        self._columns = normalized
        self.n_rows = n_rows or 0

    @classmethod
    def _wrap(cls, schema: TableSchema, columns: dict, n_rows: int) -> "Table":
        """Adopt already-normalized columns without the constructor pass.

        For internal zero-copy paths (row views, binary-frame decode,
        memory-mapped files) where re-normalizing would copy or — for
        lazy frame-backed columns — materialize the data.
        """
        table = object.__new__(cls)
        table.schema = schema
        table._columns = columns
        table.n_rows = n_rows
        return table

    # -- access ------------------------------------------------------------
    @property
    def n_columns(self) -> int:
        return len(self.schema)

    def column(self, name: str) -> np.ndarray:
        """Return the column array (no copy)."""
        self.schema[name]  # raises SchemaError for unknown names
        return self._columns[name]

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:
        return f"Table(rows={self.n_rows}, columns={self.schema.names})"

    def row(self, index: int) -> dict[str, object]:
        """A single row as a name→value dict (for display/debugging)."""
        return {name: self._columns[name][index] for name in self.schema.names}

    def copy(self) -> "Table":
        return Table(self.schema, {name: col.copy() for name, col in self._columns.items()})

    # -- row selection -------------------------------------------------------
    def take(self, indices: np.ndarray | list[int]) -> "Table":
        """Select rows by integer index array."""
        indices = np.asarray(indices)
        return Table(self.schema, {name: col[indices] for name, col in self._columns.items()})

    def slice_rows(self, start: int, stop: int | None = None) -> "Table":
        """Contiguous row range ``[start, stop)`` as a **zero-copy** view.

        Column arrays are shared with this table (standard slice
        semantics: negatives count from the end, out-of-range clamps),
        and the normalization pass of the constructor is skipped — the
        rows are already normalized. This is what makes chunked
        preprocessing allocation-free: ``take(np.arange(start, stop))``
        would allocate an index array and copy every column per chunk.
        """
        start, stop, _ = slice(start, stop).indices(self.n_rows)
        return Table._wrap(
            self.schema,
            {name: col[start:stop] for name, col in self._columns.items()},
            max(0, stop - start),
        )

    def head(self, n: int) -> "Table":
        return self.slice_rows(0, max(0, n))

    def sample(self, n: int, rng: int | np.random.Generator | None = None, replace: bool = False) -> "Table":
        """Uniform random row sample."""
        generator = ensure_rng(rng)
        if not replace and n > self.n_rows:
            raise ValueError(f"cannot sample {n} rows from {self.n_rows} without replacement")
        indices = generator.choice(self.n_rows, size=n, replace=replace)
        return self.take(indices)

    def split(self, fraction: float, rng: int | np.random.Generator | None = None) -> tuple["Table", "Table"]:
        """Random (fraction, 1-fraction) row split."""
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        generator = ensure_rng(rng)
        order = generator.permutation(self.n_rows)
        cut = int(round(self.n_rows * fraction))
        return self.take(order[:cut]), self.take(order[cut:])

    # -- column modification (functional style) ----------------------------
    def with_column(self, name: str, values: np.ndarray | list) -> "Table":
        """Return a new table with one column replaced."""
        if name not in self.schema:
            raise SchemaError(f"no column {name!r} in schema")
        columns = dict(self._columns)
        columns[name] = values
        return Table(self.schema, columns)

    def select(self, names: list[str]) -> "Table":
        """Return a new table restricted to ``names``."""
        sub_schema = self.schema.subset(names)
        return Table(sub_schema, {name: self._columns[name] for name in names})

    # -- missing-value helpers -----------------------------------------------
    def missing_mask(self) -> np.ndarray:
        """Boolean (n_rows, n_columns) mask of missing cells, schema order."""
        mask = np.zeros((self.n_rows, self.n_columns), dtype=bool)
        for j, spec in enumerate(self.schema):
            col = self._columns[spec.name]
            if spec.is_numeric:
                mask[:, j] = np.isnan(col)
            else:
                mask[:, j] = np.array([v is None for v in col], dtype=bool)
        return mask

    def missing_fraction(self, name: str) -> float:
        spec = self.schema[name]
        col = self._columns[name]
        if self.n_rows == 0:
            return 0.0
        if spec.is_numeric:
            return float(np.isnan(col).mean())
        return float(np.mean([v is None for v in col]))

    # -- JSON row records ----------------------------------------------------
    def to_records(self) -> list[dict]:
        """Rows as JSON-native dicts (missing cells become ``None``).

        The wire form consumed by :mod:`repro.api` requests: numeric NaN
        maps to ``None`` and back, so a record round-trip preserves the
        table's missing-value structure exactly.
        """
        names = self.schema.names
        # One vectorized pass per column; the row loop below only zips
        # ready-made Python lists (no per-cell NumPy scalar boxing).
        values_by_column: list[list] = []
        for spec in self.schema:
            column = self._columns[spec.name]
            values = column.tolist()
            if spec.is_numeric:
                missing = np.isnan(column)
                if missing.any():
                    values = [
                        None if absent else value
                        for value, absent in zip(values, missing.tolist())
                    ]
            values_by_column.append(values)
        return [dict(zip(names, row)) for row in zip(*values_by_column)]

    @staticmethod
    def from_records(schema: TableSchema, records: Iterable[Mapping]) -> "Table":
        """Build a table from JSON row dicts against ``schema``.

        ``None``/absent fields become missing cells (NaN for numeric
        columns); fields not in the schema are rejected so field-name
        typos cannot silently drop data.
        """
        records = list(records)
        unknown = sorted({key for record in records for key in record} - set(schema.names))
        if unknown:
            raise SchemaError(f"record fields not in schema: {unknown}")
        columns: dict[str, np.ndarray | list] = {}
        for spec in schema:
            values = [record.get(spec.name) for record in records]
            if spec.is_numeric:
                # One C-level conversion pass (None becomes NaN) instead
                # of a per-record Python float() loop.
                try:
                    column = np.array(values, dtype=np.float64)
                except (TypeError, ValueError) as exc:
                    raise SchemaError(
                        f"column {spec.name!r} holds a non-numeric value: {exc}"
                    ) from None
                if column.ndim != 1:
                    raise SchemaError(
                        f"column {spec.name!r} holds nested values "
                        f"(converted shape {column.shape})"
                    )
                columns[spec.name] = column
            else:
                columns[spec.name] = values
        return Table(schema, columns)

    # -- binary frame files (repro.api.framing) ------------------------------
    @staticmethod
    def from_frame_file(path, schema: TableSchema | None = None) -> "Table":
        """Memory-map a binary columnar frame file as an out-of-core table.

        Column data stays on disk behind ``mmap`` until a row window is
        sliced, so the streaming validation path
        (:meth:`~repro.runtime.streaming.StreamingValidator.validate_table`)
        runs a file much larger than RAM in bounded memory. ``schema``
        pins the expected columns; see :func:`repro.api.framing.open_frame_file`.
        """
        from repro.api.framing import open_frame_file

        return open_frame_file(path, schema=schema)

    def to_frame_file(self, path, chunk_rows: int = 65536):
        """Spill this table to a frame file in ``chunk_rows``-row frames.

        The produced file round-trips through :meth:`from_frame_file`
        and doubles as a framed ``/validate_stream`` request body.
        """
        from repro.api.framing import write_frame_file

        return write_frame_file(self, path, chunk_rows=chunk_rows)

    # -- constructors ---------------------------------------------------------
    @staticmethod
    def concat(tables: Iterable["Table"]) -> "Table":
        """Stack tables with identical schemas."""
        tables = list(tables)
        if not tables:
            raise ValueError("concat of zero tables")
        schema = tables[0].schema
        for table in tables[1:]:
            if table.schema != schema:
                raise SchemaError("cannot concat tables with different schemas")
        return Table(
            schema,
            {name: np.concatenate([t.column(name) for t in tables]) for name in schema.names},
        )


def _normalize_column(spec: ColumnSpec, values: np.ndarray | list) -> np.ndarray:
    if spec.is_numeric:
        try:
            array = np.asarray(values, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise SchemaError(f"column {spec.name!r} is not numeric: {exc}") from None
        if array.ndim != 1:
            raise SchemaError(f"column {spec.name!r} must be 1-D, got shape {array.shape}")
        return array
    array = np.empty(len(values), dtype=object)
    for i, value in enumerate(values):
        if value is None or (isinstance(value, float) and np.isnan(value)):
            array[i] = None
        else:
            array[i] = str(value)
    return array
