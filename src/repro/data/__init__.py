"""Data layer: schemas, tables, encoding, preprocessing, batching, io."""

from repro.data.schema import ColumnKind, ColumnSpec, TableSchema
from repro.data.table import Table
from repro.data.encoders import LabelEncoder, MinMaxNormalizer
from repro.data.plan import TransformPlan
from repro.data.preprocess import TablePreprocessor
from repro.data.batching import iterate_minibatches, sample_validation_batches
from repro.data.io import read_csv, read_csv_chunks, write_csv

__all__ = [
    "ColumnKind",
    "ColumnSpec",
    "TableSchema",
    "Table",
    "LabelEncoder",
    "MinMaxNormalizer",
    "TransformPlan",
    "TablePreprocessor",
    "iterate_minibatches",
    "sample_validation_batches",
    "read_csv",
    "read_csv_chunks",
    "write_csv",
]
