"""Table schemas: typed column specifications.

A :class:`TableSchema` describes the columns of a tabular dataset — the
names (``F``) and descriptions (``D``) referenced by the paper's feature
graph construction step (§3.1.1) — and is the contract every component
(preprocessing, validation, baselines) checks tables against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import SchemaError

__all__ = ["ColumnKind", "ColumnSpec", "TableSchema"]


class ColumnKind:
    """Column type tags (string enum kept simple for serialization)."""

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"

    ALL = (NUMERIC, CATEGORICAL)


@dataclass(frozen=True)
class ColumnSpec:
    """Specification of a single column.

    Parameters
    ----------
    name:
        Column identifier, unique within a schema.
    kind:
        ``ColumnKind.NUMERIC`` or ``ColumnKind.CATEGORICAL``.
    description:
        Human-readable description (the ``D`` input of §3.1.1).
    categories:
        For categorical columns, the known domain; extendable at
        encoder-fit time with anticipated future values.
    minimum / maximum:
        Optional soft range hints for numeric columns (documentation and
        expert-constraint construction; not enforced on data).
    """

    name: str
    kind: str
    description: str = ""
    categories: tuple[str, ...] = field(default=())
    minimum: float | None = None
    maximum: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ColumnKind.ALL:
            raise SchemaError(f"column {self.name!r}: unknown kind {self.kind!r}")
        if self.kind == ColumnKind.NUMERIC and self.categories:
            raise SchemaError(f"column {self.name!r}: numeric columns cannot declare categories")

    @property
    def is_numeric(self) -> bool:
        return self.kind == ColumnKind.NUMERIC

    @property
    def is_categorical(self) -> bool:
        return self.kind == ColumnKind.CATEGORICAL

    def to_dict(self) -> dict:
        """JSON-serializable form (used by pipeline weight archives)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "description": self.description,
            "categories": list(self.categories),
            "minimum": self.minimum,
            "maximum": self.maximum,
        }

    @staticmethod
    def from_dict(payload: dict) -> "ColumnSpec":
        return ColumnSpec(
            name=payload["name"],
            kind=payload["kind"],
            description=payload.get("description", ""),
            categories=tuple(payload.get("categories", ())),
            minimum=payload.get("minimum"),
            maximum=payload.get("maximum"),
        )


class TableSchema:
    """An ordered collection of :class:`ColumnSpec`."""

    def __init__(self, columns: list[ColumnSpec] | tuple[ColumnSpec, ...]) -> None:
        columns = list(columns)
        if not columns:
            raise SchemaError("schema must declare at least one column")
        names = [c.name for c in columns]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SchemaError(f"duplicate column names: {sorted(duplicates)}")
        self._columns = tuple(columns)
        self._by_name = {c.name: c for c in columns}

    # -- access -----------------------------------------------------------
    @property
    def columns(self) -> tuple[ColumnSpec, ...]:
        return self._columns

    @property
    def names(self) -> list[str]:
        return [c.name for c in self._columns]

    @property
    def descriptions(self) -> dict[str, str]:
        return {c.name: c.description for c in self._columns}

    @property
    def numeric_names(self) -> list[str]:
        return [c.name for c in self._columns if c.is_numeric]

    @property
    def categorical_names(self) -> list[str]:
        return [c.name for c in self._columns if c.is_categorical]

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self):
        return iter(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> ColumnSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"no column {name!r} in schema (have {self.names})") from None

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TableSchema) and self._columns == other._columns

    def __repr__(self) -> str:
        kinds = ", ".join(f"{c.name}:{c.kind[0]}" for c in self._columns)
        return f"TableSchema({kinds})"

    def index_of(self, name: str) -> int:
        """Position of ``name`` in schema order."""
        for i, column in enumerate(self._columns):
            if column.name == name:
                return i
        raise SchemaError(f"no column {name!r} in schema")

    def subset(self, names: list[str]) -> "TableSchema":
        """New schema restricted to ``names`` (kept in the given order)."""
        return TableSchema([self[name] for name in names])

    def to_dict(self) -> dict:
        """JSON-serializable form (used by pipeline weight archives)."""
        return {"columns": [spec.to_dict() for spec in self._columns]}

    @staticmethod
    def from_dict(payload: dict) -> "TableSchema":
        return TableSchema([ColumnSpec.from_dict(spec) for spec in payload["columns"]])
