"""Compiled preprocessing plans: scan-rate table → model-matrix encoding.

:meth:`TablePreprocessor.compile() <repro.data.preprocess.TablePreprocessor.compile>`
freezes all fitted encoder state into a :class:`TransformPlan` — the
preprocessing twin of what :class:`~repro.runtime.engine.InferenceEngine`
does for the model:

* numeric columns run as whole-column array ops against precomputed
  per-column affine vectors (the fitted minimum/span per feature). The
  affine is applied as ``(x - minimum) / span`` — the exact operation
  order of the legacy :class:`~repro.data.encoders.MinMaxNormalizer` —
  rather than a fused multiply-add, because the plan's contract is
  **bit-identical** output: reports, goldens, and calibrated thresholds
  must not move by a single ulp when a consumer switches to the plan;
* categorical columns encode via ``np.searchsorted`` over a sorted
  vocabulary of string arrays — no per-value dict lookups. Unknown
  values land directly at ``1 + unknown_margin``, missing cells at the
  sentinel, all as array ops;
* :meth:`TransformPlan.transform_into` writes straight into a
  caller-provided output buffer, so chunked consumers (the streaming
  validator, shard workers) run allocation-free: one buffer per stream,
  reused for every chunk.

A plan is immutable after construction and safe to share across threads
(the serving layer calls one plan from many request threads at once).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.schema import TableSchema
from repro.data.table import Table
from repro.exceptions import SchemaError

__all__ = ["TransformPlan"]


class _NumericStep:
    """Fused per-column affine for one numeric column."""

    __slots__ = ("index", "name", "minimum", "span", "degenerate")

    def __init__(self, index: int, name: str, minimum: float, maximum: float) -> None:
        self.index = index
        self.name = name
        self.minimum = float(minimum)
        self.span = float(maximum) - float(minimum)
        self.degenerate = self.span == 0.0


class _CategoricalStep:
    """Sorted-vocabulary encoder for one categorical column.

    The vocabulary is frozen into fixed-width string arrays so encoding
    one chunk is a handful of C passes: cast the object column to a
    fixed-width string array, resolve a *candidate* code per value, then
    verify every candidate with one exact object-level comparison
    against the original class strings (unknowns fall out of the
    verification). Candidate selection never has to be exact — only
    complete (a value equal to a class always selects that class) — so
    fixed-width quirks like NumPy treating trailing NULs as padding
    cannot leak into the result: the exact verification rejects them,
    keeping the plan bit-identical to the legacy dict lookup. The codes
    gathered are the original fitted ones, so plans restored from
    :meth:`LabelEncoder.from_classes` with an unsorted vocabulary still
    assign the exact legacy codes.

    Candidate-selection tiers, chosen at compile time:

    * **prefix LUT** — ASCII vocabularies whose first two bytes are
      unique (the common case) resolve candidates with one gather
      through a 64k lookup table — no search at all;
    * **bytes** — ASCII vocabularies with unique 8-byte prefixes binary-
      search a ``uint64`` view of the first lane, ~2× faster than
      string binary search;
    * **unicode** — anything else (non-ASCII classes, shared prefixes)
      binary-searches the fixed-width unicode vocabulary;
    * **exact dict** — vocabularies whose fixed-width forms collide
      (classes differing only in trailing NULs) fall back to the legacy
      per-value lookup, which is exact by construction.

    Missing cells (``None``) cast to the string ``"None"``; positions
    matching that token are re-checked against the *object* column so a
    genuine ``"None"`` category or string never collides with missing.
    """

    __slots__ = (
        "index", "name", "unknown_code", "minimum", "span", "degenerate",
        "n_classes", "obj_vocab", "exact_of",
        "byte_dtype", "byte_keys", "byte_codes",
        "prefix_lut", "uni_dtype", "uni_vocab", "uni_codes",
    )

    def __init__(
        self,
        index: int,
        name: str,
        classes: list[str],
        minimum: float,
        maximum: float,
    ) -> None:
        self.index = index
        self.name = name
        self.n_classes = len(classes)
        self.unknown_code = len(classes)
        self.minimum = float(minimum)
        self.span = float(maximum) - float(minimum)
        self.degenerate = self.span == 0.0

        # Exact verification vocabulary: the original ``str`` objects in
        # fitted-code order, compared per candidate via ``np.equal``.
        self.obj_vocab = np.empty(len(classes), dtype=object)
        self.obj_vocab[:] = classes

        # -- unicode tier (always available) --------------------------
        # Cast width exceeds every class by one: a longer value may be
        # truncated, but its truncation still exceeds every vocabulary
        # entry in length, so it can never falsely match. The floor of 5
        # keeps the "None" missing token untruncated.
        width = max(max((len(c) for c in classes), default=0) + 1, 5)
        self.uni_dtype = f"U{width}"
        order = np.argsort(np.asarray(classes, dtype=self.uni_dtype), kind="stable") if classes else np.empty(0, dtype=np.int64)
        self.uni_vocab = np.asarray(classes, dtype=self.uni_dtype)[order] if classes else np.empty(0, dtype=self.uni_dtype)
        self.uni_codes = np.asarray(order, dtype=np.int64)

        # -- exact-dict tier: colliding fixed-width forms --------------
        # Classes that differ only past the fixed width (trailing NULs)
        # are indistinguishable to every vectorized tier; keep legacy
        # per-value lookup for such (pathological) vocabularies.
        self.exact_of = None
        if classes and len(np.unique(self.uni_vocab)) != len(classes):
            self.exact_of = {value: code for code, value in enumerate(classes)}

        # -- bytes tiers (ASCII vocabularies) --------------------------
        self.byte_dtype = None
        self.prefix_lut = None
        if classes and self.exact_of is None:
            byte_width = -(-width // 8) * 8  # lanes of 8 for the uint64 view
            try:
                encoded = np.asarray(classes, dtype=f"S{byte_width}")
            except UnicodeEncodeError:
                encoded = None
            if encoded is not None:
                # Fastest: a 64k lookup table over the first two bytes —
                # one gather per value instead of a binary search.
                prefix16 = encoded.view(np.uint16).reshape(len(classes), -1)[:, 0]
                if len(np.unique(prefix16)) == len(classes):
                    self.byte_dtype = f"S{byte_width}"
                    lut = np.full(1 << 16, len(classes), dtype=np.int32)
                    lut[prefix16] = np.arange(len(classes), dtype=np.int32)
                    self.prefix_lut = lut
                else:
                    # Next best: binary search over uint64 first lanes.
                    prefixes = encoded.view(np.uint64).reshape(len(classes), -1)[:, 0]
                    if len(np.unique(prefixes)) == len(classes):
                        key_order = np.argsort(prefixes, kind="stable")
                        self.byte_dtype = f"S{byte_width}"
                        self.byte_keys = prefixes[key_order]
                        self.byte_codes = np.asarray(key_order, dtype=np.int64)

    def encode_codes(self, segment: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(codes, matched, missing)`` for one object-array segment.

        ``segment`` is a normalized Table column slice (``str`` or
        ``None`` entries). Matched values get their fitted code,
        everything else the unknown code — exactly the legacy
        :meth:`LabelEncoder.transform` outcome, minus the NaN for
        missing cells (the caller writes the sentinel there directly,
        which is where the legacy NaNs end up anyway).
        """
        n = segment.shape[0]
        if self.n_classes == 0:
            matched = np.zeros(n, dtype=bool)
            return np.full(n, float(self.unknown_code)), matched, np.equal(segment, None)
        if self.exact_of is not None:
            return self._encode_exact(segment)
        candidates = None
        if self.byte_dtype is not None:
            try:
                values = np.asarray(segment, dtype=self.byte_dtype)
            except UnicodeEncodeError:
                # Non-ASCII *data* over an ASCII vocabulary: take the
                # unicode tier for this chunk.
                values = None
            if values is not None:
                if self.prefix_lut is not None:
                    prefixes = values.view(np.uint16).reshape(n, -1)[:, 0]
                    candidates = np.minimum(self.prefix_lut[prefixes], self.n_classes - 1)
                else:
                    lanes = values.view(np.uint64).reshape(n, -1)
                    positions = np.searchsorted(self.byte_keys, lanes[:, 0])
                    candidates = self.byte_codes[np.minimum(positions, self.n_classes - 1)]
                token_hits = values == b"None"
        if candidates is None:
            values = np.asarray(segment, dtype=self.uni_dtype)
            positions = np.searchsorted(self.uni_vocab, values)
            candidates = self.uni_codes[np.minimum(positions, self.n_classes - 1)]
            token_hits = values == "None"
        # Exact verification: candidates were selected in fixed-width
        # space (where e.g. trailing NULs compare as padding); the
        # object-level comparison is what decides a match, so the result
        # agrees with the legacy dict lookup on every value.
        matched = np.equal(segment, self.obj_vocab[candidates])
        codes = np.where(matched, candidates, self.unknown_code)
        return codes.astype(np.float64), matched, self._missing_mask(segment, token_hits)

    def _encode_exact(self, segment: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Legacy per-value encode for vocabularies no fixed-width form
        can discriminate (classes differing only in trailing NULs)."""
        n = segment.shape[0]
        codes = np.empty(n, dtype=np.float64)
        matched = np.zeros(n, dtype=bool)
        missing = np.zeros(n, dtype=bool)
        lookup = self.exact_of
        for i, value in enumerate(segment):
            if value is None:
                missing[i] = True
                codes[i] = self.unknown_code
                continue
            code = lookup.get(value, self.unknown_code)
            codes[i] = code
            matched[i] = code != self.unknown_code
        return codes, matched, missing

    @staticmethod
    def _missing_mask(segment: np.ndarray, candidates: np.ndarray) -> np.ndarray:
        """None mask via the fixed-width token scan.

        ``None`` cells cast to the ``"None"`` token; only candidate
        positions are re-checked at the object level, so the common
        no-missing chunk costs one vector comparison, not a per-value
        ``is None`` pass.
        """
        missing = np.zeros(segment.shape[0], dtype=bool)
        if candidates.any():
            positions = np.flatnonzero(candidates)
            missing[positions] = np.equal(segment[positions], None)
        return missing


class TransformPlan:
    """All fitted preprocessing state, compiled for vectorized execution.

    Construct via
    :meth:`TablePreprocessor.compile() <repro.data.preprocess.TablePreprocessor.compile>`;
    the constructor mirrors the preprocessor's persisted metadata
    (``label_classes`` + ``normalizer_ranges``) so a plan can also be
    built straight from an archive.

    Guarantee: for every table, :meth:`transform` is **bit-identical**
    to the legacy :meth:`TablePreprocessor.transform` — enforced by the
    differential fuzz suite in ``tests/test_differential.py``.
    """

    def __init__(
        self,
        schema: TableSchema,
        missing_sentinel: float,
        unknown_margin: float,
        label_classes: dict[str, list[str]],
        normalizer_ranges: dict[str, tuple[float, float]],
    ) -> None:
        self.schema = schema
        self.missing_sentinel = float(missing_sentinel)
        self.unknown_value = 1.0 + float(unknown_margin)
        self._numeric: list[_NumericStep] = []
        self._categorical: list[_CategoricalStep] = []
        for j, spec in enumerate(schema):
            try:
                minimum, maximum = normalizer_ranges[spec.name]
            except KeyError:
                raise SchemaError(f"no fitted range for column {spec.name!r}") from None
            if spec.is_categorical:
                classes = [str(v) for v in label_classes.get(spec.name, [])]
                self._categorical.append(
                    _CategoricalStep(j, spec.name, classes, minimum, maximum)
                )
            else:
                self._numeric.append(_NumericStep(j, spec.name, minimum, maximum))

    @property
    def n_features(self) -> int:
        return len(self.schema)

    # -- execution -----------------------------------------------------------
    def transform(self, table: Table, out: np.ndarray | None = None) -> np.ndarray:
        """Encode a whole table; equivalent to the legacy ``transform()``."""
        if out is None:
            out = np.empty((table.n_rows, self.n_features), dtype=np.float64)
        return self.transform_into(table, out)

    def transform_into(
        self,
        table: Table,
        out: np.ndarray,
        start: int = 0,
        stop: int | None = None,
    ) -> np.ndarray:
        """Encode rows ``[start, stop)`` of ``table`` into ``out``.

        Writes into ``out[:n]`` (``n`` rows after slice clamping) and
        returns that view — the caller owns the buffer and can reuse it
        for every chunk of a stream without a single new allocation.
        """
        if table.schema != self.schema:
            raise SchemaError("table schema does not match preprocessor schema")
        start, stop, _ = slice(start, stop).indices(table.n_rows)
        n = max(0, stop - start)
        if not isinstance(out, np.ndarray):
            # Rebinding through np.asarray would silently write into a
            # temporary and leave the caller's buffer untouched.
            raise TypeError(f"out buffer must be an ndarray, got {type(out).__name__}")
        if out.dtype != np.float64 or out.ndim != 2 or out.shape[1] != self.n_features:
            raise ValueError(
                f"out buffer must be float64 with shape (>= {n}, {self.n_features}), "
                f"got {out.dtype} {out.shape}"
            )
        if out.shape[0] < n:
            raise ValueError(f"out buffer holds {out.shape[0]} rows, chunk needs {n}")
        view = out[:n]
        if n == 0:
            return view

        for step in self._numeric:
            segment = table.column(step.name)[start:stop]
            dest = view[:, step.index]
            if step.degenerate:
                # Legacy: constant columns scale to 0.5; non-finite
                # inputs become NaN, which the sentinel pass absorbs.
                dest.fill(0.5)
                dest[~np.isfinite(segment)] = self.missing_sentinel
            else:
                np.subtract(segment, step.minimum, out=dest)
                np.divide(dest, step.span, out=dest)
                # The legacy path checks finiteness of the *scaled*
                # matrix (input NaN/inf and overflow all funnel here).
                dest[~np.isfinite(dest)] = self.missing_sentinel

        for step in self._categorical:
            segment = table.column(step.name)[start:stop]
            dest = view[:, step.index]
            codes, matched, missing = step.encode_codes(segment)
            if step.degenerate:
                dest.fill(0.5)
            else:
                np.subtract(codes, step.minimum, out=dest)
                np.divide(dest, step.span, out=dest)
            dest[~matched] = self.unknown_value
            dest[missing] = self.missing_sentinel
        return view

    def transform_chunks(
        self,
        table: Table,
        chunk_size: int = 8192,
        reuse_buffer: bool = True,
    ) -> Iterator[np.ndarray]:
        """Encode ``table`` in row slices of at most ``chunk_size``.

        With ``reuse_buffer=True`` (the streaming default) every yielded
        matrix is a view into one shared buffer that the *next*
        iteration overwrites — consumers must finish with a chunk before
        advancing, which every sequential fold does by construction.
        Pass ``reuse_buffer=False`` to get independent arrays.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if table.schema != self.schema:
            raise SchemaError("table schema does not match preprocessor schema")
        shared = (
            np.empty((min(chunk_size, max(table.n_rows, 1)), self.n_features), dtype=np.float64)
            if reuse_buffer
            else None
        )
        for start in range(0, table.n_rows, chunk_size):
            stop = min(start + chunk_size, table.n_rows)
            if shared is None:
                yield self.transform_into(
                    table, np.empty((stop - start, self.n_features), dtype=np.float64), start, stop
                )
            else:
                yield self.transform_into(table, shared, start, stop)

    def __repr__(self) -> str:
        return (
            f"TransformPlan(features={self.n_features}, "
            f"categorical={len(self._categorical)}, numeric={len(self._numeric)})"
        )
