"""Table → model-matrix preprocessing (paper §3.1).

:class:`TablePreprocessor` is fitted on the clean dataset and applies the
paper's encoding consistently to any later table with the same schema:

1. categorical columns: label-encode (codes fitted over clean ∪ declared /
   anticipated categories), then min-max scale the codes to [0, 1];
2. numeric columns: min-max scale to [0, 1] over the clean range;
3. missing cells: replaced by a sentinel (default −1.0) *after* scaling —
   far outside the clean manifold, so they reconstruct poorly and are
   flagged without any missing-value rule.

``inverse_transform`` maps a model-space matrix back to a :class:`Table`,
snapping categorical predictions to the nearest valid category.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.encoders import LabelEncoder, MinMaxNormalizer
from repro.data.plan import TransformPlan
from repro.data.schema import TableSchema
from repro.data.table import Table
from repro.exceptions import NotFittedError, SchemaError

__all__ = ["TablePreprocessor"]


class TablePreprocessor:
    """Fit-on-clean, apply-anywhere table encoder.

    ``unknown_margin`` places categories never seen at fit time at
    ``1 + unknown_margin`` in model space — clearly outside the [0, 1]
    band the clean categories occupy, so typos and novel values produce
    unmistakable reconstruction outliers even in columns the model finds
    intrinsically hard to predict.
    """

    def __init__(
        self,
        schema: TableSchema,
        missing_sentinel: float = -1.0,
        unknown_margin: float = 0.5,
    ) -> None:
        if unknown_margin < 0:
            raise ValueError(f"unknown_margin must be >= 0, got {unknown_margin}")
        self.schema = schema
        self.missing_sentinel = missing_sentinel
        self.unknown_margin = unknown_margin
        self._label_encoders: dict[str, LabelEncoder] = {}
        self._normalizers: dict[str, MinMaxNormalizer] = {}
        self._fitted = False
        self._plan: TransformPlan | None = None

    # -- fitting ------------------------------------------------------------
    def fit(self, table: Table, future_categories: dict[str, list[str]] | None = None) -> "TablePreprocessor":
        """Fit encoders on the clean table.

        ``future_categories`` maps column name → anticipated category
        values, implementing the paper's requirement that the label
        encoder covers "any possible future data".
        """
        if table.schema != self.schema:
            raise SchemaError("table schema does not match preprocessor schema")
        future_categories = future_categories or {}
        for spec in self.schema:
            column = table.column(spec.name)
            if spec.is_categorical:
                extra = list(spec.categories) + list(future_categories.get(spec.name, []))
                encoder = LabelEncoder().fit(column, extra_values=extra)
                self._label_encoders[spec.name] = encoder
                # Scale the *known* codes onto [0, 1]; unknown values are
                # placed at 1 + unknown_margin in transform().
                normalizer = MinMaxNormalizer()
                normalizer.fit(np.arange(0, max(encoder.unknown_code, 2), dtype=np.float64))
                self._normalizers[spec.name] = normalizer
            else:
                self._normalizers[spec.name] = MinMaxNormalizer().fit(column)
        self._plan = None  # refitting invalidates any compiled plan
        self._fitted = True
        return self

    # -- compiled execution --------------------------------------------------
    def compile(self) -> TransformPlan:
        """The compiled :class:`~repro.data.plan.TransformPlan` (cached).

        The plan encodes tables bit-identically to :meth:`transform`
        with vectorized categorical encoding and buffer-reusing chunked
        execution — the preprocessing hot path every serving consumer
        (validator, streaming, shard workers, drift monitor) runs on.
        :meth:`transform` below is kept as the scalar reference
        implementation the differential suite checks the plan against.
        """
        self._check_fitted()
        plan = self._plan
        if plan is None:
            # Benign race: concurrent first calls each build a plan and
            # one wins — plans are immutable and interchangeable.
            plan = TransformPlan(
                self.schema,
                missing_sentinel=self.missing_sentinel,
                unknown_margin=self.unknown_margin,
                label_classes={
                    name: list(encoder.classes_)
                    for name, encoder in self._label_encoders.items()
                },
                normalizer_ranges={
                    name: (normalizer.minimum_, normalizer.maximum_)
                    for name, normalizer in self._normalizers.items()
                },
            )
            self._plan = plan
        return plan

    # -- transform -------------------------------------------------------------
    def transform(self, table: Table) -> np.ndarray:
        """Encode ``table`` to a ``(n_rows, n_features)`` float matrix.

        This is the *reference* implementation (per-value label
        encoding); serving paths run the compiled, bit-identical
        :meth:`compile` plan instead.
        """
        self._check_fitted()
        if table.schema != self.schema:
            raise SchemaError("table schema does not match preprocessor schema")
        matrix = np.empty((table.n_rows, len(self.schema)), dtype=np.float64)
        for j, spec in enumerate(self.schema):
            column = table.column(spec.name)
            if spec.is_categorical:
                encoder = self._label_encoders[spec.name]
                codes = encoder.transform(column)
                scaled = self._normalizers[spec.name].transform(codes)
                scaled[codes == encoder.unknown_code] = 1.0 + self.unknown_margin
                matrix[:, j] = scaled
            else:
                matrix[:, j] = self._normalizers[spec.name].transform(column)
        matrix[~np.isfinite(matrix)] = self.missing_sentinel
        return matrix

    def transform_chunks(self, table: Table, chunk_size: int = 8192) -> Iterator[np.ndarray]:
        """Encode ``table`` in row slices of at most ``chunk_size``.

        Row encoding is independent of other rows (all fit-time state is
        frozen), so the concatenated chunks equal :meth:`transform` of
        the whole table. Chunks are zero-copy row views
        (:meth:`Table.slice_rows`) encoded through the compiled plan;
        each yielded matrix is independently owned by the caller. The
        streaming validator goes one step further and runs
        :meth:`TransformPlan.transform_chunks` with a reused buffer.
        """
        self._check_fitted()
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if table.schema != self.schema:
            raise SchemaError("table schema does not match preprocessor schema")
        plan = self.compile()
        for start in range(0, table.n_rows, chunk_size):
            yield plan.transform(table.slice_rows(start, start + chunk_size))

    def inverse_transform(self, matrix: np.ndarray) -> Table:
        """Decode a model-space matrix back into a :class:`Table`."""
        self._check_fitted()
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != len(self.schema):
            raise ValueError(f"matrix shape {matrix.shape} does not match schema width {len(self.schema)}")
        columns: dict[str, np.ndarray] = {}
        for j, spec in enumerate(self.schema):
            values = matrix[:, j]
            denormalized = self._normalizers[spec.name].inverse_transform(values)
            if spec.is_categorical:
                columns[spec.name] = self._label_encoders[spec.name].inverse_transform(denormalized)
            else:
                columns[spec.name] = denormalized
        return Table(self.schema, columns)

    # -- introspection ------------------------------------------------------------
    @property
    def n_features(self) -> int:
        return len(self.schema)

    def label_encoder(self, name: str) -> LabelEncoder:
        self._check_fitted()
        if name not in self._label_encoders:
            raise SchemaError(f"column {name!r} is not categorical")
        return self._label_encoders[name]

    def normalizer(self, name: str) -> MinMaxNormalizer:
        self._check_fitted()
        return self._normalizers[name]

    def valid_code_positions(self, name: str) -> np.ndarray:
        """Scaled positions of each valid category of column ``name``.

        Used by the repair engine to snap a predicted scaled value to the
        nearest legitimate category.
        """
        encoder = self.label_encoder(name)
        codes = np.arange(len(encoder.classes_), dtype=np.float64)
        return self._normalizers[name].transform(codes)

    # -- persistence --------------------------------------------------------
    def to_metadata(self) -> dict:
        """JSON-serializable snapshot of all fitted encoder state.

        Persisted in pipeline weight archives so a reloaded pipeline
        encodes categories and scales values *identically* to the fitted
        one — refitting on a (possibly different) clean table would
        silently shift codes and invalidate the calibrated threshold.
        """
        self._check_fitted()
        return {
            "schema": self.schema.to_dict(),
            "missing_sentinel": self.missing_sentinel,
            "unknown_margin": self.unknown_margin,
            "label_classes": {name: list(enc.classes_) for name, enc in self._label_encoders.items()},
            "normalizer_ranges": {
                name: {"minimum": norm.minimum_, "maximum": norm.maximum_}
                for name, norm in self._normalizers.items()
            },
        }

    @staticmethod
    def from_metadata(payload: dict) -> "TablePreprocessor":
        """Restore a fitted preprocessor from :meth:`to_metadata` output."""
        schema = TableSchema.from_dict(payload["schema"])
        preprocessor = TablePreprocessor(
            schema,
            missing_sentinel=payload["missing_sentinel"],
            unknown_margin=payload["unknown_margin"],
        )
        preprocessor._label_encoders = {
            name: LabelEncoder.from_classes(classes)
            for name, classes in payload["label_classes"].items()
        }
        preprocessor._normalizers = {
            name: MinMaxNormalizer.from_range(rng["minimum"], rng["maximum"])
            for name, rng in payload["normalizer_ranges"].items()
        }
        preprocessor._fitted = True
        return preprocessor

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError("TablePreprocessor used before fit()")
