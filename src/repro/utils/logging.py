"""Package-wide logging helpers.

All modules obtain loggers through :func:`get_logger` so the package shares
one namespace (``repro.*``) and applications can configure it in one place.
The library itself never calls ``basicConfig``.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``get_logger("core.trainer")`` and ``get_logger("repro.core.trainer")``
    resolve to the same logger.
    """
    if not name:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def configure_demo_logging(level: int = logging.INFO) -> None:
    """Opt-in console logging used by the example scripts and the CLI."""
    logger = logging.getLogger(_ROOT_NAME)
    if logger.handlers:
        return
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s"))
    logger.addHandler(handler)
    logger.setLevel(level)
