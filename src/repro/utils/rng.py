"""Deterministic random-number management.

The library never touches NumPy's global RNG state.  Every stochastic
component accepts either an integer seed or a ``numpy.random.Generator``
and normalizes it through :func:`ensure_rng`.  Sub-streams for independent
components are derived with :func:`derive_rng` / :func:`spawn_seeds` so
that adding a consumer never perturbs the draws seen by another.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a ``Generator`` for ``seed``.

    ``None`` produces a fresh non-deterministic generator, an ``int`` a
    seeded one, and an existing ``Generator`` is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(seed: int | np.random.Generator | None, *keys: object) -> np.random.Generator:
    """Derive an independent generator keyed by ``keys``.

    Deriving with the same (seed, keys) pair always yields the same
    stream; different key tuples yield statistically independent streams.
    """
    if isinstance(seed, np.random.Generator):
        # Fork deterministically from the generator's own bit stream.
        child_seed = int(seed.integers(0, 2**63 - 1))
    elif seed is None:
        child_seed = int(np.random.default_rng().integers(0, 2**63 - 1))
    else:
        child_seed = int(seed)
    mix = np.random.SeedSequence([child_seed, _hash_keys(keys)])
    return np.random.default_rng(mix)


def spawn_seeds(seed: int, count: int) -> list[int]:
    """Produce ``count`` independent integer seeds derived from ``seed``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    children = np.random.SeedSequence(seed).spawn(count)
    return [int(child.generate_state(1)[0]) for child in children]


def _hash_keys(keys: tuple[object, ...]) -> int:
    """Stable non-negative hash of a key tuple (independent of PYTHONHASHSEED)."""
    acc = 1469598103934665603  # FNV-1a offset basis
    for key in keys:
        for byte in repr(key).encode("utf-8"):
            acc ^= byte
            acc = (acc * 1099511628211) % (2**63)
    return acc
