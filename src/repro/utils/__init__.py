"""Shared utilities: RNG management, logging, timing."""

from repro.utils.rng import derive_rng, ensure_rng, spawn_seeds
from repro.utils.logging import get_logger
from repro.utils.timing import Timer

__all__ = ["derive_rng", "ensure_rng", "spawn_seeds", "get_logger", "Timer"]
