"""Prometheus text exposition of service + monitor state.

Renders :class:`~repro.runtime.service.ServiceStats` and per-pipeline
:class:`~repro.monitor.monitor.MonitorSnapshot` objects in the
Prometheus text format (version 0.0.4) — what the gateway serves at
``GET /v1/metrics`` so a scraper can chart validation traffic and drift
scores without speaking the JSON protocol.
"""

from __future__ import annotations

__all__ = ["PROMETHEUS_CONTENT_TYPE", "render_prometheus"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(**labels: str) -> str:
    inner = ",".join(f'{key}="{_escape(str(value))}"' for key, value in labels.items())
    return "{" + inner + "}" if inner else ""


def _number(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class _Writer:
    def __init__(self) -> None:
        self.lines: list[str] = []
        self._described: set[str] = set()

    def sample(self, name: str, value, help_text: str, metric_type: str, **labels) -> None:
        if name not in self._described:
            self.lines.append(f"# HELP {name} {help_text}")
            self.lines.append(f"# TYPE {name} {metric_type}")
            self._described.add(name)
        self.lines.append(f"{name}{_labels(**labels)} {_number(value)}")

    def render(self) -> str:
        return "\n".join(self.lines) + "\n"


def render_prometheus(stats, snapshots: dict, scheduler=None) -> str:
    """Render service stats + monitor snapshots as Prometheus text.

    ``stats`` is a :class:`ServiceStats`; ``snapshots`` maps pipeline
    name → :class:`MonitorSnapshot` for every pipeline that currently
    has a live monitor (pipelines without one simply have no
    ``repro_monitor_*`` series). ``scheduler`` is an optional
    :class:`~repro.serve.scheduler.SchedulerStats` snapshot; gateways
    running a micro-batching scheduler pass it so scrapes additionally
    chart queue depth, batch fill ratio, the coalesced-batch size
    histogram, and admission rejects (``repro_scheduler_*`` series).
    """
    writer = _Writer()
    writer.sample(
        "repro_service_pipelines_registered", stats.registered,
        "Pipelines registered with the validation service.", "gauge",
    )
    writer.sample(
        "repro_service_pipelines_resident", stats.resident,
        "Pipelines currently loaded in the LRU cache.", "gauge",
    )
    writer.sample(
        "repro_service_loads_total", stats.loads,
        "Pipeline archive loads since service start.", "counter",
    )
    writer.sample(
        "repro_service_evictions_total", stats.evictions,
        "LRU evictions since service start.", "counter",
    )
    writer.sample(
        "repro_service_pool_reaps_total", getattr(stats, "pool_reaps", 0),
        "Idle shard worker pools reclaimed since service start.", "counter",
    )
    for name, entry in sorted(stats.pipelines.items()):
        writer.sample(
            "repro_pipeline_validations_total", int(entry.get("validations", 0)),
            "Validation requests served, per pipeline.", "counter", pipeline=name,
        )
        writer.sample(
            "repro_pipeline_rows_validated_total", int(entry.get("rows_validated", 0)),
            "Rows validated, per pipeline.", "counter", pipeline=name,
        )
        writer.sample(
            "repro_pipeline_repairs_total", int(entry.get("repairs", 0)),
            "Repair requests served, per pipeline.", "counter", pipeline=name,
        )
        writer.sample(
            "repro_pipeline_resident", bool(entry.get("resident", False)),
            "Whether the pipeline is currently resident (1) or not (0).",
            "gauge", pipeline=name,
        )
    for name, snapshot in sorted(snapshots.items()):
        writer.sample(
            "repro_monitor_window_rows", snapshot.window_rows,
            "Rows in the drift monitor's rolling window.", "gauge", pipeline=name,
        )
        writer.sample(
            "repro_monitor_observations_total", snapshot.total_observations,
            "Chunks observed by the drift monitor.", "counter", pipeline=name,
        )
        writer.sample(
            "repro_monitor_rows_observed_total", snapshot.total_rows,
            "Rows observed by the drift monitor.", "counter", pipeline=name,
        )
        writer.sample(
            "repro_monitor_alerts_total", snapshot.total_alerts,
            "Drift alerts raised since the monitor was created.", "counter", pipeline=name,
        )
        writer.sample(
            "repro_monitor_flag_rate_ewma", snapshot.flag_rate_ewma,
            "EWMA of the per-chunk flag rate.", "gauge", pipeline=name,
        )
        writer.sample(
            "repro_monitor_flag_rate_limit", snapshot.flag_rate_limit,
            "Upper control limit of the flag-rate EWMA chart.", "gauge", pipeline=name,
        )
        writer.sample(
            "repro_monitor_flag_rate_alarm", snapshot.flag_rate_alarm,
            "Whether the flag-rate EWMA is above its control limit.", "gauge",
            pipeline=name,
        )
        writer.sample(
            "repro_monitor_drift_detected", snapshot.has_drift,
            "Whether any column or the flag rate currently shows drift.", "gauge",
            pipeline=name,
        )
        for column in snapshot.columns:
            writer.sample(
                "repro_monitor_column_psi", column.psi,
                "Population Stability Index of the window vs the training baseline.",
                "gauge", pipeline=name, column=column.name,
            )
            writer.sample(
                "repro_monitor_column_js", column.js,
                "Jensen-Shannon divergence of the window vs the training baseline.",
                "gauge", pipeline=name, column=column.name,
            )
            writer.sample(
                "repro_monitor_column_drifted", column.drifted,
                "Whether the column's drift scores exceed their thresholds.",
                "gauge", pipeline=name, column=column.name,
            )
    if scheduler is not None:
        _render_scheduler(writer, scheduler)
    return writer.render()


def _render_scheduler(writer: _Writer, sched) -> None:
    """Append the micro-batching scheduler's series (SchedulerStats)."""
    writer.sample(
        "repro_scheduler_queue_depth", sched.queue_depth,
        "Requests queued in the micro-batching scheduler, all pipelines.", "gauge",
    )
    for name, depth in sorted(sched.queue_depths.items()):
        writer.sample(
            "repro_scheduler_pipeline_queue_depth", depth,
            "Requests queued in the micro-batching scheduler, per pipeline.",
            "gauge", pipeline=name,
        )
    writer.sample(
        "repro_scheduler_in_flight_batches", sched.in_flight,
        "Coalesced batches currently executing on the slab pool.", "gauge",
    )
    writer.sample(
        "repro_scheduler_requests_submitted_total", sched.submitted,
        "Requests admitted by the scheduler since start.", "counter",
    )
    writer.sample(
        "repro_scheduler_requests_rejected_total", sched.rejected,
        "Requests refused by admission control (HTTP 429) since start.", "counter",
    )
    writer.sample(
        "repro_scheduler_requests_completed_total", sched.completed,
        "Requests resolved successfully since start.", "counter",
    )
    writer.sample(
        "repro_scheduler_requests_failed_total", sched.failed,
        "Requests resolved with an error since start.", "counter",
    )
    writer.sample(
        "repro_scheduler_rows_dispatched_total", sched.rows,
        "Rows dispatched in coalesced slabs since start.", "counter",
    )
    writer.sample(
        "repro_scheduler_batch_fill_ratio", sched.fill_ratio,
        "Mean slab occupancy: rows dispatched / (batches x max_batch_rows).", "gauge",
    )
    # Prometheus-convention histogram: cumulative buckets + _count/_sum.
    hist_help = "Coalesced requests per dispatched batch."
    for bound, count in sorted(sched.batch_size_hist.items()):
        writer.sample(
            "repro_scheduler_batch_size_bucket", count, hist_help, "histogram",
            le=str(bound),
        )
    writer.sample(
        "repro_scheduler_batch_size_bucket", sched.batches, hist_help, "histogram",
        le="+Inf",
    )
    writer.sample(
        "repro_scheduler_batch_size_count", sched.batches, hist_help, "histogram",
    )
    writer.sample(
        "repro_scheduler_batch_size_sum", sched.completed_or_failed, hist_help, "histogram",
    )
