"""Drift scores and the flag-rate control chart.

Pure math, no state beyond the EWMA chart: the Population Stability
Index and Jensen–Shannon divergence compare an observed histogram to the
baseline histogram (both as raw segment counts), and
:class:`EwmaChart` tracks the exponentially-weighted flag rate against
binomial control limits around the calibrated clean rate — the
TFDV-style skew/drift comparators, but computable incrementally on the
streaming path.
"""

from __future__ import annotations

import numpy as np

__all__ = ["population_stability_index", "jensen_shannon_divergence", "EwmaChart"]

#: Laplace-style smoothing so empty segments never produce infinities.
_EPSILON = 1e-4


def _as_probabilities(counts: np.ndarray) -> np.ndarray:
    counts = np.asarray(counts, dtype=np.float64)
    smoothed = counts + _EPSILON
    return smoothed / smoothed.sum()


def population_stability_index(
    expected_counts: np.ndarray, observed_counts: np.ndarray
) -> float:
    """PSI between two histograms over identical segments.

    Conventional reading: < 0.1 stable, 0.1–0.25 moderate shift,
    > 0.25 significant shift. Returns 0.0 when the observed histogram
    is empty (nothing seen yet is not drift).
    """
    observed_counts = np.asarray(observed_counts, dtype=np.float64)
    if observed_counts.sum() <= 0:
        return 0.0
    expected = _as_probabilities(expected_counts)
    observed = _as_probabilities(observed_counts)
    return float(np.sum((observed - expected) * np.log(observed / expected)))


def jensen_shannon_divergence(
    expected_counts: np.ndarray, observed_counts: np.ndarray
) -> float:
    """JS divergence (base 2, bounded [0, 1]) between two histograms."""
    observed_counts = np.asarray(observed_counts, dtype=np.float64)
    if observed_counts.sum() <= 0:
        return 0.0
    expected = _as_probabilities(expected_counts)
    observed = _as_probabilities(observed_counts)
    mixture = (expected + observed) / 2.0
    kl_expected = np.sum(expected * np.log2(expected / mixture))
    kl_observed = np.sum(observed * np.log2(observed / mixture))
    # Clamp tiny negative round-off so the score stays in [0, 1].
    return float(max(0.0, (kl_expected + kl_observed) / 2.0))


class EwmaChart:
    """EWMA control chart over per-observation flag rates.

    The center line is the calibrated clean flag rate
    (``1 − percentile/100``); each observation contributes its flag
    fraction with weight ``alpha``, and the alarm fires when the EWMA
    exceeds the center by ``sigma_limit`` asymptotic standard errors —
    the per-observation standard error being the binomial
    ``sqrt(p(1−p)/n)`` of that observation's row count, shrunk by the
    EWMA factor ``sqrt(alpha / (2 − alpha))``.
    """

    def __init__(self, center: float, alpha: float = 0.2, sigma_limit: float = 3.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if sigma_limit <= 0:
            raise ValueError(f"sigma_limit must be positive, got {sigma_limit}")
        self.center = float(center)
        self.alpha = float(alpha)
        self.sigma_limit = float(sigma_limit)
        #: the chart starts at its target, the standard EWMA convention
        self.value = float(center)
        #: upper control limit of the latest observation (center until then)
        self.limit = float(center)
        self.n_observations = 0
        self.alarm = False

    def observe(self, flagged_fraction: float, n_rows: int) -> bool:
        """Fold one observation in; returns the current alarm state."""
        n_rows = max(1, int(n_rows))
        self.value = self.alpha * float(flagged_fraction) + (1.0 - self.alpha) * self.value
        sigma = np.sqrt(max(self.center * (1.0 - self.center), 1e-12) / n_rows)
        self.limit = self.center + self.sigma_limit * sigma * np.sqrt(
            self.alpha / (2.0 - self.alpha)
        )
        self.n_observations += 1
        self.alarm = bool(self.value > self.limit)
        return self.alarm

    def reset(self) -> None:
        self.value = self.center
        self.limit = self.center
        self.n_observations = 0
        self.alarm = False
