"""Training-time distribution baselines for drift monitoring.

A :class:`MonitorBaseline` freezes what the clean training data looked
like *in model space* — the preprocessed [0, 1] representation every
serving path already computes — one histogram per column:

* **numeric** columns bin on clean-data quantile edges (classic
  PSI-style deciles), with open outer segments so out-of-range values
  (including the missing sentinel) are counted rather than dropped;
* **categorical** columns get one segment per fitted category (bin edges
  at the midpoints between the scaled code positions), plus a dedicated
  ``<missing>`` segment below and ``<unknown>`` segment above — the
  sentinel and the ``1 + unknown_margin`` placement land there exactly.

Binning in model space keeps the monitor independent of raw value
ranges and lets the streaming path observe the preprocessed matrix it
already holds, with no second preprocessing pass.

The baseline is JSON-serializable (:meth:`to_metadata`) and travels in
``DQuaG.save`` archives, so a reloaded pipeline monitors against the
exact distribution it was trained on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ReproError

__all__ = ["ColumnBaseline", "MonitorBaseline"]

#: default numeric bin count: the ten PSI deciles
DEFAULT_BINS = 10

#: fallback <missing> boundary for pathological non-negative sentinels
#: (valid scaled category codes are >= 0, so such a sentinel cannot be
#: told apart from a category anyway)
_FALLBACK_MISSING_EDGE = -0.25


@dataclass
class ColumnBaseline:
    """One column's frozen clean-data histogram.

    ``edges`` are the inner segment boundaries; values are binned into
    ``len(edges) + 1`` segments via ``searchsorted`` (open on both
    ends), so every observable value — sentinel, in-range, unknown —
    lands in exactly one segment.
    """

    name: str
    kind: str  # ColumnKind.NUMERIC | ColumnKind.CATEGORICAL
    edges: np.ndarray
    counts: np.ndarray
    labels: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.edges = np.asarray(self.edges, dtype=np.float64)
        self.counts = np.asarray(self.counts, dtype=np.int64)
        if self.counts.shape != (self.edges.size + 1,):
            raise ReproError(
                f"column {self.name!r}: {self.counts.size} counts do not fit "
                f"{self.edges.size} edges (need edges + 1 segments)"
            )

    @property
    def n_segments(self) -> int:
        return int(self.counts.size)

    def bin(self, values: np.ndarray) -> np.ndarray:
        """Segment counts of ``values`` under this column's edges."""
        segments = np.searchsorted(self.edges, np.asarray(values, dtype=np.float64), side="right")
        return np.bincount(segments, minlength=self.n_segments).astype(np.int64)


class MonitorBaseline:
    """Per-column clean histograms plus the expected clean flag rate."""

    def __init__(
        self,
        columns: list[ColumnBaseline],
        n_rows: int,
        flag_rate: float,
    ) -> None:
        if not columns:
            raise ReproError("a monitor baseline needs at least one column")
        if not 0.0 <= flag_rate <= 1.0:
            raise ReproError(f"flag_rate must be in [0, 1], got {flag_rate}")
        self.columns = list(columns)
        self.n_rows = int(n_rows)
        self.flag_rate = float(flag_rate)

    @property
    def n_features(self) -> int:
        return len(self.columns)

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    # -- construction ------------------------------------------------------
    @classmethod
    def from_matrix(
        cls,
        preprocessor,
        matrix: np.ndarray,
        flag_rate: float,
        bins: int = DEFAULT_BINS,
    ) -> "MonitorBaseline":
        """Freeze the clean distribution from a fitted preprocessor.

        ``matrix`` is the preprocessed clean table (the exact array
        Phase 1 trained on); ``flag_rate`` is the expected clean-data
        flag rate (``1 − threshold_percentile/100``), the EWMA control
        chart's center line.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        schema = preprocessor.schema
        if matrix.ndim != 2 or matrix.shape[1] != len(schema):
            raise ReproError(
                f"baseline matrix has shape {matrix.shape}; schema expects "
                f"(rows, {len(schema)})"
            )
        if matrix.shape[0] < 1:
            raise ReproError("cannot build a monitor baseline from zero rows")
        columns: list[ColumnBaseline] = []
        for j, spec in enumerate(schema):
            if spec.is_categorical:
                edges, labels = cls._categorical_edges(preprocessor, spec.name)
            else:
                edges, labels = cls._numeric_edges(matrix[:, j], bins)
            column = ColumnBaseline(
                name=spec.name,
                kind=spec.kind,
                edges=edges,
                counts=np.zeros(edges.size + 1, dtype=np.int64),
                labels=labels,
            )
            column.counts = column.bin(matrix[:, j])
            columns.append(column)
        return cls(columns, n_rows=matrix.shape[0], flag_rate=flag_rate)

    @staticmethod
    def _numeric_edges(values: np.ndarray, bins: int) -> tuple[np.ndarray, list[str]]:
        quantiles = np.linspace(0.0, 1.0, bins + 1)[1:-1]
        edges = np.unique(np.quantile(values, quantiles))
        if edges.size < 2:
            # A (near-)constant column needs edges *bracketing* the
            # constant, so below / at / above land in three distinct
            # segments — with a single edge at the constant, values
            # above it would share the constant's own segment
            # (searchsorted side="right") and upward drift would be
            # invisible.
            center = float(values[0]) if edges.size == 0 else float(edges[0])
            margin = max(1e-6, 1e-6 * abs(center))
            edges = np.asarray([center - margin, center + margin])
        labels = ["<low>"] + [f"q{i + 1}" for i in range(edges.size - 1)] + ["<high>"]
        return edges, labels

    @staticmethod
    def _categorical_edges(preprocessor, name: str) -> tuple[np.ndarray, list[str]]:
        positions = preprocessor.valid_code_positions(name)
        classes = list(preprocessor.label_encoder(name).classes_)
        midpoints = (positions[:-1] + positions[1:]) / 2.0
        # The <missing> boundary sits midway between the configured
        # sentinel and the lowest category position (0.0), so any
        # negative sentinel — not just the default -1.0 — lands in the
        # <missing> segment rather than inside the first category's.
        sentinel = float(preprocessor.missing_sentinel)
        missing_edge = sentinel / 2.0 if sentinel < 0 else _FALLBACK_MISSING_EDGE
        unknown_edge = float(positions[-1]) + preprocessor.unknown_margin / 2.0
        edges = np.concatenate(([missing_edge], midpoints, [unknown_edge]))
        labels = ["<missing>"] + [str(c) for c in classes] + ["<unknown>"]
        return edges, labels

    # -- binning -----------------------------------------------------------
    def bin_matrix(self, matrix: np.ndarray) -> list[np.ndarray]:
        """Per-column segment counts of one observed chunk."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.n_features:
            raise ReproError(
                f"observed matrix has shape {matrix.shape}; the baseline "
                f"expects (rows, {self.n_features})"
            )
        return [column.bin(matrix[:, j]) for j, column in enumerate(self.columns)]

    # -- persistence -------------------------------------------------------
    def to_metadata(self) -> dict:
        """JSON-serializable snapshot (persisted in weight archives)."""
        return {
            "n_rows": self.n_rows,
            "flag_rate": self.flag_rate,
            "columns": [
                {
                    "name": column.name,
                    "kind": column.kind,
                    "edges": column.edges.tolist(),
                    "counts": column.counts.tolist(),
                    "labels": list(column.labels),
                }
                for column in self.columns
            ],
        }

    @staticmethod
    def from_metadata(payload: dict) -> "MonitorBaseline":
        return MonitorBaseline(
            columns=[
                ColumnBaseline(
                    name=column["name"],
                    kind=column["kind"],
                    edges=np.asarray(column["edges"], dtype=np.float64),
                    counts=np.asarray(column["counts"], dtype=np.int64),
                    labels=list(column.get("labels", [])),
                )
                for column in payload["columns"]
            ],
            n_rows=int(payload["n_rows"]),
            flag_rate=float(payload["flag_rate"]),
        )
