"""Continuous drift monitoring over the streaming validation path.

A :class:`DriftMonitor` watches the data a fitted pipeline validates:

* every observed chunk is binned against the training-time
  :class:`~repro.monitor.baseline.MonitorBaseline` and folded into a
  rolling window of the last ``window_chunks`` observations;
* per-column drift is scored as PSI and Jensen–Shannon divergence of
  the window histogram vs the baseline histogram;
* the flag rate runs through an EWMA control chart centered on the
  calibrated clean rate;
* threshold crossings are edge-triggered into wire-serializable
  :class:`DriftAlert` objects, and :meth:`snapshot` renders the whole
  state as one :class:`MonitorSnapshot` under the ``repro.api``
  protocol.

The monitor is thread-safe (the serving layer updates it from
concurrent request threads) and cheap: binning one streamed chunk is a
``searchsorted`` per column, a few percent of the GNN forward that
chunk already paid for. Observation timestamps are caller-supplied
(falling back to the injectable ``clock``), so tests are deterministic.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ReproError
from repro.monitor.baseline import MonitorBaseline
from repro.monitor.drift import EwmaChart, jensen_shannon_divergence, population_stability_index

__all__ = ["ColumnDrift", "DriftAlert", "MonitorSnapshot", "DriftMonitor"]


@dataclass
class ColumnDrift:
    """Drift scores of one column over the current window."""

    name: str
    kind: str
    psi: float
    js: float
    drifted: bool


@dataclass
class DriftAlert:
    """One edge-triggered drift event.

    ``metric`` is ``"psi"``/``"js"`` for a column distribution shift or
    ``"flag_rate"`` for an EWMA control-chart alarm (``column`` is then
    ``None``).
    """

    metric: str
    column: str | None
    value: float
    threshold: float
    message: str
    timestamp: float | None = None

    # -- wire protocol (repro.api) ----------------------------------------
    def to_dict(self) -> dict:
        from repro.api.protocol import drift_alert_to_dict

        return drift_alert_to_dict(self)

    @staticmethod
    def from_dict(payload: dict) -> "DriftAlert":
        from repro.api.protocol import drift_alert_from_dict

        return drift_alert_from_dict(payload)


@dataclass
class MonitorSnapshot:
    """Wire-serializable state of a :class:`DriftMonitor`."""

    window_capacity: int
    window_chunks: int
    window_rows: int
    total_observations: int
    total_rows: int
    total_alerts: int
    first_timestamp: float | None
    last_timestamp: float | None
    flag_rate_ewma: float
    flag_rate_center: float
    flag_rate_limit: float
    flag_rate_alarm: bool
    psi_threshold: float
    js_threshold: float
    columns: list[ColumnDrift] = field(default_factory=list)
    alerts: list[DriftAlert] = field(default_factory=list)

    @property
    def drifted_columns(self) -> list[str]:
        return [column.name for column in self.columns if column.drifted]

    @property
    def has_drift(self) -> bool:
        return bool(self.drifted_columns) or self.flag_rate_alarm

    def summary(self) -> str:
        state = "DRIFT" if self.has_drift else "stable"
        drifted = ", ".join(self.drifted_columns) or "none"
        return (
            f"{state}: {self.window_rows} rows in window "
            f"({self.window_chunks}/{self.window_capacity} chunks), "
            f"drifted columns: {drifted}, "
            f"flag-rate EWMA {self.flag_rate_ewma:.4f} "
            f"(center {self.flag_rate_center:.4f}, limit {self.flag_rate_limit:.4f})"
        )

    # -- wire protocol (repro.api) ----------------------------------------
    def to_dict(self) -> dict:
        from repro.api.protocol import monitor_snapshot_to_dict

        return monitor_snapshot_to_dict(self)

    @staticmethod
    def from_dict(payload: dict) -> "MonitorSnapshot":
        from repro.api.protocol import monitor_snapshot_from_dict

        return monitor_snapshot_from_dict(payload)


class DriftMonitor:
    """Rolling-window drift detection against a training-time baseline.

    >>> monitor = pipeline.monitor(window_chunks=32)        # doctest: +SKIP
    >>> monitor.observe_table(batch, n_flagged=report.n_flagged)  # doctest: +SKIP
    >>> monitor.snapshot().has_drift                        # doctest: +SKIP
    """

    def __init__(
        self,
        baseline: MonitorBaseline,
        preprocessor=None,
        window_chunks: int = 32,
        psi_threshold: float = 0.25,
        js_threshold: float = 0.10,
        ewma_alpha: float = 0.2,
        ewma_sigma: float = 3.0,
        min_window_rows: int = 200,
        max_alerts: int = 64,
        clock=None,
    ) -> None:
        if window_chunks < 1:
            raise ValueError(f"window_chunks must be positive, got {window_chunks}")
        if psi_threshold <= 0 or js_threshold <= 0:
            raise ValueError("psi_threshold and js_threshold must be positive")
        self.baseline = baseline
        self.preprocessor = preprocessor
        self.window_chunks = int(window_chunks)
        self.psi_threshold = float(psi_threshold)
        self.js_threshold = float(js_threshold)
        self.min_window_rows = int(min_window_rows)
        self._clock = clock if clock is not None else time.time
        self._lock = threading.Lock()
        self._window: deque = deque(maxlen=self.window_chunks)
        self._sums = [np.zeros(column.n_segments, dtype=np.int64) for column in baseline.columns]
        self._window_rows = 0
        self._chart = EwmaChart(center=baseline.flag_rate, alpha=ewma_alpha, sigma_limit=ewma_sigma)
        self._drifting: set[str] = set()
        self._alarm = False
        self._alerts: deque = deque(maxlen=max_alerts)
        self._total_observations = 0
        self._total_rows = 0
        self._total_alerts = 0
        self._first_timestamp: float | None = None
        self._last_timestamp: float | None = None

    # -- observation -------------------------------------------------------
    def observe_table(self, table, n_flagged: int | None = None, timestamp: float | None = None) -> None:
        """Observe a raw table (preprocessed through the bound preprocessor)."""
        if self.preprocessor is None:
            raise ReproError(
                "this DriftMonitor has no preprocessor bound; observe preprocessed "
                "matrices via observe_matrix() instead"
            )
        if table.n_rows == 0:
            return
        # Encode through the compiled plan when the bound preprocessor
        # provides one (duck-typed: tests may bind minimal stand-ins).
        compiled = getattr(self.preprocessor, "compile", None)
        matrix = (
            compiled().transform(table) if compiled is not None else self.preprocessor.transform(table)
        )
        self.observe_matrix(matrix, n_flagged=n_flagged, timestamp=timestamp)

    def observe_matrix(
        self,
        matrix: np.ndarray,
        n_flagged: int | None = None,
        timestamp: float | None = None,
    ) -> None:
        """Observe one preprocessed chunk (the streaming hot path).

        ``n_flagged`` additionally feeds the flag-rate control chart;
        omit it when flags are not known at observation time (e.g. the
        coordinator side of a sharded stream).
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        n_rows = int(matrix.shape[0]) if matrix.ndim == 2 else 0
        if n_rows == 0:
            return
        counts = self.baseline.bin_matrix(matrix)
        ts = float(timestamp) if timestamp is not None else float(self._clock())
        with self._lock:
            if len(self._window) == self._window.maxlen:
                old_counts, old_rows, _ = self._window[0]
                for total, old in zip(self._sums, old_counts):
                    total -= old
                self._window_rows -= old_rows
            self._window.append((counts, n_rows, ts))
            for total, new in zip(self._sums, counts):
                total += new
            self._window_rows += n_rows
            self._total_observations += 1
            self._total_rows += n_rows
            if self._first_timestamp is None or ts < self._first_timestamp:
                self._first_timestamp = ts
            if self._last_timestamp is None or ts > self._last_timestamp:
                self._last_timestamp = ts
            if n_flagged is not None:
                self._observe_flags_locked(int(n_flagged), n_rows, ts)
            self._evaluate_drift_locked(ts)

    def observe_partial(self, partial, matrix: np.ndarray | None = None) -> None:
        """Observe a :class:`~repro.runtime.streaming.PartialReport`.

        The partial carries flags and (when its producer stamped one)
        the observation timestamp; ``matrix`` supplies the chunk's
        preprocessed values when available.
        """
        if matrix is not None:
            self.observe_matrix(
                matrix, n_flagged=partial.n_flagged, timestamp=partial.timestamp
            )
        else:
            self.observe_flags(partial.n_flagged, partial.n_rows, timestamp=partial.timestamp)

    def observe_flags(
        self, n_flagged: int, n_rows: int, timestamp: float | None = None
    ) -> None:
        """Feed the flag-rate chart without a distribution observation."""
        if n_rows < 1:
            return
        ts = float(timestamp) if timestamp is not None else float(self._clock())
        with self._lock:
            self._observe_flags_locked(int(n_flagged), int(n_rows), ts)

    # -- internals (call with the lock held) -------------------------------
    def _observe_flags_locked(self, n_flagged: int, n_rows: int, ts: float) -> None:
        alarm = self._chart.observe(n_flagged / n_rows, n_rows)
        if alarm and not self._alarm:
            self._emit_alert_locked(
                metric="flag_rate",
                column=None,
                value=float(self._chart.value),
                threshold=float(self._chart.limit),
                message=(
                    f"flag-rate EWMA {self._chart.value:.4f} exceeded control limit "
                    f"{self._chart.limit:.4f} (center {self._chart.center:.4f})"
                ),
                timestamp=ts,
            )
        self._alarm = alarm

    def _evaluate_drift_locked(self, ts: float) -> None:
        if self._window_rows < self.min_window_rows:
            return
        for column, observed in zip(self.baseline.columns, self._sums):
            psi = population_stability_index(column.counts, observed)
            js = jensen_shannon_divergence(column.counts, observed)
            drifted = psi > self.psi_threshold or js > self.js_threshold
            if drifted and column.name not in self._drifting:
                if psi > self.psi_threshold:
                    metric, value, threshold = "psi", psi, self.psi_threshold
                else:
                    metric, value, threshold = "js", js, self.js_threshold
                self._emit_alert_locked(
                    metric=metric,
                    column=column.name,
                    value=float(value),
                    threshold=float(threshold),
                    message=(
                        f"column {column.name!r} drifted: {metric}={value:.4f} "
                        f"exceeds {threshold:.4f} over {self._window_rows} window rows"
                    ),
                    timestamp=ts,
                )
                self._drifting.add(column.name)
            elif not drifted:
                self._drifting.discard(column.name)

    def _emit_alert_locked(self, **kwargs) -> None:
        self._alerts.append(DriftAlert(**kwargs))
        self._total_alerts += 1

    # -- reading -----------------------------------------------------------
    def snapshot(self) -> MonitorSnapshot:
        """The full monitor state as one wire-serializable object."""
        with self._lock:
            columns = []
            for column, observed in zip(self.baseline.columns, self._sums):
                psi = population_stability_index(column.counts, observed)
                js = jensen_shannon_divergence(column.counts, observed)
                columns.append(
                    ColumnDrift(
                        name=column.name,
                        kind=column.kind,
                        psi=float(psi),
                        js=float(js),
                        drifted=bool(
                            self._window_rows >= self.min_window_rows
                            and (psi > self.psi_threshold or js > self.js_threshold)
                        ),
                    )
                )
            return MonitorSnapshot(
                window_capacity=self.window_chunks,
                window_chunks=len(self._window),
                window_rows=self._window_rows,
                total_observations=self._total_observations,
                total_rows=self._total_rows,
                total_alerts=self._total_alerts,
                first_timestamp=self._first_timestamp,
                last_timestamp=self._last_timestamp,
                flag_rate_ewma=float(self._chart.value),
                flag_rate_center=float(self._chart.center),
                flag_rate_limit=float(self._chart.limit),
                flag_rate_alarm=bool(self._alarm),
                psi_threshold=self.psi_threshold,
                js_threshold=self.js_threshold,
                columns=columns,
                alerts=list(self._alerts),
            )

    def alerts(self) -> list[DriftAlert]:
        """Recent alerts, oldest first (bounded by ``max_alerts``)."""
        with self._lock:
            return list(self._alerts)

    def reset(self) -> None:
        """Clear the window, chart, and alert state (baseline stays)."""
        with self._lock:
            self._window.clear()
            for total in self._sums:
                total[:] = 0
            self._window_rows = 0
            self._chart.reset()
            self._drifting.clear()
            self._alarm = False
            self._alerts.clear()
            self._total_observations = 0
            self._total_rows = 0
            self._total_alerts = 0
            self._first_timestamp = None
            self._last_timestamp = None
