"""Continuous drift monitoring — the production counterpart of Phase 2.

The validator decides batch quality against statistics learned at
training time; this package watches how serving traffic *moves away*
from those statistics over time:

* :mod:`repro.monitor.baseline` — :class:`MonitorBaseline`, per-column
  clean-data histograms frozen at fit time (persisted in ``DQuaG.save``
  archives);
* :mod:`repro.monitor.drift` — PSI / Jensen–Shannon divergence and the
  EWMA flag-rate control chart;
* :mod:`repro.monitor.monitor` — :class:`DriftMonitor`, the rolling
  window folding every observed chunk into per-column drift scores and
  edge-triggered :class:`DriftAlert` events, snapshotted as
  wire-serializable :class:`MonitorSnapshot` objects;
* :mod:`repro.monitor.export` — Prometheus text rendering for the
  gateway's ``GET /v1/metrics``.
"""

from repro.monitor.baseline import ColumnBaseline, MonitorBaseline
from repro.monitor.drift import EwmaChart, jensen_shannon_divergence, population_stability_index
from repro.monitor.export import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.monitor.monitor import ColumnDrift, DriftAlert, DriftMonitor, MonitorSnapshot

__all__ = [
    "ColumnBaseline",
    "MonitorBaseline",
    "EwmaChart",
    "population_stability_index",
    "jensen_shannon_divergence",
    "PROMETHEUS_CONTENT_TYPE",
    "render_prometheus",
    "ColumnDrift",
    "DriftAlert",
    "DriftMonitor",
    "MonitorSnapshot",
]
