"""Bounded-memory validation of arbitrarily large tables.

The §3.2.1 decision rules are row-local except for the final
batch-level verdict (flagged fraction vs the 5%·n cutoff), so a table
can be validated chunk by chunk and the chunk outcomes merged exactly:

* :class:`PartialReport` — the outcome of one chunk, mergeable;
* :class:`StreamingValidator` — drives chunks from a table, a matrix, or
  any iterator of row chunks (e.g. ``repro.data.io.read_csv_chunks``);
* :class:`StreamSummary` — the fold result when dense per-cell errors
  are *not* retained: flagged-row indices, per-column flagged-cell
  counts, and running error statistics in O(flagged + features) memory —
  a 10⁶-row table never materializes its (rows × features) error matrix.

With ``keep_cell_errors=True`` the merge reproduces the one-shot
:class:`~repro.core.validator.ValidationReport` exactly (chunk sizes
that are multiples of the engine's chunk size, like the defaults, make
it bit-for-bit identical).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Union

import numpy as np

from repro.core.validator import DataQualityValidator, ValidationReport
from repro.data.table import Table
from repro.exceptions import ValidationError

__all__ = ["PartialReport", "StreamSummary", "StreamingValidator", "fold_partials"]

Chunk = Union[Table, np.ndarray]

#: The one error message for streams/tables with no rows: every entry
#: point (dense merge, incremental fold, sharded execution) raises it so
#: callers can match on a single string.
EMPTY_STREAM_MESSAGE = "cannot validate an empty stream"


def _logger():
    from repro.utils.logging import get_logger

    return get_logger("runtime.streaming")


@dataclass
class PartialReport:
    """Validation outcome of one row chunk at a global row offset."""

    offset: int
    n_rows: int
    sample_errors: np.ndarray
    row_flags: np.ndarray
    #: sparse flagged-cell coordinates, local to this chunk
    cell_rows: np.ndarray
    cell_cols: np.ndarray
    #: dense per-cell errors/flags — only retained on request
    cell_errors: np.ndarray | None = None
    cell_flags: np.ndarray | None = None
    #: when the chunk was observed (caller-supplied wall clock; ``None``
    #: keeps the report fully deterministic). Travels additively on the
    #: wire so drift monitors can window by time, and folds into
    #: :attr:`StreamSummary.first_timestamp`/``last_timestamp``.
    timestamp: float | None = None
    #: chunk-local :class:`~repro.rules.RulePartial` when the stream runs
    #: with a declarative rule plan attached; ``None`` (and omitted on
    #: the wire) otherwise. Folds into the summary/report ``rule_report``.
    rule_partial: "object | None" = None

    @property
    def n_flagged(self) -> int:
        return int(self.row_flags.sum())

    @property
    def flagged_rows(self) -> np.ndarray:
        """Global indices of flagged rows."""
        return np.flatnonzero(self.row_flags) + self.offset

    # -- wire protocol (repro.api) ----------------------------------------
    def to_dict(self) -> dict:
        from repro.api.protocol import partial_report_to_dict

        return partial_report_to_dict(self)

    @staticmethod
    def from_dict(payload: dict) -> "PartialReport":
        from repro.api.protocol import partial_report_from_dict

        return partial_report_from_dict(payload)

    @staticmethod
    def from_report(
        report: ValidationReport,
        offset: int,
        keep_cell_errors: bool,
        timestamp: float | None = None,
    ) -> "PartialReport":
        rows, cols = np.nonzero(report.cell_flags)
        return PartialReport(
            offset=offset,
            n_rows=len(report.sample_errors),
            sample_errors=report.sample_errors,
            row_flags=report.row_flags,
            cell_rows=rows,
            cell_cols=cols,
            cell_errors=report.cell_errors if keep_cell_errors else None,
            cell_flags=report.cell_flags if keep_cell_errors else None,
            timestamp=timestamp,
        )

    @staticmethod
    def merge(
        partials: "list[PartialReport]",
        threshold: float,
        rule,
        feature_names: list[str] | None = None,
        rules=None,
    ) -> ValidationReport:
        """Fold dense partials into one :class:`ValidationReport`.

        Requires every partial to have retained its dense cell errors;
        use :class:`StreamSummary` folding for bounded-memory streams.
        ``rules`` (a :class:`~repro.rules.RuleSet`) additionally folds
        the partials' rule outputs into ``report.rule_report``.
        """
        if not partials:
            raise ValidationError(EMPTY_STREAM_MESSAGE)
        ordered = sorted(partials, key=lambda p: p.offset)
        if any(p.cell_errors is None for p in ordered):
            raise ValidationError(
                "cannot merge partials without dense cell errors; "
                "run the stream with keep_cell_errors=True"
            )
        row_flags = np.concatenate([p.row_flags for p in ordered])
        flagged_fraction = float(row_flags.mean()) if row_flags.size else 0.0
        rule_report = None
        if rules is not None:
            from repro.rules import fold_rule_partials

            rule_report = fold_rule_partials(
                [(p.offset, p.n_rows, p.rule_partial) for p in ordered],
                rules,
                list(feature_names or []),
            )
        return ValidationReport(
            sample_errors=np.concatenate([p.sample_errors for p in ordered]),
            cell_errors=np.concatenate([p.cell_errors for p in ordered], axis=0),
            row_flags=row_flags,
            cell_flags=np.concatenate([p.cell_flags for p in ordered], axis=0),
            threshold=threshold,
            flagged_fraction=flagged_fraction,
            is_problematic=rule.is_problematic(flagged_fraction),
            feature_names=list(feature_names or []),
            rule_report=rule_report,
        )


@dataclass
class StreamSummary:
    """Bounded-memory outcome of a streamed validation.

    Holds everything Phase 2 decides — flagged rows, the batch verdict,
    per-column damage counts — without the per-cell error matrix.
    """

    n_rows: int
    n_chunks: int
    n_flagged: int
    flagged_rows: np.ndarray
    threshold: float
    flagged_fraction: float
    is_problematic: bool
    flagged_cells_by_column: dict[str, int] = field(default_factory=dict)
    mean_sample_error: float = 0.0
    max_sample_error: float = 0.0
    #: observation span of the stream, from the earliest/latest stamped
    #: :class:`PartialReport` (``None`` when no chunk carried a timestamp)
    first_timestamp: float | None = None
    last_timestamp: float | None = None
    #: fused :class:`~repro.rules.RuleReport` when the stream ran with a
    #: declarative rule set attached (additive; ``None`` otherwise)
    rule_report: "object | None" = None

    def summary(self) -> str:
        verdict = "PROBLEMATIC" if self.is_problematic else "OK"
        text = (
            f"{verdict}: {self.n_flagged}/{self.n_rows} rows flagged "
            f"({self.flagged_fraction:.2%}) across {self.n_chunks} chunks, "
            f"threshold={self.threshold:.5f}"
        )
        if self.rule_report is not None:
            text += f"; {self.rule_report.summary()}"
        return text

    # -- wire protocol (repro.api) ----------------------------------------
    def to_dict(self) -> dict:
        from repro.api.protocol import stream_summary_to_dict

        return stream_summary_to_dict(self)

    @staticmethod
    def from_dict(payload: dict) -> "StreamSummary":
        from repro.api.protocol import stream_summary_from_dict

        return stream_summary_from_dict(payload)


class StreamingValidator:
    """Chunk-wise Phase 2 over a fitted validator/engine.

    ``chunk_size`` rows are preprocessed and validated at a time; memory
    use is O(chunk_size × features) regardless of the table length. The
    default is a multiple of the engine's internal chunk so streamed
    numerics match the one-shot path exactly.

    ``monitor`` attaches a :class:`~repro.monitor.monitor.DriftMonitor`:
    every validated chunk is observed (reusing the already-preprocessed
    matrix, so the monitor costs a histogram pass, not a second
    preprocessing). Monitor failures are logged, never raised — drift
    observation is advisory and must not break validation.

    ``clock`` stamps each :class:`PartialReport` with an observation
    timestamp (injectable for tests); the default ``None`` leaves
    partials unstamped so streamed results stay fully deterministic.

    ``rules`` attaches a declarative rule set (any form accepted by
    :func:`repro.rules.resolve_rules`): each chunk is additionally
    evaluated against the compiled :class:`~repro.rules.RulePlan` and the
    per-chunk rule outputs fold into ``rule_report`` on the final
    report/summary — bit-identical to one-shot rule evaluation.
    """

    def __init__(
        self,
        validator: DataQualityValidator,
        chunk_size: int = 8192,
        keep_cell_errors: bool = False,
        monitor=None,
        clock=None,
        rules=None,
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.validator = validator
        self.chunk_size = chunk_size
        self.keep_cell_errors = keep_cell_errors
        self.monitor = monitor
        self.clock = clock
        if rules is None:
            self.rule_plan = None
        else:
            from repro.rules import resolve_rules

            self.rule_plan = resolve_rules(rules, validator.preprocessor)

    @classmethod
    def from_pipeline(
        cls,
        pipeline,
        chunk_size: int = 8192,
        keep_cell_errors: bool = False,
        monitor=None,
        clock=None,
        rules=None,
    ):
        """Build from a fitted :class:`~repro.core.pipeline.DQuaG`."""
        return cls(
            pipeline._require_validator(),
            chunk_size=chunk_size,
            keep_cell_errors=keep_cell_errors,
            monitor=monitor,
            clock=clock,
            rules=rules,
        )

    # -- chunk-level API ---------------------------------------------------
    def validate_chunk(
        self, chunk: Chunk, offset: int = 0, timestamp: float | None = None
    ) -> PartialReport:
        """Validate one row chunk (a Table or a preprocessed matrix)."""
        if timestamp is None and self.clock is not None:
            timestamp = float(self.clock())
        if isinstance(chunk, Table):
            matrix = self.validator.preprocessor.compile().transform(chunk)
        else:
            from repro.exceptions import SchemaError

            matrix = np.asarray(chunk, dtype=np.float64)
            n_features = len(self.validator.preprocessor.schema)
            if matrix.ndim != 2 or matrix.shape[1] != n_features:
                raise SchemaError(
                    f"chunk matrix has shape {matrix.shape}; the trained schema "
                    f"expects (rows, {n_features})"
                )
        report = self.validator.validate_matrix(matrix)
        partial = PartialReport.from_report(
            report, offset, self.keep_cell_errors, timestamp=timestamp
        )
        if self.rule_plan is not None:
            # The rule partial copies what it keeps, so evaluating on a
            # reused transform buffer (validate_table) is safe.
            partial.rule_partial = self.rule_plan.evaluate(matrix)
        if self.monitor is not None:
            try:
                self.monitor.observe_partial(partial, matrix=matrix)
            except Exception:
                _logger().warning("drift monitor observation failed", exc_info=True)
        return partial

    def iter_partials(self, chunks: Iterable[Chunk]) -> Iterator[PartialReport]:
        """Yield one :class:`PartialReport` per incoming chunk."""
        offset = 0
        for chunk in chunks:
            partial = self.validate_chunk(chunk, offset=offset)
            offset += partial.n_rows
            yield partial

    # -- stream-level API --------------------------------------------------
    def validate_stream(self, chunks: Iterable[Chunk]) -> "ValidationReport | StreamSummary":
        """Validate an iterator of row chunks.

        With ``keep_cell_errors=True`` returns the exact merged
        :class:`ValidationReport`; otherwise folds incrementally into a
        :class:`StreamSummary` without retaining any dense chunk output.
        """
        if self.keep_cell_errors:
            partials = list(self.iter_partials(chunks))
            return PartialReport.merge(
                partials,
                threshold=self.validator.calibration.threshold,
                rule=self.validator.rule,
                feature_names=list(self.validator.preprocessor.schema.names),
                rules=None if self.rule_plan is None else self.rule_plan.ruleset,
            )
        return self.fold(self.iter_partials(chunks))

    def validate_table(self, table: Table) -> "ValidationReport | StreamSummary":
        """Validate a full table in ``chunk_size`` row slices.

        Chunks are encoded through the compiled
        :class:`~repro.data.plan.TransformPlan` into one reused buffer —
        the whole preprocessing side of the stream is allocation-free
        (each chunk is fully consumed before the next overwrites it).
        """
        if table.schema != self.validator.preprocessor.schema:
            from repro.exceptions import SchemaError

            raise SchemaError("table schema does not match the trained pipeline")
        plan = self.validator.preprocessor.compile()
        return self.validate_stream(plan.transform_chunks(table, self.chunk_size))

    def validate_frame_file(self, path) -> "ValidationReport | StreamSummary":
        """Validate a binary frame file out-of-core.

        The file (written by :class:`~repro.api.framing.FrameFileWriter`
        or :meth:`Table.to_frame_file`) is memory-mapped, never loaded:
        :func:`~repro.api.framing.open_frame_file` wraps its columns in
        lazy mmap-backed views, and :meth:`validate_table` slices them
        ``chunk_size`` rows at a time — so a file much larger than RAM
        validates in O(chunk_size × features) memory, the OS paging each
        window in and out as it is touched.
        """
        schema = self.validator.preprocessor.schema
        return self.validate_table(Table.from_frame_file(path, schema=schema))

    # -- folding -----------------------------------------------------------
    def fold(self, partials: Iterable[PartialReport]) -> StreamSummary:
        """Fold partial reports into a :class:`StreamSummary` incrementally.

        Public so transports (e.g. the HTTP gateway's ``/validate_stream``)
        can interleave their own per-chunk acknowledgements with the fold.
        """
        return fold_partials(
            partials,
            threshold=self.validator.calibration.threshold,
            rule=self.validator.rule,
            feature_names=list(self.validator.preprocessor.schema.names),
            rules=None if self.rule_plan is None else self.rule_plan.ruleset,
        )


def fold_partials(
    partials: Iterable[PartialReport],
    threshold: float,
    rule,
    feature_names: list[str],
    rules=None,
) -> StreamSummary:
    """Fold partial reports into a :class:`StreamSummary` incrementally.

    Standalone so mergers that have no live validator — e.g. the sharded
    executor folding worker outputs against archive metadata — apply the
    exact same accumulation as :meth:`StreamingValidator.fold`.
    ``rules`` (a :class:`~repro.rules.RuleSet`) additionally folds the
    partials' chunk-local rule outputs into ``summary.rule_report``.
    """
    names = list(feature_names)
    n_rows = 0
    n_chunks = 0
    n_flagged = 0
    flagged: list[np.ndarray] = []
    by_column: dict[str, int] = {}
    error_sum = 0.0
    error_max = 0.0
    first_ts: float | None = None
    last_ts: float | None = None
    rule_parts: "list[tuple[int, int, object]] | None" = None if rules is None else []
    for partial in partials:
        n_rows += partial.n_rows
        n_chunks += 1
        n_flagged += partial.n_flagged
        if partial.n_flagged:
            flagged.append(partial.flagged_rows)
        for col, count in zip(*np.unique(partial.cell_cols, return_counts=True)):
            name = names[int(col)]
            by_column[name] = by_column.get(name, 0) + int(count)
        if partial.sample_errors.size:
            error_sum += float(partial.sample_errors.sum())
            error_max = max(error_max, float(partial.sample_errors.max()))
        if partial.timestamp is not None:
            ts = float(partial.timestamp)
            first_ts = ts if first_ts is None else min(first_ts, ts)
            last_ts = ts if last_ts is None else max(last_ts, ts)
        if rule_parts is not None:
            rule_parts.append((partial.offset, partial.n_rows, partial.rule_partial))
    if n_rows == 0:
        raise ValidationError(EMPTY_STREAM_MESSAGE)
    rule_report = None
    if rules is not None:
        from repro.rules import fold_rule_partials

        rule_report = fold_rule_partials(rule_parts, rules, names)
    flagged_fraction = n_flagged / n_rows
    return StreamSummary(
        n_rows=n_rows,
        n_chunks=n_chunks,
        n_flagged=n_flagged,
        flagged_rows=np.concatenate(flagged) if flagged else np.empty(0, dtype=np.int64),
        threshold=threshold,
        flagged_fraction=flagged_fraction,
        is_problematic=rule.is_problematic(flagged_fraction),
        flagged_cells_by_column=by_column,
        mean_sample_error=error_sum / n_rows,
        max_sample_error=error_max,
        first_timestamp=first_ts,
        last_timestamp=last_ts,
        rule_report=rule_report,
    )
