"""Sharded parallel Phase-2 validation: partition, validate, merge exactly.

The §3.2.1 decision rules are row-local (only the final 5%·n batch
verdict is global), so a table or stream can be partitioned into row
shards, validated on independent worker *processes*, and the shard
outcomes merged into the exact one-shot result — the same property the
streaming fold exploits for bounded memory, applied here for parallel
speed (the Figure-4 scalability axis):

* :class:`ShardPlanner` — splits row ranges into engine-chunk-aligned
  contiguous shards, and regroups arbitrary chunk streams (e.g.
  ``read_csv_chunks``) into shard-sized super-chunks;
* :class:`ParallelValidator` — executes shards on a
  :class:`~concurrent.futures.ProcessPoolExecutor`. Workers rebuild the
  validator from a ``DQuaG.save`` weight archive (nothing live is
  pickled); shard outcomes travel back as wire-encoded
  :class:`~repro.runtime.streaming.PartialReport` payloads via the
  :mod:`repro.api` protocol and are folded into the exact
  :class:`~repro.core.validator.ValidationReport` (dense mode) or
  :class:`~repro.runtime.streaming.StreamSummary` (bounded-memory mode).

When the platform supports it, shard data moves over the zero-copy
shared-memory plane (:mod:`repro.runtime.shm`) instead of the pickled
transport: the parent encodes rows straight into shared slabs and the
workers validate matrix windows in place — same bits, no serialization,
no per-worker re-transform — with automatic pickled fallback whenever
shm is unavailable, over budget, or a worker dies mid-shard.

Because shard boundaries are multiples of the validation chunk size and
the engine's numerics are chunk-size invariant, the merged result is
bit-identical to the single-process path regardless of the worker count.
One caveat on *streams*: incoming chunks are regrouped into shard-sized
super-chunks, so the summary's ``n_chunks`` reflects the shard
partition, not the caller's chunking (every row-local outcome — flags,
counts, verdict — is still identical); table-path summaries share the
single-process chunk partition exactly, ``n_chunks`` included.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
import weakref
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.core.thresholds import DatasetDecisionRule
from repro.core.validator import ValidationReport
from repro.data.table import Table
from repro.exceptions import (
    ReproError,
    SerializationError,
    TransientServiceError,
    ValidationError,
)
from repro.runtime.streaming import (
    EMPTY_STREAM_MESSAGE,
    Chunk,
    PartialReport,
    StreamSummary,
    fold_partials,
)
from repro.utils.logging import get_logger

__all__ = ["Shard", "ShardPlanner", "ParallelValidator"]

logger = get_logger("runtime.sharding")


@dataclass(frozen=True)
class Shard:
    """One contiguous row range of the global table/stream."""

    index: int
    offset: int
    n_rows: int

    @property
    def stop(self) -> int:
        return self.offset + self.n_rows


class ShardPlanner:
    """Splits row ranges into chunk-aligned contiguous shards.

    Shard boundaries fall on multiples of ``chunk_size`` (the validation
    chunk), so a worker chunking its shard locally reproduces the exact
    global chunk partition of the single-process streaming path — partial
    reports, and therefore the merged result, line up one-to-one.
    """

    def __init__(self, chunk_size: int = 8192) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.chunk_size = chunk_size

    def plan(self, n_rows: int, shards: int) -> list[Shard]:
        """At most ``shards`` balanced, chunk-aligned contiguous ranges."""
        if n_rows < 0:
            raise ValueError(f"n_rows must be >= 0, got {n_rows}")
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        if n_rows == 0:
            return []
        n_chunks = -(-n_rows // self.chunk_size)
        shards = min(shards, n_chunks)
        base, extra = divmod(n_chunks, shards)
        plans: list[Shard] = []
        offset = 0
        for index in range(shards):
            chunks = base + (1 if index < extra else 0)
            n = min(chunks * self.chunk_size, n_rows - offset)
            plans.append(Shard(index=index, offset=offset, n_rows=n))
            offset += n
        return plans

    def split_table(self, table: Table, shards: int) -> list[tuple[Shard, Table]]:
        """Slice a table into planned shards (column views, no row copies)."""
        return [
            (shard, _slice_chunk(table, shard.offset, shard.stop))
            for shard in self.plan(table.n_rows, shards)
        ]

    def iter_stream_shards(
        self,
        chunks: Iterable[Chunk],
        chunks_per_shard: int = 4,
        reuse_buffer: bool = False,
    ) -> Iterator[tuple[Shard, Chunk]]:
        """Regroup an arbitrary chunk stream into shard-sized super-chunks.

        Incoming chunks (Tables or preprocessed matrices, not mixed) are
        written incrementally into one pre-allocated shard-sized buffer
        and cut at multiples of ``chunk_size × chunks_per_shard`` rows;
        only one shard of rows is ever buffered and each row is copied at
        most once (a chunk that already spans a full shard is sliced
        through zero-copy). With ``reuse_buffer=True`` every yielded
        super-chunk is a view over the *same* buffer — allocation-free,
        but the caller must fully consume each shard before advancing
        (mirrors ``TransformPlan.transform_chunks(reuse_buffer=True)``).
        """
        if chunks_per_shard < 1:
            raise ValueError(f"chunks_per_shard must be positive, got {chunks_per_shard}")
        shard_rows = self.chunk_size * chunks_per_shard
        buffer: _ShardBuffer | None = None
        offset = 0
        index = 0
        kind: str | None = None
        for chunk in chunks:
            if isinstance(chunk, Table):
                this = "table"
                n = chunk.n_rows
            else:
                chunk = np.asarray(chunk, dtype=np.float64)
                this = "matrix"
                n = chunk.shape[0]
            if kind is None:
                kind = this
            elif kind != this:
                raise ValidationError("cannot mix Table and matrix chunks in one stream")
            pos = 0
            while pos < n:
                if (buffer is None or not buffer.filled) and n - pos >= shard_rows:
                    # A full shard sits contiguously in the incoming
                    # chunk: slice it through without touching the buffer.
                    yield (
                        Shard(index=index, offset=offset, n_rows=shard_rows),
                        _slice_chunk(chunk, pos, pos + shard_rows),
                    )
                    index += 1
                    offset += shard_rows
                    pos += shard_rows
                    continue
                if buffer is None:
                    buffer = _ShardBuffer(shard_rows, chunk)
                take = min(n - pos, shard_rows - buffer.filled)
                buffer.append(chunk, pos, pos + take)
                pos += take
                if buffer.filled == shard_rows:
                    yield (
                        Shard(index=index, offset=offset, n_rows=shard_rows),
                        buffer.cut(reuse=reuse_buffer),
                    )
                    index += 1
                    offset += shard_rows
        if buffer is not None and buffer.filled:
            yield (
                Shard(index=index, offset=offset, n_rows=buffer.filled),
                buffer.cut(reuse=reuse_buffer),
            )


class _ShardBuffer:
    """Pre-allocated shard-sized accumulator for stream regrouping.

    Replaces the old regroup strategy of re-concatenating every buffered
    chunk on each super-chunk cut (which copied the carried remainder
    again for every incoming chunk): rows are written once into a
    shard-capacity buffer and the filled prefix is handed out per cut.
    """

    def __init__(self, capacity: int, template: Chunk) -> None:
        self.capacity = capacity
        self.filled = 0
        if isinstance(template, Table):
            self.schema = template.schema
            self._columns: dict[str, np.ndarray] | None = {
                name: np.empty(capacity, dtype=template.column(name).dtype)
                for name in template.schema.names
            }
            self._matrix = None
        else:
            self._columns = None
            self._matrix = np.empty((capacity, template.shape[1]), dtype=np.float64)

    def append(self, chunk: Chunk, start: int, stop: int) -> None:
        end = self.filled + (stop - start)
        if self._columns is not None:
            if chunk.schema != self.schema:
                from repro.exceptions import SchemaError

                raise SchemaError("cannot concat tables with different schemas")
            for name, buf in self._columns.items():
                col = chunk.column(name)
                promoted = np.promote_types(buf.dtype, col.dtype)
                if promoted != buf.dtype:
                    # e.g. a later chunk with wider strings: regrow once,
                    # exactly as np.concatenate would have promoted.
                    grown = np.empty(self.capacity, dtype=promoted)
                    grown[: self.filled] = buf[: self.filled]
                    self._columns[name] = buf = grown
                buf[self.filled : end] = col[start:stop]
        else:
            self._matrix[self.filled : end] = chunk[start:stop]
        self.filled = end

    def cut(self, reuse: bool) -> Chunk:
        """The filled prefix as a super-chunk; resets for the next shard."""
        n = self.filled
        if self._columns is not None:
            view: Chunk = Table._wrap(
                self.schema, {name: buf[:n] for name, buf in self._columns.items()}, n
            )
            if not reuse:
                # Ownership of the arrays moves to the yielded chunk;
                # back the next shard with fresh ones.
                self._columns = {
                    name: np.empty(self.capacity, dtype=buf.dtype)
                    for name, buf in self._columns.items()
                }
        else:
            view = self._matrix[:n]
            if not reuse:
                self._matrix = np.empty_like(self._matrix)
        self.filled = 0
        return view


def _slice_chunk(chunk: Chunk, start: int, stop: int) -> Chunk:
    if isinstance(chunk, Table):
        # Zero-copy row view: skips the constructor's per-value column
        # normalization, which would copy every object column per slice.
        return chunk.slice_rows(start, stop)
    return chunk[start:stop]


# ---------------------------------------------------------------------------
# merge context — what the parent needs to fold shard outputs
# ---------------------------------------------------------------------------
@dataclass
class _MergeContext:
    """The (small) parent-side state folding needs: no model, no engine.

    ``preprocessor`` rides along for the shared-memory data plane — the
    parent encodes tables into slabs itself (the transform is bit-exact
    and must run somewhere anyway), so workers validate raw matrix
    windows with no re-transform.
    """

    threshold: float
    rule: DatasetDecisionRule
    schema: object  # TableSchema of the trained pipeline
    feature_names: list[str]
    preprocessor: object | None = None  # TablePreprocessor (fitted)


def _context_from_archive(archive: Path) -> _MergeContext:
    from repro.core.config import DQuaGConfig
    from repro.data.preprocess import TablePreprocessor
    from repro.nn.serialization import load_state

    _, metadata = load_state(archive)
    if "preprocessor" not in metadata or "calibration" not in metadata:
        raise SerializationError(
            f"{archive} does not carry preprocessor/calibration state "
            "(pre-runtime archive); retrain and re-save the pipeline"
        )
    config = DQuaGConfig.from_dict(metadata["config"])
    preprocessor = TablePreprocessor.from_metadata(metadata["preprocessor"])
    schema = preprocessor.schema
    return _MergeContext(
        threshold=float(metadata["calibration"]["threshold"]),
        rule=DatasetDecisionRule(
            percentile=config.threshold_percentile,
            n_multiplier=config.dataset_rule_n,
        ),
        schema=schema,
        feature_names=list(schema.names),
        preprocessor=preprocessor,
    )


# ---------------------------------------------------------------------------
# worker side — one pipeline per process, rebuilt from the archive
# ---------------------------------------------------------------------------
_WORKER: dict[str, object] = {}


def _worker_init(archive: str, chunk_size: int) -> None:
    """Process-pool initializer: rebuild the validator from the archive."""
    from repro.core.pipeline import DQuaG

    pipeline = DQuaG().load_weights(archive)
    _WORKER["validator"] = pipeline._require_validator()
    _WORKER["chunk_size"] = int(chunk_size)


def _worker_rule_plan(rules_payload: dict | None):
    """Compile a wire-shipped rule set against the worker's pipeline.

    Compiled plans are cached per rule-set fingerprint, so repeated
    shards of the same request (and repeated requests under the same
    registered rules) pay compilation once per process.
    """
    if rules_payload is None:
        return None
    from repro.rules import RuleSet

    ruleset = RuleSet.from_payload(rules_payload)
    cache: dict = _WORKER.setdefault("rule_plans", {})  # type: ignore[assignment]
    plan = cache.get(ruleset.fingerprint)
    if plan is None:
        plan = ruleset.compile(_WORKER["validator"].preprocessor)
        cache[ruleset.fingerprint] = plan
    return plan


def _validate_shard(
    offset: int,
    payload: tuple[str, object],
    keep_cell_errors: bool,
    rules_payload: dict | None = None,
) -> list[dict]:
    """Validate one shard; return wire-encoded partial reports.

    The shard is processed in ``chunk_size`` sub-chunks (one
    :class:`PartialReport` each, offsets globalized), so worker memory
    stays bounded and the global chunk partition matches the
    single-process streaming path exactly. ``rules_payload`` (a
    :class:`~repro.rules.RuleSet` wire dict) attaches per-chunk rule
    evaluation; the chunk-local rule outputs ride each partial back.
    """
    from repro.runtime.streaming import StreamingValidator

    validator = _WORKER["validator"]
    chunk_size: int = _WORKER["chunk_size"]  # type: ignore[assignment]
    streaming = StreamingValidator(
        validator,
        chunk_size=chunk_size,
        keep_cell_errors=keep_cell_errors,
        rules=_worker_rule_plan(rules_payload),
    )
    kind, data = payload
    holder = None
    if kind == "table":
        table = Table(validator.preprocessor.schema, data)
        # Compiled-plan encoding into one worker-local reused buffer:
        # each chunk is validated before the next overwrites it.
        chunks: Iterable[np.ndarray] = validator.preprocessor.compile().transform_chunks(
            table, chunk_size
        )
    elif kind == "shm":
        # Zero-copy plane: the parent already encoded the rows into a
        # shared slab; attach and window it — no pickled rows, no
        # re-transform. Pool slabs (cache=True) keep their mapping in a
        # bounded process-local cache across the stream's shards.
        from repro.runtime.shm import attach_window

        window, holder = attach_window(data, cache=bool(data.get("cache")))
        chunks = (
            window[start : start + chunk_size]
            for start in range(0, window.shape[0], chunk_size)
        )
    else:
        matrix = np.asarray(data, dtype=np.float64)
        chunks = (
            matrix[start : start + chunk_size]
            for start in range(0, matrix.shape[0], chunk_size)
        )
    try:
        encoded: list[dict] = []
        for partial in streaming.iter_partials(chunks):
            partial.offset += offset
            encoded.append(partial.to_dict())
    finally:
        if holder is not None:
            # One-shot table slab: release the mapping promptly so an
            # already-unlinked segment's memory is freed with the request.
            holder.close()
    return encoded


def _warm_task(delay: float) -> int:
    """Occupy one worker briefly; identifies which process ran it."""
    time.sleep(delay)
    return os.getpid()


def _remove_file(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


# ---------------------------------------------------------------------------
# the parallel executor
# ---------------------------------------------------------------------------
class ParallelValidator:
    """Multi-process Phase-2 validation with exact single-process results.

    >>> parallel = ParallelValidator("models/hotel.npz", workers=4)  # doctest: +SKIP
    >>> report = parallel.validate_table(big_table, keep_cell_errors=True)  # doctest: +SKIP
    >>> summary = parallel.validate_stream(read_csv_chunks(path, schema))   # doctest: +SKIP

    Workers are separate processes (``spawn`` by default: safe to create
    from threaded servers) that each load the pipeline from ``archive``
    once; requests then only ship row data out and wire-encoded partial
    reports back. The pool is lazy — created on first use — and must be
    released with :meth:`close` (or a ``with`` block).
    """

    def __init__(
        self,
        archive: str | Path,
        workers: int | None = None,
        chunk_size: int = 8192,
        keep_cell_errors: bool = False,
        chunks_per_shard: int = 4,
        mp_context: str = "spawn",
        use_shm: bool | None = None,
        slab_budget: int | None = None,
        _context: _MergeContext | None = None,
        _owns_archive: bool = False,
    ) -> None:
        from repro.runtime.shm import slab_budget_bytes

        self.archive = Path(archive)
        if not self.archive.exists():
            raise ReproError(f"no such pipeline archive: {self.archive}")
        self.workers = (os.cpu_count() or 1) if workers is None else max(1, int(workers))
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.chunk_size = chunk_size
        self.keep_cell_errors = keep_cell_errors
        self.chunks_per_shard = chunks_per_shard
        self.planner = ShardPlanner(chunk_size)
        self._mp_context = mp_context
        self._merge = _context if _context is not None else _context_from_archive(self.archive)
        # Shared-memory data plane: None = auto (on when the platform
        # supports it), False = pickled fan-out only, True = prefer shm
        # (still falls back rather than fail). ``slab_budget`` caps the
        # shared bytes one request may hold (default REPRO_SHM_BUDGET_MB
        # or 1 GiB); over-budget requests take the pickled path.
        self.use_shm = use_shm
        self.slab_budget_bytes = slab_budget_bytes(slab_budget)
        self.shm_stats: dict[str, int] = {
            "shm_tables": 0,
            "shm_stream_shards": 0,
            "fallbacks": 0,
            "recoveries": 0,
        }
        self._plan = None  # lazily compiled TransformPlan for slab encoding
        self._pool: ProcessPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._closed = False
        # Temp archives written by from_pipeline are reclaimed even if
        # close() is never called.
        self._archive_finalizer = (
            weakref.finalize(self, _remove_file, str(self.archive)) if _owns_archive else None
        )

    @classmethod
    def from_pipeline(
        cls, pipeline, archive: str | Path | None = None, **options
    ) -> "ParallelValidator":
        """Build from a fitted :class:`~repro.core.pipeline.DQuaG`.

        Workers cannot receive the live pipeline (nothing live is
        pickled), so it is saved to ``archive`` — a temp file, reclaimed
        on :meth:`close`, when no path is given. The merge context is
        taken from the live validator, skipping an archive re-read.
        """
        validator = pipeline._require_validator()
        context = _MergeContext(
            threshold=validator.calibration.threshold,
            rule=validator.rule,
            schema=validator.preprocessor.schema,
            feature_names=list(validator.preprocessor.schema.names),
            preprocessor=validator.preprocessor,
        )
        owns = archive is None
        if owns:
            handle, archive = tempfile.mkstemp(prefix="dquag-shard-", suffix=".npz")
            os.close(handle)
        archive = Path(archive)
        if owns or not archive.exists():
            pipeline.save(archive)
        return cls(archive, _context=context, _owns_archive=owns, **options)

    # -- execution ---------------------------------------------------------
    def validate_table(
        self,
        table: Table,
        shards: int | None = None,
        keep_cell_errors: bool | None = None,
        rules=None,
    ) -> "ValidationReport | StreamSummary":
        """Validate a full table across the worker pool.

        ``shards`` defaults to the worker count; any value yields the
        same result bit-for-bit — boundaries stay chunk-aligned.
        ``rules`` attaches a declarative rule set (any form accepted by
        :func:`repro.rules.resolve_ruleset`): each worker compiles it
        against its own pipeline copy (cached per fingerprint) and the
        folded ``rule_report`` is bit-identical to one-shot evaluation.

        When the shared-memory data plane is on (see ``use_shm``), the
        parent encodes the table straight into a shared slab and workers
        validate zero-copy windows — bit-identical output, no pickled
        rows; unavailable/over-budget requests fall back transparently.
        """
        if table.n_rows == 0:
            raise ValidationError(EMPTY_STREAM_MESSAGE)
        self._check_schema(table)
        ruleset = self._resolve_rules(rules)
        keep = self.keep_cell_errors if keep_cell_errors is None else keep_cell_errors
        partials: list[PartialReport] | None = None
        if self._shm_ready():
            partials = self._validate_table_shm(table, shards or self.workers, keep, ruleset)
            if partials is None:
                self.shm_stats["fallbacks"] += 1
        if partials is None:
            pool = self._ensure_pool()
            futures = [
                self._submit(pool, shard.offset, shard_table, keep, ruleset)
                for shard, shard_table in self.planner.split_table(table, shards or self.workers)
            ]
            partials = [
                PartialReport.from_dict(payload)
                for future in futures
                for payload in future.result()
            ]
        return self._finish(partials, keep, ruleset)

    def validate_stream(
        self,
        chunks: Iterable[Chunk],
        keep_cell_errors: bool | None = None,
        max_parallel: int | None = None,
        rules=None,
    ) -> "ValidationReport | StreamSummary":
        """Validate a chunk stream, dispatching shard-sized groups as they fill.

        At most ``max_parallel`` (default ``2 × workers``) shards are in
        flight, so parent memory stays bounded by the shard size
        regardless of stream length; a smaller cap also bounds how many
        workers the stream can occupy at once (used by the service's
        budgeted grants). ``rules`` behaves as in :meth:`validate_table`.

        With the shared-memory data plane on, super-chunks are written
        round-robin into a bounded ring of reused slabs (see ``use_shm``);
        the shm-or-pickled decision is made before the first chunk is
        consumed, so the fallback never loses stream data.
        """
        ruleset = self._resolve_rules(rules)
        keep = self.keep_cell_errors if keep_cell_errors is None else keep_cell_errors
        in_flight = max(1, max_parallel) if max_parallel else 2 * self.workers
        partials: list[PartialReport] | None = None
        if self._shm_ready():
            partials = self._validate_stream_shm(chunks, keep, ruleset, in_flight)
            if partials is None:
                self.shm_stats["fallbacks"] += 1
        if partials is None:
            pool = self._ensure_pool()
            pending: "deque" = deque()
            folded: list[PartialReport] = []
            partials = folded

            def drain(future) -> None:
                folded.extend(
                    PartialReport.from_dict(payload) for payload in future.result()
                )

            for shard, payload in self.planner.iter_stream_shards(chunks, self.chunks_per_shard):
                while len(pending) >= in_flight:
                    drain(pending.popleft())
                pending.append(self._submit(pool, shard.offset, payload, keep, ruleset))
            while pending:
                drain(pending.popleft())
        return self._finish(partials, keep, ruleset)

    @staticmethod
    def _resolve_rules(rules):
        if rules is None:
            return None
        from repro.rules import resolve_ruleset

        return resolve_ruleset(rules)

    def _check_schema(self, table: Table) -> None:
        # Workers rebuild shard Tables under the *trained* schema, which
        # would silently coerce a mismatched input; reject it up front
        # with the same error the one-shot path raises.
        if table.schema != self._merge.schema:
            from repro.exceptions import SchemaError

            raise SchemaError("table schema does not match the trained pipeline")

    def _submit(self, pool, offset: int, chunk: Chunk, keep: bool, ruleset=None):
        if isinstance(chunk, Table):
            self._check_schema(chunk)
            payload = ("table", {name: chunk.column(name) for name in chunk.schema.names})
        else:
            payload = ("matrix", np.ascontiguousarray(chunk, dtype=np.float64))
        return self._submit_payload(pool, offset, payload, keep, ruleset)

    def _submit_payload(self, pool, offset: int, payload, keep: bool, ruleset=None):
        rules_payload = None if ruleset is None else ruleset.to_dict()
        try:
            return pool.submit(_validate_shard, offset, payload, keep, rules_payload)
        except RuntimeError as exc:
            from concurrent.futures.process import BrokenProcessPool

            if isinstance(exc, BrokenProcessPool):
                raise  # genuinely broken workers — not retryable
            # submit-after-shutdown: a concurrent close() (re-register,
            # eviction, widen) got here first. Typed so callers holding a
            # registry can retry against a fresh pool.
            raise TransientServiceError(
                "ParallelValidator pool was closed during submission"
            ) from exc

    # -- shared-memory data plane ------------------------------------------
    def _shm_ready(self) -> bool:
        if self.use_shm is False or self._merge.preprocessor is None:
            return False
        from repro.runtime.shm import shm_available

        return shm_available()

    def _transform_plan(self):
        if self._plan is None and self._merge.preprocessor is not None:
            self._plan = self._merge.preprocessor.compile()
        return self._plan

    def _validate_table_shm(self, table: Table, shards: int, keep: bool, ruleset):
        """Encode into one shared slab and fan out zero-copy windows.

        Returns the shard partials, or ``None`` when the slab cannot be
        afforded or created — the caller falls back to the pickled path
        (this decision never consumes caller state, so fallback is free).
        """
        from repro.runtime.shm import SharedSlab

        plan = self._transform_plan()
        if plan is None or table.n_rows * plan.n_features * 8 > self.slab_budget_bytes:
            return None
        try:
            slab = SharedSlab.create(table.n_rows, plan.n_features)
        except (OSError, ValueError):
            return None
        try:
            plan.transform_into(table, slab.matrix)
            submitted = []
            for shard in self.planner.plan(table.n_rows, shards):
                spec = slab.spec(table.n_rows, shard.offset, shard.stop)
                spec["cache"] = False
                submitted.append(
                    (shard, self._submit_shm(shard.offset, spec, keep, ruleset))
                )
            self.shm_stats["shm_tables"] += 1
            partials: list[PartialReport] = []
            for shard, future in submitted:
                partials.extend(
                    self._drain_shm(
                        future, shard.offset, slab.matrix[shard.offset : shard.stop], keep, ruleset
                    )
                )
        finally:
            slab.close()
        return partials

    def _validate_stream_shm(self, chunks: Iterable[Chunk], keep: bool, ruleset, in_flight: int):
        """Stream rows through a bounded ring of reused shared slabs.

        Returns ``None`` — fall back to the pickled path — only *before*
        consuming a single chunk (no preprocessor, shm unavailable, or a
        2-slab ring does not fit the budget). A slab is rewritten only
        after the shard it carried has been drained, so worker-death
        recovery can always replay the rows still sitting in the slab.
        """
        from repro.runtime.shm import SlabPool

        plan = self._transform_plan()
        if plan is None:
            return None
        shard_rows = self.chunk_size * self.chunks_per_shard
        ring = SlabPool.open(
            max(2, min(in_flight, 2 * self.workers)),
            shard_rows,
            plan.n_features,
            self.slab_budget_bytes,
        )
        if ring is None:
            return None
        in_flight = min(in_flight, len(ring))
        self._ensure_pool()
        partials: list[PartialReport] = []
        pending: "deque" = deque()  # (future, offset, slab, n_rows)

        def drain_one() -> None:
            future, at, slab, n_rows = pending.popleft()
            partials.extend(self._drain_shm(future, at, slab.matrix[:n_rows], keep, ruleset))

        def flush(slab, n_rows: int, at: int) -> None:
            spec = slab.spec(shard_rows, 0, n_rows)
            spec["cache"] = True  # ring slabs recur: workers keep the mapping
            pending.append(
                (self._submit_shm(at, spec, keep, ruleset), at, slab, n_rows)
            )
            self.shm_stats["shm_stream_shards"] += 1

        index = 0
        offset = 0
        filled = 0
        kind: str | None = None
        try:
            for chunk in chunks:
                if isinstance(chunk, Table):
                    this = "table"
                    n = chunk.n_rows
                else:
                    chunk = np.asarray(chunk, dtype=np.float64)
                    this = "matrix"
                    n = chunk.shape[0]
                if kind is None:
                    kind = this
                elif kind != this:
                    raise ValidationError("cannot mix Table and matrix chunks in one stream")
                if this == "table":
                    self._check_schema(chunk)
                elif chunk.ndim != 2 or chunk.shape[1] != plan.n_features:
                    from repro.exceptions import SchemaError

                    raise SchemaError(
                        f"chunk matrix has shape {chunk.shape}; the trained schema "
                        f"expects (rows, {plan.n_features})"
                    )
                pos = 0
                while pos < n:
                    if filled == 0:
                        # Backpressure: the slot about to be written must
                        # have drained its previous shard (ring-length and
                        # max_parallel both bound what is in flight).
                        while len(pending) >= in_flight:
                            drain_one()
                    slab = ring.slab(index)
                    take = min(n - pos, shard_rows - filled)
                    if this == "table":
                        plan.transform_into(chunk, slab.matrix[filled:], start=pos, stop=pos + take)
                    else:
                        np.copyto(slab.matrix[filled : filled + take], chunk[pos : pos + take])
                    filled += take
                    pos += take
                    if filled == shard_rows:
                        flush(slab, shard_rows, offset)
                        index += 1
                        offset += shard_rows
                        filled = 0
            if filled:
                flush(ring.slab(index), filled, offset)
            while pending:
                drain_one()
        finally:
            ring.close()
        return partials

    def _submit_shm(self, offset: int, spec: dict, keep: bool, ruleset):
        """Submit one shm shard, surviving a pool already flagged broken.

        A submit-time ``BrokenProcessPool`` means the workers died
        *between* requests — nothing of this shard ever reached them and
        the slab is untouched — so rebuild the pool once and resubmit.
        (Death *after* submission is :meth:`_drain_shm`'s case.)
        """
        from concurrent.futures.process import BrokenProcessPool

        try:
            return self._submit_payload(self._ensure_pool(), offset, ("shm", spec), keep, ruleset)
        except BrokenProcessPool:
            logger.warning(
                "shard pool was broken at submit (offset %d); rebuilding and resubmitting",
                offset,
            )
            self.shm_stats["recoveries"] += 1
            self._rebuild_pool()
            return self._submit_payload(self._ensure_pool(), offset, ("shm", spec), keep, ruleset)

    def _drain_shm(self, future, offset: int, window: np.ndarray, keep: bool, ruleset):
        """Resolve one shm shard future, surviving worker death.

        If the pool broke mid-shard, the rows are still sitting in the
        slab (never rewritten before its future drains): rebuild the pool
        and replay that window through the pickled matrix path — the
        request degrades, it does not fail.
        """
        from concurrent.futures.process import BrokenProcessPool

        try:
            payloads = future.result()
        except BrokenProcessPool:
            logger.warning(
                "shard worker died mid-shard (offset %d); replaying via the pickled path",
                offset,
            )
            self.shm_stats["recoveries"] += 1
            self._rebuild_pool()
            replay = self._submit(
                self._ensure_pool(), offset, np.array(window, dtype=np.float64), keep, ruleset
            )
            payloads = replay.result()
        return [PartialReport.from_dict(payload) for payload in payloads]

    def _rebuild_pool(self) -> None:
        with self._pool_lock:
            if self._closed:
                raise TransientServiceError("ParallelValidator is closed")
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def _finish(
        self, partials: list[PartialReport], keep: bool, ruleset=None
    ) -> "ValidationReport | StreamSummary":
        if not partials:
            raise ValidationError(EMPTY_STREAM_MESSAGE)
        partials.sort(key=lambda partial: partial.offset)
        if keep:
            return PartialReport.merge(
                partials,
                threshold=self._merge.threshold,
                rule=self._merge.rule,
                feature_names=self._merge.feature_names,
                rules=ruleset,
            )
        return fold_partials(
            partials,
            threshold=self._merge.threshold,
            rule=self._merge.rule,
            feature_names=self._merge.feature_names,
            rules=ruleset,
        )

    # -- lifecycle ---------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        # Double-checked under a lock: concurrent first calls (the
        # gateway serves each request on its own thread) must not each
        # spawn a pool and orphan all but the last.
        if self._pool is not None:
            return self._pool
        with self._pool_lock:
            if self._pool is not None:
                return self._pool
            if self._closed:
                raise TransientServiceError("ParallelValidator is closed")
            if not self.archive.exists():
                # Workers would die loading a missing archive, surfacing
                # as an opaque BrokenProcessPool; refuse up front.
                raise ReproError(f"pipeline archive {self.archive} no longer exists")
            logger.info(
                "starting %d shard worker(s) from %s (%s)",
                self.workers,
                self.archive,
                self._mp_context,
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=get_context(self._mp_context),
                initializer=_worker_init,
                initargs=(str(self.archive), self.chunk_size),
            )
        return self._pool

    def warm(self, timeout: float = 120.0) -> "ParallelValidator":
        """Start the pool and block until every worker has loaded the archive.

        Worker identity is verified by PID: rounds of brief blocking
        tasks are submitted until all ``workers`` distinct processes have
        answered (a fast worker draining several tasks cannot fake a
        cold sibling warm).
        """
        pool = self._ensure_pool()
        seen: set[int] = set()
        deadline = time.monotonic() + timeout
        while len(seen) < self.workers and time.monotonic() < deadline:
            futures = [pool.submit(_warm_task, 0.05) for _ in range(self.workers)]
            seen.update(future.result() for future in futures)
        if len(seen) < self.workers:
            raise ReproError(
                f"only {len(seen)}/{self.workers} shard workers answered within "
                f"{timeout:.0f}s; the pool is not fully warm"
            )
        return self

    def close(self) -> None:
        """Shut down the pool; the validator cannot be used afterwards."""
        with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        if self._archive_finalizer is not None:
            self._archive_finalizer()

    def __enter__(self) -> "ParallelValidator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
