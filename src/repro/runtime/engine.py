"""Compiled pure-NumPy inference engine for fitted DQuaG models.

Training needs the autograd graph; serving does not. Every ``validate()``
on the seed implementation still ran through :class:`~repro.nn.tensor.Tensor`,
allocating per-op graph nodes it immediately threw away. The
:class:`InferenceEngine` instead *compiles* a fitted model once — each
GNN layer exports its weights into a closure over raw ``np.ndarray`` ops
(see ``export_kernel()`` on the layers in :mod:`repro.gnn`) — and then
runs Phase 2 with:

* zero ``Tensor`` bookkeeping (plain arrays end to end),
* one shared encoder pass feeding both decoders (``forward``),
* reusable thread-local :class:`~repro.nn.kernels.Workspace` buffers —
  large temporaries are faulted in once and recycled across chunks, and
  a single engine can serve concurrent requests,
* constant folding: the per-feature identity embeddings are baked into
  the decoder's first affine layer — and, where the first encoder layer
  allows it (GCN, GAT, graph2vec — every paper architecture), into the
  encoder's first affine too, so the ``(b, F, 1+e)`` node-input slab is
  never materialized. Architectures that cannot fold (SAGE) keep the
  slab path, whose constant embedding region is written once per
  workspace buffer rather than once per chunk,
* reconstruction-error / repair-value computation fused into the kernel,
* table encoding through the preprocessor's compiled
  :class:`~repro.data.plan.TransformPlan` (vectorized, bit-identical to
  the legacy transform).

Numerics agree with the autograd forward to floating-point roundoff
(summation orders differ where constant terms were folded); the parity
suite in ``tests/test_runtime.py`` pins engine-vs-autograd agreement to
1e-10 across all encoder architectures.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.config import DQuaGConfig
from repro.core.model import DQuaGModel
from repro.core.thresholds import DatasetDecisionRule, ThresholdCalibration
from repro.core.validator import ValidationReport, assemble_report
from repro.data.preprocess import TablePreprocessor
from repro.data.table import Table
from repro.exceptions import NotFittedError, SchemaError
from repro.nn.kernels import Workspace, buffer
from repro.nn.layers import MLP, NUMPY_ACTIVATIONS

__all__ = ["InferenceEngine"]


class InferenceEngine:
    """A fitted :class:`DQuaGModel` compiled to pure-NumPy kernels.

    Construction snapshots all weights (training the model afterwards
    does not affect the engine — recompile to pick up new weights). The
    optional calibration context (preprocessor, thresholds, scales)
    enables the full ``validate()`` path; without it the engine still
    serves raw ``reconstruction_errors`` / ``repair_values``.
    """

    def __init__(
        self,
        model: DQuaGModel,
        chunk_size: int = 512,
        preprocessor: TablePreprocessor | None = None,
        calibration: ThresholdCalibration | None = None,
        config: DQuaGConfig | None = None,
        feature_scales: np.ndarray | None = None,
        feature_thresholds: np.ndarray | None = None,
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.chunk_size = chunk_size
        self.n_features = model.n_features
        self.embed_dim = model.config.feature_embedding_dim
        self.architecture = model.config.architecture
        self._embeddings = model.feature_embeddings.data.copy()

        # -- compiled kernels (weight snapshots) -------------------------
        # Encoder-side constant folding: where the first layer exposes a
        # folded export (GCN/GAT/graph2vec — all paper architectures),
        # the identity embeddings are baked into its affine and the
        # (b, F, 1+e) node-input slab is never built; otherwise (SAGE)
        # the slab path below writes the constant embedding region once
        # per buffer, not once per chunk.
        self._encoder_folded = bool(
            self.embed_dim
            and getattr(model.encoder, "can_fold_embeddings", None) is not None
            and model.encoder.can_fold_embeddings(self._embeddings)
        )
        self._encoder = (
            model.encoder.export_kernel(model.ctx, fold_embeddings=self._embeddings)
            if self._encoder_folded
            else model.encoder.export_kernel(model.ctx)
        )
        self._validation_decoder = self._compile_decoder(model.validation_decoder)
        self._repair_decoder = self._compile_decoder(model.repair_decoder)

        # -- optional validation context ---------------------------------
        self.config = config or model.config
        self.attach_context(
            preprocessor=preprocessor,
            calibration=calibration,
            feature_scales=feature_scales,
            feature_thresholds=feature_thresholds,
        )

        # Workspaces are kept thread-local: one engine may serve
        # concurrent validations from a thread pool.
        self._local = threading.local()

    # -- construction helpers ----------------------------------------------
    @classmethod
    def from_validator(cls, validator, chunk_size: int = 512) -> "InferenceEngine":
        """Compile a :class:`~repro.core.validator.DataQualityValidator`
        together with its calibration context."""
        return cls(
            validator.model,
            chunk_size=chunk_size,
            preprocessor=validator.preprocessor,
            calibration=validator.calibration,
            config=validator.config,
            feature_scales=validator.feature_scales,
            feature_thresholds=validator.feature_thresholds,
        )

    @classmethod
    def from_pipeline(cls, pipeline, chunk_size: int = 512) -> "InferenceEngine":
        """Compile a fitted :class:`~repro.core.pipeline.DQuaG`."""
        validator = getattr(pipeline, "_validator", None)
        if validator is None:
            raise NotFittedError("cannot compile an unfitted DQuaG pipeline")
        return cls.from_validator(validator, chunk_size=chunk_size)

    def attach_context(
        self,
        preprocessor: TablePreprocessor | None = None,
        calibration: ThresholdCalibration | None = None,
        feature_scales: np.ndarray | None = None,
        feature_thresholds: np.ndarray | None = None,
    ) -> "InferenceEngine":
        """Attach (or replace) the calibration context the full
        ``validate()`` path needs; kernels are left untouched."""
        self.preprocessor = preprocessor
        self.calibration = calibration
        self.feature_scales = (
            None if feature_scales is None else np.asarray(feature_scales, dtype=np.float64)
        )
        self.feature_thresholds = (
            None if feature_thresholds is None else np.asarray(feature_thresholds, dtype=np.float64)
        )
        self.rule = DatasetDecisionRule(
            percentile=self.config.threshold_percentile,
            n_multiplier=self.config.dataset_rule_n,
        )
        return self

    # -- kernel compilation ------------------------------------------------
    def _compile_decoder(self, mlp: MLP):
        """Compile ``[Z ⊕ E] → MLP → (B, F)`` with the constant identity
        embeddings folded into the first affine layer.

        ``concat([Z, E]) @ W + b == Z @ W[:h] + (E @ W[h:] + b)`` — the
        parenthesized term is batch-independent and precomputed here, so
        serving never materializes the concatenated decoder input.
        """
        base = mlp.export_kernel()  # validates exportability; generic fallback
        if self.embed_dim == 0:
            return base
        layers = getattr(mlp, "_layers", None)
        activation_name = getattr(mlp, "_activation_name", None)
        splittable = (
            layers
            and activation_name in NUMPY_ACTIVATIONS
            and getattr(mlp, "_final_activation", None) is None
        )
        if not splittable:
            embeddings = self._embeddings

            def concat_kernel(z: np.ndarray, ws: Workspace | None = None) -> np.ndarray:
                identity = np.broadcast_to(embeddings, z.shape[:-1] + (embeddings.shape[1],))
                return base(np.concatenate([z, identity], axis=-1), ws)

            return concat_kernel

        first = layers[0]
        hidden = first.weight.data.shape[0] - self.embed_dim
        weight_top = first.weight.data[:hidden].copy()
        constant = self._embeddings @ first.weight.data[hidden:]
        if first.bias is not None:
            constant = constant + first.bias.data
        rest = [layer.export_kernel() for layer in layers[1:]]
        activation = NUMPY_ACTIVATIONS[activation_name]
        key = (id(mlp), "decoder")

        def kernel(z: np.ndarray, ws: Workspace | None = None) -> np.ndarray:
            out_shape = z.shape[:-1] + (weight_top.shape[1],)
            x = np.matmul(z, weight_top, out=buffer(ws, key, out_shape))
            x += constant
            for linear in rest:
                x = activation(x)  # in place on kernel-owned scratch
                x = linear(x, ws)
            return x

        return kernel

    # -- kernel plumbing --------------------------------------------------
    def _workspace(self) -> Workspace:
        ws = getattr(self._local, "workspace", None)
        if ws is None:
            ws = Workspace()
            self._local.workspace = ws
        return ws

    def _node_inputs(self, chunk: np.ndarray, ws: Workspace) -> np.ndarray:
        """(b, F) value chunk → (b, F, 1+e) node inputs, buffer-backed."""
        view, fresh = ws.acquire(
            "node_inputs", (chunk.shape[0], self.n_features, 1 + self.embed_dim)
        )
        view[:, :, 0] = chunk
        if self.embed_dim and fresh:
            # The embedding region is constant and the buffer layout
            # repeats per row, so a recycled buffer (equal or larger
            # batch seen before) already holds it — write it only when
            # the workspace (re)allocated the slab.
            view[:, :, 1:] = self._embeddings
        return view

    def _encode(self, chunk: np.ndarray, ws: Workspace) -> np.ndarray:
        """Run the compiled encoder on a (b, F) value chunk."""
        if self._encoder_folded:
            return self._encoder(chunk, ws)
        return self._encoder(self._node_inputs(chunk, ws), ws)

    def _check_matrix(self, matrix: np.ndarray) -> np.ndarray:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.n_features:
            raise ValueError(f"expected (batch, {self.n_features}) input, got {matrix.shape}")
        return matrix

    # -- inference --------------------------------------------------------
    def forward(self, matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(reconstruction, repair)`` of shape (B, F) each.

        One encoder pass feeds both decoders — the autograd model pays
        for that too, but here nothing else is computed or recorded.
        """
        matrix = self._check_matrix(matrix)
        ws = self._workspace()
        reconstruction = np.empty_like(matrix)
        repair = np.empty_like(matrix)
        for start in range(0, matrix.shape[0], self.chunk_size):
            chunk = matrix[start : start + self.chunk_size]
            embeddings = self._encode(chunk, ws)
            stop = start + chunk.shape[0]
            reconstruction[start:stop, :] = np.squeeze(self._validation_decoder(embeddings, ws), axis=-1)
            repair[start:stop, :] = np.squeeze(self._repair_decoder(embeddings, ws), axis=-1)
        return reconstruction, repair

    def reconstruction_errors(self, matrix: np.ndarray) -> np.ndarray:
        """Per-cell squared reconstruction errors, shape (B, F).

        Drop-in replacement for
        :meth:`~repro.core.model.DQuaGModel.reconstruction_errors`, minus
        the graph bookkeeping and the wasted repair-decoder pass.
        """
        matrix = self._check_matrix(matrix)
        ws = self._workspace()
        out = np.empty_like(matrix)
        for start in range(0, matrix.shape[0], self.chunk_size):
            chunk = matrix[start : start + self.chunk_size]
            embeddings = self._encode(chunk, ws)
            recon = np.squeeze(self._validation_decoder(embeddings, ws), axis=-1)
            # Fused error computation: (x̂ - x)² written straight into the
            # output slab, no intermediate full-size allocation.
            slab = out[start : start + chunk.shape[0]]
            np.subtract(recon, chunk, out=slab)
            np.multiply(slab, slab, out=slab)
        return out

    def repair_values(self, matrix: np.ndarray) -> np.ndarray:
        """Repair-decoder proposals in model space, shape (B, F)."""
        matrix = self._check_matrix(matrix)
        ws = self._workspace()
        out = np.empty_like(matrix)
        for start in range(0, matrix.shape[0], self.chunk_size):
            chunk = matrix[start : start + self.chunk_size]
            embeddings = self._encode(chunk, ws)
            out[start : start + chunk.shape[0], :] = np.squeeze(
                self._repair_decoder(embeddings, ws), axis=-1
            )
        return out

    # -- full validation path ---------------------------------------------
    def _require_context(self) -> None:
        if self.calibration is None:
            raise NotFittedError(
                "engine compiled without calibration context; build it via "
                "InferenceEngine.from_validator/from_pipeline to validate()"
            )

    def validate_matrix(self, matrix: np.ndarray) -> ValidationReport:
        """Full §3.2.1 report for an already-preprocessed matrix."""
        self._require_context()
        return assemble_report(
            self.reconstruction_errors(matrix),
            calibration=self.calibration,
            rule=self.rule,
            feature_sigma=self.config.feature_sigma,
            feature_scales=self.feature_scales,
            feature_thresholds=self.feature_thresholds,
            feature_names=list(self.preprocessor.schema.names) if self.preprocessor else None,
        )

    def validate(self, table: Table) -> ValidationReport:
        """Full validation report for an unseen table."""
        self._require_context()
        if self.preprocessor is None:
            raise NotFittedError("engine compiled without a preprocessor; cannot validate tables")
        if table.schema != self.preprocessor.schema:
            raise SchemaError("table schema does not match the compiled pipeline")
        return self.validate_matrix(self.preprocessor.compile().transform(table))

    def __repr__(self) -> str:
        context = "with context" if self.calibration is not None else "kernels only"
        return (
            f"InferenceEngine({self.architecture}, features={self.n_features}, "
            f"chunk={self.chunk_size}, {context})"
        )
