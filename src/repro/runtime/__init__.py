"""Compiled inference runtime — the Phase-2 serving subsystem.

Phase 1 (training) runs on the reverse-mode autograd substrate in
:mod:`repro.nn`; Phase 2 (validating unseen batches, §3.2.1) is the
serving hot path and does not need gradients at all. Following the
compile-don't-interpret insight of GNNBuilder-style systems, this
package turns a fitted :class:`~repro.core.pipeline.DQuaG` into plain
NumPy kernels and builds the serving stack on top:

* :mod:`repro.runtime.engine` — :class:`InferenceEngine`, pure-NumPy
  forward kernels compiled from a fitted model (no ``Tensor`` graph
  bookkeeping, one shared encoder pass for both decoders);
* :mod:`repro.runtime.streaming` — :class:`StreamingValidator`,
  bounded-memory validation of arbitrarily large tables via mergeable
  :class:`PartialReport` chunks;
* :mod:`repro.runtime.service` — :class:`ValidationService`, an LRU
  registry of fitted pipelines dispatching concurrent batch validation
  across a thread pool;
* :mod:`repro.runtime.sharding` — :class:`ShardPlanner` /
  :class:`ParallelValidator`, multi-process sharded validation whose
  merged result is bit-identical to the one-shot path.
"""

from repro.runtime.engine import InferenceEngine
from repro.runtime.streaming import PartialReport, StreamingValidator, StreamSummary, fold_partials
from repro.runtime.service import PipelineEntry, ServiceStats, ValidationService
from repro.runtime.sharding import ParallelValidator, Shard, ShardPlanner

__all__ = [
    "InferenceEngine",
    "PartialReport",
    "StreamingValidator",
    "StreamSummary",
    "fold_partials",
    "PipelineEntry",
    "ServiceStats",
    "ValidationService",
    "ParallelValidator",
    "Shard",
    "ShardPlanner",
]
