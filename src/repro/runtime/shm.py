"""Zero-copy shared-memory data plane for parallel validation.

:class:`~repro.runtime.sharding.ParallelValidator` historically moved
shard data to its worker processes by pickling rows through the
``ProcessPoolExecutor`` — one full serialize/deserialize per shard plus
a redundant per-worker preprocessing pass. Both compute halves of a
validation are compiled, so that data movement *is* the fan-out cost.

This module removes it:

* :class:`SharedSlab` — one ``multiprocessing.shared_memory`` segment
  viewed either as a float64 ``(capacity_rows, n_features)`` matrix (the
  encoded table the engine consumes directly) or as raw bytes (the
  router's scatter bodies). The parent runs
  :meth:`~repro.data.plan.TransformPlan.transform_into` straight into
  the slab — the transform must happen anyway, so the matrix lands in
  shared memory at zero extra copy — and workers attach by name and
  validate ``np.ndarray`` windows over their shard ranges zero-copy;
* :class:`SlabPool` — a bounded ring of slabs for the streaming-sharded
  path: super-chunks are written round-robin with backpressure and the
  segments are reused across the whole stream;
* crash-safe lifecycle — slabs unlink via parent-owned finalizers even
  when :meth:`SharedSlab.close` is never called, segment names embed the
  creator PID so :func:`reap_orphans` can reclaim the leftovers of a
  crashed parent on the next pool open, and attaching processes
  unregister from the ``resource_tracker`` so a worker exit can neither
  unlink a live segment nor warn about one it merely mapped.

Every consumer treats shared memory as an optimization with an
automatic pickled-path fallback — no validation request ever fails
because shm is unavailable, budget-exhausted, or mid-flight broken.
"""

from __future__ import annotations

import os
import secrets
import threading
from pathlib import Path

import numpy as np

from repro.utils.logging import get_logger

__all__ = [
    "SLAB_PREFIX",
    "SharedSlab",
    "SlabPool",
    "reap_orphans",
    "shm_available",
    "slab_budget_bytes",
]

logger = get_logger("runtime.shm")

#: segment-name prefix; the embedded PID is what makes orphan reaping safe
SLAB_PREFIX = "repro-slab"

#: default ceiling on shared-memory bytes one validator may hold at once
#: (overridable per validator, or globally via ``REPRO_SHM_BUDGET_MB``)
DEFAULT_BUDGET_BYTES = 1 << 30

_SHM_DIR = Path("/dev/shm")

_available_lock = threading.Lock()
_available: bool | None = None


def _shared_memory():
    from multiprocessing import shared_memory

    return shared_memory


def shm_available() -> bool:
    """Whether POSIX shared memory actually works here (probed once).

    A platform can expose the module but refuse segments (no ``/dev/shm``
    mount, seccomp, exhausted shm quota) — probe with a tiny create/attach
    round-trip instead of trusting the import.
    """
    global _available
    if _available is not None:
        return _available
    with _available_lock:
        if _available is not None:
            return _available
        try:
            slab = SharedSlab.create_bytes(64)
            try:
                attached = SharedSlab.attach_bytes(slab.name)
                attached.close()
            finally:
                slab.close()
            _available = True
        except Exception:  # pragma: no cover - platform-dependent
            logger.info("shared-memory data plane unavailable", exc_info=True)
            _available = False
    return _available


def slab_budget_bytes(budget: int | None = None) -> int:
    """Resolve the shared-memory budget: explicit > env > default."""
    if budget is not None:
        return max(0, int(budget))
    env = os.environ.get("REPRO_SHM_BUDGET_MB")
    if env:
        try:
            return max(0, int(float(env) * 1024 * 1024))
        except ValueError:
            logger.warning("ignoring malformed REPRO_SHM_BUDGET_MB=%r", env)
    return DEFAULT_BUDGET_BYTES


def _untrack(shm) -> None:
    """Detach a segment from the resource tracker.

    On POSIX Pythons < 3.13 ``SharedMemory.__init__`` registers every
    open — including attach-only ones — so a worker exiting would have
    the tracker unlink slabs the parent still owns (and warn about a
    "leak" it never had). Creators untrack too: the tracker keeps one
    shared name-set for the whole process tree, so mixing its bookkeeping
    with attach-side opens double-removes. Slab lifecycle is owned
    entirely by the finalizers here plus :func:`reap_orphans`.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - non-POSIX or tracker absent
        pass


def _release_segment(shm, owner: bool) -> None:
    try:
        shm.close()
    except OSError:  # pragma: no cover - already closed mapping
        pass
    if not owner:
        return
    try:
        # Not SharedMemory.unlink(): that would also unregister a name
        # this process untracked at creation (tracker noise, see _untrack).
        import _posixshmem

        _posixshmem.shm_unlink(shm._name)
    except FileNotFoundError:
        pass  # reaped by someone else (orphan sweep) — already gone
    except (ImportError, OSError):  # pragma: no cover - non-POSIX fallback
        try:
            shm.unlink()
        except OSError:
            pass


class SharedSlab:
    """One shared-memory segment, viewed as a matrix or as raw bytes.

    Matrix slabs (``n_features > 0``) expose :attr:`matrix`, a float64
    ``(capacity_rows, n_features)`` ndarray backed directly by the
    segment; byte slabs (:meth:`create_bytes`) expose :attr:`buf`.
    The creating process owns the segment: a ``weakref``-based finalizer
    unlinks it even if :meth:`close` is never reached (GC, crash-unwind),
    and :meth:`close` is idempotent. Attached copies only unmap.
    """

    __slots__ = ("name", "capacity_rows", "n_features", "nbytes", "owner", "_shm", "_finalizer", "__weakref__")

    def __init__(self, shm, capacity_rows: int, n_features: int, owner: bool) -> None:
        import weakref

        self._shm = shm
        self.capacity_rows = capacity_rows
        self.n_features = n_features
        self.nbytes = (
            capacity_rows * n_features * 8 if n_features else capacity_rows
        )
        self.owner = owner
        self.name = shm.name
        _untrack(shm)
        self._finalizer = weakref.finalize(self, _release_segment, shm, owner)

    # -- construction ------------------------------------------------------
    @staticmethod
    def _new_name() -> str:
        return f"{SLAB_PREFIX}-{os.getpid()}-{secrets.token_hex(6)}"

    @classmethod
    def create(cls, capacity_rows: int, n_features: int) -> "SharedSlab":
        """Create an owned float64 matrix slab of the given shape."""
        if capacity_rows < 1 or n_features < 1:
            raise ValueError(
                f"slab shape must be positive, got ({capacity_rows}, {n_features})"
            )
        shm = _shared_memory().SharedMemory(
            name=cls._new_name(), create=True, size=capacity_rows * n_features * 8
        )
        return cls(shm, capacity_rows, n_features, owner=True)

    @classmethod
    def create_bytes(cls, n_bytes: int) -> "SharedSlab":
        """Create an owned raw-byte slab (router scatter bodies)."""
        if n_bytes < 1:
            raise ValueError(f"slab size must be positive, got {n_bytes}")
        shm = _shared_memory().SharedMemory(
            name=cls._new_name(), create=True, size=n_bytes
        )
        return cls(shm, n_bytes, 0, owner=True)

    @classmethod
    def attach(cls, name: str, capacity_rows: int, n_features: int) -> "SharedSlab":
        """Map an existing matrix slab by name (does not own the segment)."""
        shm = _shared_memory().SharedMemory(name=name)
        if shm.size < capacity_rows * n_features * 8:
            _release_segment(shm, owner=False)
            raise ValueError(
                f"slab {name} holds {shm.size} bytes; "
                f"shape ({capacity_rows}, {n_features}) needs {capacity_rows * n_features * 8}"
            )
        return cls(shm, capacity_rows, n_features, owner=False)

    @classmethod
    def attach_bytes(cls, name: str) -> "SharedSlab":
        """Map an existing byte slab by name (does not own the segment)."""
        shm = _shared_memory().SharedMemory(name=name)
        return cls(shm, shm.size, 0, owner=False)

    # -- views -------------------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        """The segment as a float64 ``(capacity_rows, n_features)`` matrix."""
        if not self.n_features:
            raise TypeError("byte slab has no matrix view")
        return np.ndarray(
            (self.capacity_rows, self.n_features), dtype=np.float64, buffer=self._shm.buf
        )

    @property
    def buf(self) -> memoryview:
        """The raw segment bytes (may exceed ``nbytes`` by page rounding)."""
        return self._shm.buf

    def spec(self, rows: int, start: int, stop: int) -> dict:
        """Wire-able attachment descriptor for a worker-side shard window."""
        return {
            "name": self.name,
            "rows": int(rows),
            "features": int(self.n_features),
            "start": int(start),
            "stop": int(stop),
        }

    # -- lifecycle ---------------------------------------------------------
    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def close(self) -> None:
        """Unmap (and, for the owner, unlink). Safe to call repeatedly."""
        self._finalizer()

    def __enter__(self) -> "SharedSlab":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shape = f"({self.capacity_rows}, {self.n_features})" if self.n_features else f"{self.nbytes}B"
        return f"SharedSlab({self.name}, {shape}, owner={self.owner})"


# ---------------------------------------------------------------------------
# worker-side attachment cache
# ---------------------------------------------------------------------------
#: pool slabs keep their names across a whole stream, so workers cache a
#: bounded number of mappings instead of re-mmapping per shard
_ATTACH_CACHE: "dict[str, SharedSlab]" = {}
_ATTACH_CACHE_MAX = 8


def attach_window(spec: dict, cache: bool) -> tuple[np.ndarray, "SharedSlab | None"]:
    """Resolve a :meth:`SharedSlab.spec` descriptor into a matrix window.

    Returns ``(window, slab_to_close)``: with ``cache=True`` (streaming
    pool slabs, whose names recur) the mapping is kept in a small
    process-local cache and the caller must *not* close it; with
    ``cache=False`` (one-shot table slabs) the caller closes the returned
    slab when done so an unlinked segment's memory is released promptly.
    """
    name = str(spec["name"])
    rows, features = int(spec["rows"]), int(spec["features"])
    if cache:
        slab = _ATTACH_CACHE.pop(name, None)
        if slab is None:
            slab = SharedSlab.attach(name, rows, features)
        while len(_ATTACH_CACHE) >= _ATTACH_CACHE_MAX:
            _, evicted = _ATTACH_CACHE.popitem()
            evicted.close()
        _ATTACH_CACHE[name] = slab  # re-insert: LRU order
        holder = None
    else:
        slab = SharedSlab.attach(name, rows, features)
        holder = slab
    return slab.matrix[int(spec["start"]) : int(spec["stop"])], holder


# ---------------------------------------------------------------------------
# orphan reaping
# ---------------------------------------------------------------------------
def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):  # pragma: no cover - other owner
        return True
    return True


def reap_orphans() -> int:
    """Unlink slab segments whose creating process is gone.

    Scans ``/dev/shm`` for ``repro-slab-<pid>-*`` entries and removes the
    ones whose PID no longer exists — the leftovers of a parent that died
    before its finalizers ran. Called on every :meth:`SlabPool.open` so a
    crashed serving process cannot leak shared memory past its successor.
    Best-effort by design: never raises.
    """
    reaped = 0
    try:
        entries = list(_SHM_DIR.iterdir()) if _SHM_DIR.is_dir() else []
    except OSError:  # pragma: no cover - /dev/shm unreadable
        return 0
    for entry in entries:
        parts = entry.name.split("-")
        if len(parts) < 4 or "-".join(parts[:2]) != SLAB_PREFIX:
            continue
        try:
            pid = int(parts[2])
        except ValueError:
            continue
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            entry.unlink()
            reaped += 1
        except OSError:  # pragma: no cover - raced another reaper
            pass
    if reaped:
        logger.info("reaped %d orphaned shared-memory slab(s)", reaped)
    return reaped


# ---------------------------------------------------------------------------
# slab ring for the streaming path
# ---------------------------------------------------------------------------
class SlabPool:
    """A bounded ring of equally-shaped matrix slabs, reused across a stream.

    The streaming-sharded path writes super-chunks into slabs round-robin;
    a slab is only rewritten once the shard it carried has been folded
    (the caller holds that backpressure — see
    :meth:`ParallelValidator.validate_stream`). :meth:`open` returns
    ``None`` instead of a pool whenever shared memory is unavailable or
    the requested ring would blow the byte budget — the caller falls back
    to the pickled path, it never fails.
    """

    def __init__(self, slabs: "list[SharedSlab]") -> None:
        self.slabs = slabs
        self._closed = False

    @classmethod
    def open(
        cls,
        n_slabs: int,
        capacity_rows: int,
        n_features: int,
        budget_bytes: int | None = None,
    ) -> "SlabPool | None":
        """Build a ring of up to ``n_slabs`` slabs within ``budget_bytes``.

        Reaps orphans first (a crashed predecessor's segments count
        against the same kernel quota this pool is about to draw on).
        Shrinks the ring to fit the budget; with fewer than 2 affordable
        slabs there is nothing to overlap, so the pool declines entirely.
        """
        if not shm_available():
            return None
        reap_orphans()
        slab_bytes = capacity_rows * n_features * 8
        budget = slab_budget_bytes(budget_bytes)
        affordable = slab_bytes and budget // slab_bytes
        n_slabs = min(n_slabs, int(affordable))
        if n_slabs < 2:
            return None
        slabs: "list[SharedSlab]" = []
        try:
            for _ in range(n_slabs):
                slabs.append(SharedSlab.create(capacity_rows, n_features))
        except OSError:  # pragma: no cover - quota exhausted mid-build
            for slab in slabs:
                slab.close()
            return None
        return cls(slabs)

    def __len__(self) -> int:
        return len(self.slabs)

    @property
    def nbytes(self) -> int:
        return sum(slab.nbytes for slab in self.slabs)

    def slab(self, index: int) -> SharedSlab:
        """The ring slab for slot ``index`` (round-robin)."""
        return self.slabs[index % len(self.slabs)]

    def close(self) -> None:
        """Unlink every slab. Safe to call repeatedly."""
        if self._closed:
            return
        self._closed = True
        for slab in self.slabs:
            slab.close()

    def __enter__(self) -> "SlabPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
