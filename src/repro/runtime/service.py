"""Multi-pipeline serving layer: load, cache, and dispatch validation.

A :class:`ValidationService` fronts many fitted DQuaG pipelines — one
per dataset/tenant — the way a model server fronts model versions:

* pipelines are **registered** by name against a weight archive
  (``DQuaG.save``) and loaded lazily on first request — a load compiles
  both the model kernels and the preprocessor's
  :class:`~repro.data.plan.TransformPlan`, so the first request after a
  (re)load already runs the vectorized scan-rate encode path;
* loaded pipelines live in an **LRU cache** of bounded capacity, so a
  service can front hundreds of registered pipelines with a handful
  resident (reloads come straight from the archive — no clean table
  needed, the preprocessor state is persisted in the archive metadata).
  Directly-``add()``-ed pipelines are *pinned*: they have no archive to
  reload from, so they are never evicted and do not count against the
  LRU capacity;
* requests dispatch across a **thread pool**. The compiled inference
  engine is plain NumPy, whose matmuls release the GIL, so concurrent
  batches genuinely overlap on multicore hosts.

This is the dispatch surface the HTTP gateway (:mod:`repro.serve`)
fronts: ``validate``/``repair``/``submit_many`` plus per-pipeline
:meth:`pipeline_stats` and a wire-encodable :class:`ServiceStats`
snapshot. Every pipeline additionally gets a lazy per-generation
:class:`~repro.monitor.monitor.DriftMonitor` (see :meth:`monitor_for`)
that every validate path folds its traffic into.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.core.pipeline import DQuaG
from repro.core.repair import RepairSummary
from repro.core.validator import ValidationReport
from repro.data.table import Table
from repro.exceptions import ReproError
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.monitor.monitor import DriftMonitor, MonitorSnapshot
    from repro.runtime.sharding import ParallelValidator
    from repro.runtime.streaming import Chunk, StreamSummary

__all__ = ["PipelineEntry", "ServiceStats", "ValidationService"]

logger = get_logger("runtime.service")


@dataclass
class PipelineEntry:
    """A resident pipeline plus its bookkeeping."""

    name: str
    pipeline: DQuaG
    source: Path | None = None
    hits: int = 0
    #: directly-added pipelines have no archive to reload from, so the
    #: LRU never evicts them and they do not count against capacity
    pinned: bool = field(default=False)


@dataclass
class ServiceStats:
    """Wire-encodable snapshot of a service's aggregate + per-pipeline state."""

    registered: int
    resident: int
    loads: int
    evictions: int
    hits: int
    validations: int
    repairs: int
    rows_validated: int
    #: shard pools reclaimed by the idle-timeout reaper (see
    #: ``shard_idle_timeout``); additive in codec revision 5
    pool_reaps: int = 0
    #: per-pipeline detail: resident/pinned/hits/source plus lifetime
    #: loads/validations/repairs/rows_validated counters
    pipelines: dict[str, dict] = field(default_factory=dict)

    # -- wire protocol (repro.api) ----------------------------------------
    def to_dict(self) -> dict:
        from repro.api.protocol import service_stats_to_dict

        return service_stats_to_dict(self)

    @staticmethod
    def from_dict(payload: dict) -> "ServiceStats":
        from repro.api.protocol import service_stats_from_dict

        return service_stats_from_dict(payload)


def _fresh_counters() -> dict[str, int]:
    return {"loads": 0, "validations": 0, "repairs": 0, "rows_validated": 0}


class ValidationService:
    """Registry + LRU cache + concurrent dispatcher for fitted pipelines.

    >>> service = ValidationService(capacity=2)            # doctest: +SKIP
    >>> service.register("hotel", "models/hotel.npz")      # doctest: +SKIP
    >>> report = service.validate("hotel", batch)          # doctest: +SKIP
    >>> reports = service.validate_many([("hotel", b1), ("taxi", b2)])  # doctest: +SKIP
    """

    def __init__(
        self,
        capacity: int = 4,
        max_workers: int | None = None,
        shard_workers: int | None = None,
        monitor_window: int = 32,
        use_shm: bool | None = None,
        shard_idle_timeout: float | None = 300.0,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._sources: dict[str, Path] = {}
        self._entries: "OrderedDict[str, PipelineEntry]" = OrderedDict()
        self._lock = threading.RLock()
        self._load_locks: dict[str, threading.Lock] = {}
        #: lifetime per-pipeline counters; survive eviction
        self._counters: dict[str, dict[str, int]] = {}
        self._pool = ThreadPoolExecutor(max_workers=max_workers, thread_name_prefix="dquag-validate")
        self.n_loads = 0
        self.n_evictions = 0
        #: total shard-worker budget across all pipelines: concurrent
        #: sharded requests draw from it and fall back to the in-process
        #: path when it is exhausted (see validate_sharded). 0 disables
        #: sharded execution entirely (every request runs in-process).
        self.shard_workers = (
            (os.cpu_count() or 1) if shard_workers is None else max(0, int(shard_workers))
        )
        self._shard_available = self.shard_workers
        #: one pool per pipeline name, built at shard_workers width; the
        #: per-request grant caps how many shards run on it concurrently
        self._parallel: dict[str, "ParallelValidator"] = {}
        #: shared-memory data plane toggle handed to every shard pool
        #: (None = auto-detect, False = pickled only, True = prefer shm)
        self.use_shm = use_shm
        #: idle seconds after which a quiet pipeline's shard pool is
        #: reaped (its worker processes released); None/0 disables the
        #: reaper. A reaped pool rebuilds transparently on next use.
        self.shard_idle_timeout = (
            None if not shard_idle_timeout else float(shard_idle_timeout)
        )
        self.n_pool_reaps = 0
        self._parallel_last_used: dict[str, float] = {}
        self._parallel_busy: dict[str, int] = {}
        self._reaper: threading.Thread | None = None
        self._reaper_stop = threading.Event()
        #: bumped on every register()/add(); lets a shard-pool build that
        #: raced a re-registration detect that it is stale
        self._generations: dict[str, int] = {}
        #: rolling-window size of per-pipeline drift monitors (chunks);
        #: 0 disables monitoring entirely
        self.monitor_window = max(0, int(monitor_window))
        #: per-pipeline drift monitors, tagged with the generation whose
        #: baseline they were built from — a re-register()/re-add() bumps
        #: the generation, so a monitor watching the old weights' baseline
        #: can never be resurrected (it survives plain LRU eviction,
        #: which does not change the weights)
        self._monitors: dict[str, tuple[int, "DriftMonitor"]] = {}
        #: per-pipeline declarative rule sets (see set_rules). Rule sets
        #: are *configuration*, not derived from the weights, so they
        #: persist across re-register()/re-add(); only their compiled
        #: plans are generation-tagged (the encoder state they were
        #: compiled against changes with the weights).
        self._rules: dict[str, "object"] = {}
        self._rule_plans: dict[str, tuple[int, "object"]] = {}
        #: optional micro-batching scheduler (see attach_scheduler):
        #: when set, submit()/submit_many() coalesce through it instead
        #: of dispatching one engine call per request on the thread pool
        self._scheduler = None
        self._closed = False

    # -- registration ------------------------------------------------------
    def register(self, name: str, archive: str | Path) -> None:
        """Register a weight archive under ``name`` (loaded on demand)."""
        archive = Path(archive)
        if not archive.exists():
            raise ReproError(f"no such pipeline archive: {archive}")
        with self._lock:
            self._sources[name] = archive
            # A stale resident copy must not outlive its re-registration,
            # and neither must shard pools serving the old archive, nor
            # drift monitors watching the old weights' baseline.
            self._entries.pop(name, None)
            self._generations[name] = self._generations.get(name, 0) + 1
            self._monitors.pop(name, None)
        self._close_parallel_for(name)

    def add(self, name: str, pipeline: DQuaG) -> None:
        """Insert an already-fitted pipeline (pinned: never evicted)."""
        pipeline._require_validator()
        with self._lock:
            self._entries[name] = PipelineEntry(name=name, pipeline=pipeline, pinned=True)
            self._entries.move_to_end(name)
            self._generations[name] = self._generations.get(name, 0) + 1
            self._monitors.pop(name, None)
        # Shard pools built from a previously-added pipeline of the same
        # name would keep serving the old weights.
        self._close_parallel_for(name)

    @property
    def registered(self) -> list[str]:
        with self._lock:
            return sorted(set(self._sources) | set(self._entries))

    @property
    def resident(self) -> list[str]:
        """Names currently loaded, least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    # -- cache -------------------------------------------------------------
    def get(self, name: str) -> DQuaG:
        """Fetch a pipeline, loading and caching it if needed.

        Archive loading (disk read + kernel compile) happens *outside*
        the registry lock, behind a per-name loading lock — a cache miss
        on one pipeline must not stall requests to resident ones.
        """
        with self._lock:
            entry = self._entries.get(name)
            if entry is not None:
                entry.hits += 1
                self._entries.move_to_end(name)
                return entry.pipeline
            source = self._sources.get(name)
            if source is None:
                raise ReproError(
                    f"unknown pipeline {name!r}; registered: {self.registered}"
                )
            generation = self._generations.get(name, 0)
            load_lock = self._load_locks.setdefault(name, threading.Lock())

        with load_lock:
            # Another thread may have finished the same load meanwhile.
            with self._lock:
                entry = self._entries.get(name)
                if entry is not None:
                    entry.hits += 1
                    self._entries.move_to_end(name)
                    return entry.pipeline
            pipeline = DQuaG().load_weights(source)
            with self._lock:
                if self._generations.get(name, 0) != generation:
                    # The name was re-registered while we were loading
                    # (generations catch even a same-path re-register of
                    # an archive overwritten in place): caching this
                    # stale pipeline would resurrect the old weights.
                    # Discard and retry against the current source.
                    stale = True
                    victims: list[str] = []
                else:
                    stale = False
                    self.n_loads += 1
                    self._counter(name)["loads"] += 1
                    self._entries[name] = PipelineEntry(
                        name=name, pipeline=pipeline, source=source, hits=1
                    )
                    self._entries.move_to_end(name)
                    victims = self._evict_over_capacity()
        if stale:
            return self.get(name)
        # Shard pools of LRU-evicted pipelines hold a full pipeline copy
        # per worker process; keeping them alive would defeat the
        # capacity bound. Closed outside the registry lock (slow).
        for victim in victims:
            self._close_parallel_for(victim)
        return pipeline

    def _evict_over_capacity(self) -> list[str]:
        # Pinned entries are exempt from the capacity budget entirely:
        # a directly-add()ed pipeline must never crowd archive-backed
        # ones out of their LRU slots (nor be evicted itself).
        victims: list[str] = []
        evictable = [n for n, e in self._entries.items() if not e.pinned]
        while len(evictable) > self.capacity:
            victim = evictable.pop(0)
            del self._entries[victim]
            self.n_evictions += 1
            victims.append(victim)
            logger.info("evicted pipeline %r (capacity %d)", victim, self.capacity)
        return victims

    def evict(self, name: str) -> bool:
        """Drop a resident pipeline (no-op for pinned or absent entries)."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None or entry.pinned:
                return False
            del self._entries[name]
        self._close_parallel_for(name)
        return True

    # -- dispatch ----------------------------------------------------------
    def validate(self, name: str, table: Table) -> ValidationReport:
        """Validate one batch on the named pipeline (synchronous).

        The batch is preprocessed exactly once: the same matrix feeds
        the validator, the rule plan (when :meth:`set_rules` attached
        one), and the drift monitor — rules add vectorized comparisons
        over the already-encoded matrix, not a second transform.
        """
        validator = self.get(name)._require_validator()
        matrix, report = validator.validate_with_matrix(table)
        plan = self.rule_plan_for(name)
        if plan is not None:
            from repro.rules import apply_rules

            report = apply_rules(report, matrix, plan)
        self.count_validation(name, table.n_rows)
        self._observe_matrix(name, matrix, report)
        return report

    # -- sharded dispatch --------------------------------------------------
    def validate_sharded(
        self, name: str, table: Table, workers: int | None = None
    ) -> ValidationReport:
        """Validate one batch across a per-pipeline shard worker pool.

        ``workers`` is a request, not a guarantee: the grant is capped by
        the service-wide ``shard_workers`` budget, and what other sharded
        requests currently hold. With fewer than 2 grantable workers the
        batch runs on the ordinary in-process path — the result is
        bit-identical either way, only the wall-clock changes.
        """
        from repro.exceptions import TransientServiceError

        requested = self.shard_workers if workers is None else int(workers)
        granted = self._acquire_shard_workers(requested)
        # Empty batches take the in-process path too: the one-shot report
        # for zero rows is well-defined, while a zero-shard plan is not.
        if granted < 2 or table.n_rows == 0:
            if granted:
                self._release_shard_workers(granted)
            return self.validate(name, table)
        # Resolved before dispatch so a rule set incompatible with the
        # current weights fails the request instead of a worker.
        rule_plan = self.rule_plan_for(name)
        ruleset = None if rule_plan is None else rule_plan.ruleset
        self._parallel_note_busy(name)
        try:
            try:
                report = self._parallel_for(name).validate_table(
                    table, shards=granted, keep_cell_errors=True, rules=ruleset
                )
            except TransientServiceError:
                # A concurrent re-register()/add()/eviction closed the
                # pool under us. _close_parallel_for popped it from the
                # cache, so one retry builds a fresh pool against the
                # current registration. Deterministic failures (schema
                # errors, broken workers) are not retried.
                report = self._parallel_for(name).validate_table(
                    table, shards=granted, keep_cell_errors=True, rules=ruleset
                )
        finally:
            self._parallel_note_idle(name)
            self._release_shard_workers(granted)
        self.count_validation(name, table.n_rows)
        self._observe_batch(name, table, report)
        return report

    def validate_stream_sharded(
        self, name: str, chunks: "Iterable[Chunk]", workers: int | None = None
    ) -> "StreamSummary":
        """Validate a chunk stream across a per-pipeline shard worker pool.

        Falls back to the bounded-memory in-process streaming path when
        the worker budget grants fewer than 2 workers.

        Drift monitoring: on the in-process fallback the monitor rides
        the :class:`StreamingValidator` (observing each preprocessed
        chunk with its flags); on the sharded path the coordinator
        observes each chunk's distribution as it hands it to the workers
        (Table chunks cost one extra preprocessing pass there) and feeds
        the flag-rate chart once from the merged summary.
        """
        from repro.exceptions import TransientServiceError
        from repro.runtime.streaming import StreamingValidator

        monitor = self.monitor_for(name)
        rule_plan = self.rule_plan_for(name)
        requested = self.shard_workers if workers is None else int(workers)
        granted = self._acquire_shard_workers(requested)
        if granted < 2:
            summary = StreamingValidator(
                self.get(name)._require_validator(), monitor=monitor, rules=rule_plan
            ).validate_stream(chunks)
        else:
            if monitor is not None:
                chunks = self._observed_chunks(monitor, chunks)
            self._parallel_note_busy(name)
            try:
                summary = self._parallel_for(name).validate_stream(
                    chunks,
                    keep_cell_errors=False,
                    max_parallel=granted,
                    rules=None if rule_plan is None else rule_plan.ruleset,
                )
            except TransientServiceError as exc:
                # Unlike the table path, the chunk iterator is partially
                # consumed by now, so a closed-pool race cannot be
                # retried transparently — fail with guidance instead.
                raise TransientServiceError(
                    f"sharded stream on {name!r} was interrupted (pipeline "
                    "re-registered or pool closed mid-stream); retry the request"
                ) from exc
            finally:
                self._parallel_note_idle(name)
                self._release_shard_workers(granted)
            if monitor is not None:
                try:
                    monitor.observe_flags(summary.n_flagged, summary.n_rows)
                except Exception:
                    logger.warning("drift monitor update failed for %r", name, exc_info=True)
        self.count_validation(name, summary.n_rows)
        return summary

    def _acquire_shard_workers(self, requested: int) -> int:
        with self._lock:
            granted = min(max(0, requested), self._shard_available)
            if granted < 2:
                return 0
            self._shard_available -= granted
            return granted

    def _release_shard_workers(self, granted: int) -> None:
        with self._lock:
            self._shard_available += granted

    def _parallel_for(self, name: str) -> "ParallelValidator":
        """The cached sharded executor for ``name``.

        One pool per pipeline, built at ``shard_workers`` width (the
        per-request grant then caps how many shards run concurrently).
        Archive-backed pipelines shard straight from their registered
        archive; pinned (directly-added) ones are persisted to a temp
        archive on first use. A re-``register()``/re-``add()`` racing the
        build is detected via the per-name generation counter and the
        stale pool discarded — mirroring the stale-load guard in
        :meth:`get`.
        """
        from repro.runtime.sharding import ParallelValidator

        while True:
            with self._lock:
                parallel = self._parallel.get(name)
                if parallel is not None:
                    return parallel
                source = self._sources.get(name)
                generation = self._generations.get(name, 0)
            pipeline = self.get(name)
            built = ParallelValidator.from_pipeline(
                pipeline, archive=source, workers=self.shard_workers, use_shm=self.use_shm
            )
            with self._lock:
                if self._closed:
                    closed = True
                    stale = False
                elif self._generations.get(name, 0) != generation:
                    closed = False
                    stale = True
                else:
                    closed = False
                    stale = False
                    existing = self._parallel.setdefault(name, built)
                    self._parallel_last_used.setdefault(name, time.monotonic())
            if closed:
                # A racing service.close() already drained _parallel;
                # inserting now would leak this pool's worker processes.
                built.close()
                raise ReproError("ValidationService is closed")
            if stale:
                built.close()
                continue
            if existing is not built:
                built.close()
            self._ensure_reaper()
            return existing

    def _close_parallel_for(self, name: str) -> None:
        with self._lock:
            parallel = self._parallel.pop(name, None)
            self._parallel_last_used.pop(name, None)
        if parallel is not None:
            parallel.close()

    # -- idle-pool reaping -------------------------------------------------
    def _parallel_note_busy(self, name: str) -> None:
        # Taken *before* the pool lookup, so the reaper (which checks
        # busy counts under the same lock) can never close a pool
        # between a request resolving it and submitting to it.
        with self._lock:
            self._parallel_busy[name] = self._parallel_busy.get(name, 0) + 1

    def _parallel_note_idle(self, name: str) -> None:
        with self._lock:
            count = self._parallel_busy.get(name, 0) - 1
            if count > 0:
                self._parallel_busy[name] = count
            else:
                self._parallel_busy.pop(name, None)
            self._parallel_last_used[name] = time.monotonic()

    def reap_idle_pools(self) -> int:
        """Close shard pools idle longer than ``shard_idle_timeout``.

        Quiet pipelines would otherwise pin their worker processes
        forever; a reaped pool rebuilds transparently on the next sharded
        request. Returns how many pools were reclaimed (also summed into
        ``pool_reaps`` in :meth:`stats_snapshot`). Runs periodically on a
        background thread, and may be called directly.
        """
        timeout = self.shard_idle_timeout
        if not timeout:
            return 0
        with self._lock:
            now = time.monotonic()
            victims = [
                name
                for name in self._parallel
                if not self._parallel_busy.get(name)
                and now - self._parallel_last_used.get(name, now) >= timeout
            ]
            pools = [self._parallel.pop(name) for name in victims]
            for name in victims:
                self._parallel_last_used.pop(name, None)
            self.n_pool_reaps += len(victims)
        for pool in pools:
            pool.close()
        if victims:
            logger.info("reaped %d idle shard pool(s): %s", len(victims), ", ".join(victims))
        return len(victims)

    def _ensure_reaper(self) -> None:
        if not self.shard_idle_timeout:
            return
        with self._lock:
            if self._reaper is not None or self._closed:
                return
            self._reaper = threading.Thread(
                target=self._reaper_loop, name="dquag-pool-reaper", daemon=True
            )
            self._reaper.start()

    def _reaper_loop(self) -> None:
        interval = max(0.05, min(self.shard_idle_timeout / 4, 30.0))
        while not self._reaper_stop.wait(interval):
            try:
                self.reap_idle_pools()
            except Exception:  # pragma: no cover - keep the reaper alive
                logger.warning("idle-pool reap failed", exc_info=True)

    def count_validation(self, name: str, n_rows: int, validations: int = 1) -> None:
        """Record validation work done outside :meth:`validate`.

        Transports that drive a pipeline directly (e.g. the gateway's
        streaming endpoint) call this so per-pipeline stats still see
        their traffic.
        """
        with self._lock:
            counters = self._counter(name)
            counters["validations"] += validations
            counters["rows_validated"] += n_rows

    # -- declarative rules -------------------------------------------------
    def set_rules(self, name: str, rules) -> None:
        """Attach a declarative rule set to pipeline ``name``.

        ``rules`` is anything :func:`repro.rules.resolve_ruleset`
        accepts (a :class:`~repro.rules.RuleSet`, a wire payload dict, a
        JSON file path). The set is compiled eagerly against the
        pipeline's fitted preprocessor, so incompatible rules (unknown
        column, unfitted category, …) raise
        :class:`~repro.exceptions.RuleConfigError` *here* — at
        registration time — never on a later validate. Every subsequent
        validate/stream/sharded request on ``name`` then fuses rule
        verdicts into its report until :meth:`clear_rules`.

        Rule sets survive pipeline re-registration (they are
        configuration, not weights); the compiled plan is rebuilt
        against the new encoder state on the next request.
        """
        from repro.rules import resolve_ruleset

        ruleset = resolve_ruleset(rules)
        if ruleset is None:
            raise ReproError("set_rules requires a rule set; use clear_rules to remove one")
        pipeline = self.get(name)
        with self._lock:
            generation = self._generations.get(name, 0)
        plan = ruleset.compile(pipeline._require_validator().preprocessor)
        with self._lock:
            self._rules[name] = ruleset
            if self._generations.get(name, 0) == generation:
                self._rule_plans[name] = (generation, plan)
            else:
                self._rule_plans.pop(name, None)

    def get_rules(self, name: str):
        """The rule set attached to ``name`` (``None`` when rules are off)."""
        with self._lock:
            return self._rules.get(name)

    def clear_rules(self, name: str) -> bool:
        """Detach the rule set of ``name``; True when one was attached."""
        with self._lock:
            self._rule_plans.pop(name, None)
            return self._rules.pop(name, None) is not None

    def rule_plan_for(self, name: str):
        """The compiled rule plan for ``name`` (``None`` when rules are off).

        Cached against the pipeline generation, mirroring
        :meth:`monitor_for`: a re-``register()``/re-``add()`` discards
        the plan compiled against the old encoder state and recompiles
        the (persisted) rule set against the current one. Recompilation
        against new weights can fail — e.g. a category the new encoder
        was not fitted with — and that :class:`RuleConfigError`
        deliberately surfaces on the request rather than silently
        validating without rules.
        """
        while True:
            with self._lock:
                ruleset = self._rules.get(name)
                if ruleset is None:
                    return None
                generation = self._generations.get(name, 0)
                cached = self._rule_plans.get(name)
                if cached is not None and cached[0] == generation:
                    return cached[1]
            # Load + compile happen outside the registry lock.
            pipeline = self.get(name)
            plan = ruleset.compile(pipeline._require_validator().preprocessor)
            with self._lock:
                if self._generations.get(name, 0) != generation:
                    continue
                if self._rules.get(name) is not ruleset:
                    # set_rules()/clear_rules() raced the compile; loop to
                    # resolve against the current rule set.
                    continue
                cached = self._rule_plans.get(name)
                if cached is not None and cached[0] == generation:
                    return cached[1]
                self._rule_plans[name] = (generation, plan)
                return plan

    # -- drift monitoring --------------------------------------------------
    def monitor_for(self, name: str) -> "DriftMonitor | None":
        """The drift monitor watching pipeline ``name``.

        Built lazily from the pipeline's training-time baseline and
        cached against the pipeline's generation: a re-``register()``/
        re-``add()`` (new weights, new baseline) discards the old
        monitor, while plain LRU eviction keeps it (the weights did not
        change, so neither did the baseline). Returns ``None`` when
        monitoring is disabled (``monitor_window=0``) or the pipeline's
        archive predates monitoring baselines.
        """
        if self.monitor_window < 1:
            return None
        while True:
            with self._lock:
                generation = self._generations.get(name, 0)
                cached = self._monitors.get(name)
                if cached is not None and cached[0] == generation:
                    return cached[1]
            # Load + baseline build happen outside the registry lock.
            pipeline = self.get(name)
            try:
                monitor = pipeline.monitor(window_chunks=self.monitor_window)
            except ReproError:
                return None
            with self._lock:
                current = self._generations.get(name, 0)
                if current != generation:
                    # The pipeline was re-registered while we were
                    # building: our monitor may watch the *old* weights'
                    # baseline. Discard and retry against the current
                    # registration — mirroring the stale-load guard in
                    # get().
                    continue
                cached = self._monitors.get(name)
                if cached is not None and cached[0] == generation:
                    # Another thread won the build race; keep its monitor
                    # (and the observations it already folded in).
                    return cached[1]
                self._monitors[name] = (generation, monitor)
                return monitor

    def monitor_snapshot(self, name: str) -> "MonitorSnapshot | None":
        """Wire-serializable state of the named pipeline's monitor."""
        monitor = self.monitor_for(name)
        return None if monitor is None else monitor.snapshot()

    def monitor_snapshots(self) -> "dict[str, MonitorSnapshot]":
        """Snapshots of every *live* monitor (does not force-load
        pipelines that have never been monitored)."""
        with self._lock:
            live = {name: entry[1] for name, entry in self._monitors.items()}
        return {name: monitor.snapshot() for name, monitor in sorted(live.items())}

    def observe_validation(self, name: str, matrix, report: ValidationReport) -> None:
        """Fold one externally-validated batch into the drift monitor.

        For dispatchers that drive the validator directly on an
        already-preprocessed matrix (the micro-batching scheduler's fused
        slabs): the monitor sees the same rows and flags it would have
        seen per-request, in one histogram pass. Advisory, like every
        monitor update — failures are logged, never raised.
        """
        self._observe_matrix(name, matrix, report)

    def _observe_matrix(self, name: str, matrix, report: ValidationReport) -> None:
        """Fold one already-preprocessed batch into the drift monitor.

        Monitoring is advisory: any failure is logged and swallowed so
        it can never fail a validation request that already succeeded.
        """
        if self.monitor_window < 1 or matrix.shape[0] == 0:
            return
        try:
            monitor = self.monitor_for(name)
            if monitor is not None:
                monitor.observe_matrix(matrix, n_flagged=report.n_flagged)
        except Exception:
            logger.warning("drift monitor update failed for %r", name, exc_info=True)

    def _observe_batch(self, name: str, table: Table, report: ValidationReport) -> None:
        """Fold one validated batch into the pipeline's drift monitor.

        Used by the sharded table path, where the workers preprocess
        their own shards and the coordinator never sees a matrix — the
        observation costs one coordinator-side transform there.
        Monitoring is advisory: any failure is logged and swallowed.
        """
        if self.monitor_window < 1 or table.n_rows == 0:
            return
        try:
            monitor = self.monitor_for(name)
            if monitor is not None:
                monitor.observe_table(table, n_flagged=report.n_flagged)
        except Exception:
            logger.warning("drift monitor update failed for %r", name, exc_info=True)

    def _observed_chunks(self, monitor: "DriftMonitor", chunks: "Iterable[Chunk]"):
        """Tee a chunk stream into ``monitor`` (distribution only —
        flags are not known until the workers report back)."""
        for chunk in chunks:
            try:
                if isinstance(chunk, Table):
                    monitor.observe_table(chunk)
                else:
                    monitor.observe_matrix(chunk)
            except Exception:
                logger.warning("drift monitor chunk observation failed", exc_info=True)
            yield chunk

    def repair(
        self,
        name: str,
        table: Table,
        report: ValidationReport | None = None,
        iterations: int = 1,
    ) -> tuple[Table, RepairSummary]:
        """Repair flagged cells of one batch on the named pipeline."""
        repaired, summary = self.get(name).repair(table, report=report, iterations=iterations)
        with self._lock:
            self._counter(name)["repairs"] += 1
        return repaired, summary

    def attach_scheduler(self, scheduler) -> None:
        """Route :meth:`submit`/:meth:`submit_many` through a scheduler.

        ``scheduler`` is a :class:`~repro.serve.scheduler.RequestScheduler`
        (duck-typed: anything with ``submit(name, table) -> Future``).
        Attached, same-pipeline requests coalesce into fused engine slabs
        under the scheduler's latency budget; per-request results are
        bit-identical either way. ``None`` detaches and restores the
        one-engine-call-per-request thread-pool dispatch. The scheduler's
        lifecycle stays with its creator (the gateway or the caller) —
        :meth:`close` does not close it.
        """
        self._scheduler = scheduler

    def submit(self, name: str, table: Table) -> "Future[ValidationReport]":
        """Queue one batch for validation (scheduler or thread pool).

        With a scheduler attached (:meth:`attach_scheduler`) the request
        joins its pipeline's micro-batch queue; otherwise it dispatches
        as its own engine call on the thread pool.
        """
        if self._scheduler is not None:
            return self._scheduler.submit(name, table)
        return self._pool.submit(self.validate, name, table)

    def submit_many(
        self, requests: Iterable[tuple[str, Table]]
    ) -> "list[Future[ValidationReport]]":
        """Queue many (pipeline, batch) pairs; returns one future each.

        With a scheduler attached, same-pipeline requests in (and across)
        one call coalesce into fused slabs — the futures still resolve to
        per-request reports, bit-identical to unscheduled dispatch.
        """
        return [self.submit(name, table) for name, table in requests]

    def validate_many(self, requests: Iterable[tuple[str, Table]]) -> list[ValidationReport]:
        """Validate many (pipeline, batch) pairs concurrently.

        Results are returned in request order; the NumPy kernels release
        the GIL in their matmuls, so distinct batches overlap on
        multicore hosts.
        """
        return [future.result() for future in self.submit_many(requests)]

    # -- lifecycle ---------------------------------------------------------
    def _counter(self, name: str) -> dict[str, int]:
        return self._counters.setdefault(name, _fresh_counters())

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "registered": len(set(self._sources) | set(self._entries)),
                "resident": len(self._entries),
                "loads": self.n_loads,
                "evictions": self.n_evictions,
                "hits": sum(e.hits for e in self._entries.values()),
                "validations": sum(c["validations"] for c in self._counters.values()),
                "repairs": sum(c["repairs"] for c in self._counters.values()),
                "rows_validated": sum(c["rows_validated"] for c in self._counters.values()),
                "pool_reaps": self.n_pool_reaps,
            }

    def pipeline_stats(self) -> dict[str, dict]:
        """Per-pipeline detail: residency plus lifetime counters."""
        with self._lock:
            names = set(self._sources) | set(self._entries) | set(self._counters)
            detail: dict[str, dict] = {}
            for name in sorted(names):
                entry = self._entries.get(name)
                source = entry.source if entry is not None else self._sources.get(name)
                detail[name] = {
                    "resident": entry is not None,
                    "pinned": bool(entry is not None and entry.pinned),
                    "hits": entry.hits if entry is not None else 0,
                    "source": None if source is None else str(source),
                    **self._counters.get(name, _fresh_counters()),
                }
            return detail

    def stats_snapshot(self) -> ServiceStats:
        """Aggregate + per-pipeline stats as one wire-encodable object."""
        with self._lock:
            return ServiceStats(pipelines=self.pipeline_stats(), **self.stats())

    def close_parallel(self) -> None:
        """Close every cached shard pool without closing the service.

        Used by gateway shutdown: once the socket stops taking requests
        there is no traffic to shard, so the per-pipeline worker
        processes are released. The service stays usable — a later
        sharded request simply rebuilds its pool on demand.
        """
        with self._lock:
            validators = list(self._parallel.values())
            self._parallel.clear()
        for parallel in validators:
            parallel.close()

    def close(self) -> None:
        self._pool.shutdown(wait=True)
        self._reaper_stop.set()
        with self._lock:
            self._closed = True
            reaper, self._reaper = self._reaper, None
            validators = list(self._parallel.values())
            self._parallel.clear()
            self._parallel_last_used.clear()
            self._monitors.clear()
        if reaper is not None:
            reaper.join(timeout=5.0)
        for parallel in validators:
            parallel.close()

    def __enter__(self) -> "ValidationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
