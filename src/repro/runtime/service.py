"""Multi-pipeline serving layer: load, cache, and dispatch validation.

A :class:`ValidationService` fronts many fitted DQuaG pipelines — one
per dataset/tenant — the way a model server fronts model versions:

* pipelines are **registered** by name against a weight archive
  (``DQuaG.save``) and loaded lazily on first request;
* loaded pipelines live in an **LRU cache** of bounded capacity, so a
  service can front hundreds of registered pipelines with a handful
  resident (reloads come straight from the archive — no clean table
  needed, the preprocessor state is persisted in the archive metadata);
* requests dispatch across a **thread pool**. The compiled inference
  engine is plain NumPy, whose matmuls release the GIL, so concurrent
  batches genuinely overlap on multicore hosts.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.core.pipeline import DQuaG
from repro.core.validator import ValidationReport
from repro.data.table import Table
from repro.exceptions import ReproError
from repro.utils.logging import get_logger

__all__ = ["PipelineEntry", "ValidationService"]

logger = get_logger("runtime.service")


@dataclass
class PipelineEntry:
    """A resident pipeline plus its bookkeeping."""

    name: str
    pipeline: DQuaG
    source: Path | None = None
    hits: int = 0
    #: directly-added pipelines have no archive to reload from, so the
    #: LRU never evicts them
    pinned: bool = field(default=False)


class ValidationService:
    """Registry + LRU cache + concurrent dispatcher for fitted pipelines.

    >>> service = ValidationService(capacity=2)            # doctest: +SKIP
    >>> service.register("hotel", "models/hotel.npz")      # doctest: +SKIP
    >>> report = service.validate("hotel", batch)          # doctest: +SKIP
    >>> reports = service.validate_many([("hotel", b1), ("taxi", b2)])  # doctest: +SKIP
    """

    def __init__(self, capacity: int = 4, max_workers: int | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._sources: dict[str, Path] = {}
        self._entries: "OrderedDict[str, PipelineEntry]" = OrderedDict()
        self._lock = threading.RLock()
        self._load_locks: dict[str, threading.Lock] = {}
        self._pool = ThreadPoolExecutor(max_workers=max_workers, thread_name_prefix="dquag-validate")
        self.n_loads = 0
        self.n_evictions = 0

    # -- registration ------------------------------------------------------
    def register(self, name: str, archive: str | Path) -> None:
        """Register a weight archive under ``name`` (loaded on demand)."""
        archive = Path(archive)
        if not archive.exists():
            raise ReproError(f"no such pipeline archive: {archive}")
        with self._lock:
            self._sources[name] = archive
            # A stale resident copy must not outlive its re-registration.
            self._entries.pop(name, None)

    def add(self, name: str, pipeline: DQuaG) -> None:
        """Insert an already-fitted pipeline (pinned: never evicted)."""
        pipeline._require_validator()
        with self._lock:
            self._entries[name] = PipelineEntry(name=name, pipeline=pipeline, pinned=True)
            self._entries.move_to_end(name)

    @property
    def registered(self) -> list[str]:
        with self._lock:
            return sorted(set(self._sources) | set(self._entries))

    @property
    def resident(self) -> list[str]:
        """Names currently loaded, least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    # -- cache -------------------------------------------------------------
    def get(self, name: str) -> DQuaG:
        """Fetch a pipeline, loading and caching it if needed.

        Archive loading (disk read + kernel compile) happens *outside*
        the registry lock, behind a per-name loading lock — a cache miss
        on one pipeline must not stall requests to resident ones.
        """
        with self._lock:
            entry = self._entries.get(name)
            if entry is not None:
                entry.hits += 1
                self._entries.move_to_end(name)
                return entry.pipeline
            source = self._sources.get(name)
            if source is None:
                raise ReproError(
                    f"unknown pipeline {name!r}; registered: {self.registered}"
                )
            load_lock = self._load_locks.setdefault(name, threading.Lock())

        with load_lock:
            # Another thread may have finished the same load meanwhile.
            with self._lock:
                entry = self._entries.get(name)
                if entry is not None:
                    entry.hits += 1
                    self._entries.move_to_end(name)
                    return entry.pipeline
            pipeline = DQuaG().load_weights(source)
            with self._lock:
                self.n_loads += 1
                self._entries[name] = PipelineEntry(
                    name=name, pipeline=pipeline, source=source, hits=1
                )
                self._entries.move_to_end(name)
                self._evict_over_capacity()
            return pipeline

    def _evict_over_capacity(self) -> None:
        evictable = [n for n, e in self._entries.items() if not e.pinned]
        while len(self._entries) > self.capacity and evictable:
            victim = evictable.pop(0)
            del self._entries[victim]
            self.n_evictions += 1
            logger.info("evicted pipeline %r (capacity %d)", victim, self.capacity)

    def evict(self, name: str) -> bool:
        """Drop a resident pipeline (no-op if not resident)."""
        with self._lock:
            return self._entries.pop(name, None) is not None

    # -- dispatch ----------------------------------------------------------
    def validate(self, name: str, table: Table) -> ValidationReport:
        """Validate one batch on the named pipeline (synchronous)."""
        return self.get(name).validate(table)

    def submit(self, name: str, table: Table) -> "Future[ValidationReport]":
        """Queue one batch for validation on the thread pool."""
        return self._pool.submit(self.validate, name, table)

    def validate_many(self, requests: Iterable[tuple[str, Table]]) -> list[ValidationReport]:
        """Validate many (pipeline, batch) pairs concurrently.

        Results are returned in request order; the NumPy kernels release
        the GIL in their matmuls, so distinct batches overlap on
        multicore hosts.
        """
        futures = [self.submit(name, table) for name, table in requests]
        return [future.result() for future in futures]

    # -- lifecycle ---------------------------------------------------------
    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "registered": len(set(self._sources) | set(self._entries)),
                "resident": len(self._entries),
                "loads": self.n_loads,
                "evictions": self.n_evictions,
                "hits": sum(e.hits for e in self._entries.values()),
            }

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ValidationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
