"""Multi-pipeline serving layer: load, cache, and dispatch validation.

A :class:`ValidationService` fronts many fitted DQuaG pipelines — one
per dataset/tenant — the way a model server fronts model versions:

* pipelines are **registered** by name against a weight archive
  (``DQuaG.save``) and loaded lazily on first request;
* loaded pipelines live in an **LRU cache** of bounded capacity, so a
  service can front hundreds of registered pipelines with a handful
  resident (reloads come straight from the archive — no clean table
  needed, the preprocessor state is persisted in the archive metadata).
  Directly-``add()``-ed pipelines are *pinned*: they have no archive to
  reload from, so they are never evicted and do not count against the
  LRU capacity;
* requests dispatch across a **thread pool**. The compiled inference
  engine is plain NumPy, whose matmuls release the GIL, so concurrent
  batches genuinely overlap on multicore hosts.

This is the dispatch surface the HTTP gateway (:mod:`repro.serve`)
fronts: ``validate``/``repair``/``submit_many`` plus per-pipeline
:meth:`pipeline_stats` and a wire-encodable :class:`ServiceStats`
snapshot.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.core.pipeline import DQuaG
from repro.core.repair import RepairSummary
from repro.core.validator import ValidationReport
from repro.data.table import Table
from repro.exceptions import ReproError
from repro.utils.logging import get_logger

__all__ = ["PipelineEntry", "ServiceStats", "ValidationService"]

logger = get_logger("runtime.service")


@dataclass
class PipelineEntry:
    """A resident pipeline plus its bookkeeping."""

    name: str
    pipeline: DQuaG
    source: Path | None = None
    hits: int = 0
    #: directly-added pipelines have no archive to reload from, so the
    #: LRU never evicts them and they do not count against capacity
    pinned: bool = field(default=False)


@dataclass
class ServiceStats:
    """Wire-encodable snapshot of a service's aggregate + per-pipeline state."""

    registered: int
    resident: int
    loads: int
    evictions: int
    hits: int
    validations: int
    repairs: int
    rows_validated: int
    #: per-pipeline detail: resident/pinned/hits/source plus lifetime
    #: loads/validations/repairs/rows_validated counters
    pipelines: dict[str, dict] = field(default_factory=dict)

    # -- wire protocol (repro.api) ----------------------------------------
    def to_dict(self) -> dict:
        from repro.api.protocol import service_stats_to_dict

        return service_stats_to_dict(self)

    @staticmethod
    def from_dict(payload: dict) -> "ServiceStats":
        from repro.api.protocol import service_stats_from_dict

        return service_stats_from_dict(payload)


def _fresh_counters() -> dict[str, int]:
    return {"loads": 0, "validations": 0, "repairs": 0, "rows_validated": 0}


class ValidationService:
    """Registry + LRU cache + concurrent dispatcher for fitted pipelines.

    >>> service = ValidationService(capacity=2)            # doctest: +SKIP
    >>> service.register("hotel", "models/hotel.npz")      # doctest: +SKIP
    >>> report = service.validate("hotel", batch)          # doctest: +SKIP
    >>> reports = service.validate_many([("hotel", b1), ("taxi", b2)])  # doctest: +SKIP
    """

    def __init__(self, capacity: int = 4, max_workers: int | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._sources: dict[str, Path] = {}
        self._entries: "OrderedDict[str, PipelineEntry]" = OrderedDict()
        self._lock = threading.RLock()
        self._load_locks: dict[str, threading.Lock] = {}
        #: lifetime per-pipeline counters; survive eviction
        self._counters: dict[str, dict[str, int]] = {}
        self._pool = ThreadPoolExecutor(max_workers=max_workers, thread_name_prefix="dquag-validate")
        self.n_loads = 0
        self.n_evictions = 0

    # -- registration ------------------------------------------------------
    def register(self, name: str, archive: str | Path) -> None:
        """Register a weight archive under ``name`` (loaded on demand)."""
        archive = Path(archive)
        if not archive.exists():
            raise ReproError(f"no such pipeline archive: {archive}")
        with self._lock:
            self._sources[name] = archive
            # A stale resident copy must not outlive its re-registration.
            self._entries.pop(name, None)

    def add(self, name: str, pipeline: DQuaG) -> None:
        """Insert an already-fitted pipeline (pinned: never evicted)."""
        pipeline._require_validator()
        with self._lock:
            self._entries[name] = PipelineEntry(name=name, pipeline=pipeline, pinned=True)
            self._entries.move_to_end(name)

    @property
    def registered(self) -> list[str]:
        with self._lock:
            return sorted(set(self._sources) | set(self._entries))

    @property
    def resident(self) -> list[str]:
        """Names currently loaded, least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    # -- cache -------------------------------------------------------------
    def get(self, name: str) -> DQuaG:
        """Fetch a pipeline, loading and caching it if needed.

        Archive loading (disk read + kernel compile) happens *outside*
        the registry lock, behind a per-name loading lock — a cache miss
        on one pipeline must not stall requests to resident ones.
        """
        with self._lock:
            entry = self._entries.get(name)
            if entry is not None:
                entry.hits += 1
                self._entries.move_to_end(name)
                return entry.pipeline
            source = self._sources.get(name)
            if source is None:
                raise ReproError(
                    f"unknown pipeline {name!r}; registered: {self.registered}"
                )
            load_lock = self._load_locks.setdefault(name, threading.Lock())

        with load_lock:
            # Another thread may have finished the same load meanwhile.
            with self._lock:
                entry = self._entries.get(name)
                if entry is not None:
                    entry.hits += 1
                    self._entries.move_to_end(name)
                    return entry.pipeline
            pipeline = DQuaG().load_weights(source)
            with self._lock:
                self.n_loads += 1
                self._counter(name)["loads"] += 1
                self._entries[name] = PipelineEntry(
                    name=name, pipeline=pipeline, source=source, hits=1
                )
                self._entries.move_to_end(name)
                self._evict_over_capacity()
            return pipeline

    def _evict_over_capacity(self) -> None:
        # Pinned entries are exempt from the capacity budget entirely:
        # a directly-add()ed pipeline must never crowd archive-backed
        # ones out of their LRU slots (nor be evicted itself).
        evictable = [n for n, e in self._entries.items() if not e.pinned]
        while len(evictable) > self.capacity:
            victim = evictable.pop(0)
            del self._entries[victim]
            self.n_evictions += 1
            logger.info("evicted pipeline %r (capacity %d)", victim, self.capacity)

    def evict(self, name: str) -> bool:
        """Drop a resident pipeline (no-op for pinned or absent entries)."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None or entry.pinned:
                return False
            del self._entries[name]
            return True

    # -- dispatch ----------------------------------------------------------
    def validate(self, name: str, table: Table) -> ValidationReport:
        """Validate one batch on the named pipeline (synchronous)."""
        report = self.get(name).validate(table)
        self.count_validation(name, table.n_rows)
        return report

    def count_validation(self, name: str, n_rows: int, validations: int = 1) -> None:
        """Record validation work done outside :meth:`validate`.

        Transports that drive a pipeline directly (e.g. the gateway's
        streaming endpoint) call this so per-pipeline stats still see
        their traffic.
        """
        with self._lock:
            counters = self._counter(name)
            counters["validations"] += validations
            counters["rows_validated"] += n_rows

    def repair(
        self,
        name: str,
        table: Table,
        report: ValidationReport | None = None,
        iterations: int = 1,
    ) -> tuple[Table, RepairSummary]:
        """Repair flagged cells of one batch on the named pipeline."""
        repaired, summary = self.get(name).repair(table, report=report, iterations=iterations)
        with self._lock:
            self._counter(name)["repairs"] += 1
        return repaired, summary

    def submit(self, name: str, table: Table) -> "Future[ValidationReport]":
        """Queue one batch for validation on the thread pool."""
        return self._pool.submit(self.validate, name, table)

    def submit_many(
        self, requests: Iterable[tuple[str, Table]]
    ) -> "list[Future[ValidationReport]]":
        """Queue many (pipeline, batch) pairs; returns one future each."""
        return [self.submit(name, table) for name, table in requests]

    def validate_many(self, requests: Iterable[tuple[str, Table]]) -> list[ValidationReport]:
        """Validate many (pipeline, batch) pairs concurrently.

        Results are returned in request order; the NumPy kernels release
        the GIL in their matmuls, so distinct batches overlap on
        multicore hosts.
        """
        return [future.result() for future in self.submit_many(requests)]

    # -- lifecycle ---------------------------------------------------------
    def _counter(self, name: str) -> dict[str, int]:
        return self._counters.setdefault(name, _fresh_counters())

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "registered": len(set(self._sources) | set(self._entries)),
                "resident": len(self._entries),
                "loads": self.n_loads,
                "evictions": self.n_evictions,
                "hits": sum(e.hits for e in self._entries.values()),
                "validations": sum(c["validations"] for c in self._counters.values()),
                "repairs": sum(c["repairs"] for c in self._counters.values()),
                "rows_validated": sum(c["rows_validated"] for c in self._counters.values()),
            }

    def pipeline_stats(self) -> dict[str, dict]:
        """Per-pipeline detail: residency plus lifetime counters."""
        with self._lock:
            names = set(self._sources) | set(self._entries) | set(self._counters)
            detail: dict[str, dict] = {}
            for name in sorted(names):
                entry = self._entries.get(name)
                source = entry.source if entry is not None else self._sources.get(name)
                detail[name] = {
                    "resident": entry is not None,
                    "pinned": bool(entry is not None and entry.pinned),
                    "hits": entry.hits if entry is not None else 0,
                    "source": None if source is None else str(source),
                    **self._counters.get(name, _fresh_counters()),
                }
            return detail

    def stats_snapshot(self) -> ServiceStats:
        """Aggregate + per-pipeline stats as one wire-encodable object."""
        with self._lock:
            return ServiceStats(pipelines=self.pipeline_stats(), **self.stats())

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ValidationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
