"""Neural-network substrate: autograd tensors, modules, layers, optimizers.

This package stands in for PyTorch in the reproduction (DESIGN.md §1) —
a reverse-mode autodiff engine and the module/optimizer machinery the
DQuaG model is built on.
"""

from repro.nn.tensor import Tensor, Parameter, no_grad, is_grad_enabled
from repro.nn.module import Module
from repro.nn.layers import Linear, MLP, Dropout, LayerNorm, Sequential, Identity
from repro.nn.optim import Optimizer, SGD, Adam
from repro.nn.serialization import save_module, load_into_module, save_state, load_state
from repro.nn import functional
from repro.nn import init

__all__ = [
    "Tensor",
    "Parameter",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "Linear",
    "MLP",
    "Dropout",
    "LayerNorm",
    "Sequential",
    "Identity",
    "Optimizer",
    "SGD",
    "Adam",
    "save_module",
    "load_into_module",
    "save_state",
    "load_state",
    "functional",
    "init",
]
