"""Gradient-descent optimizers: SGD (with momentum) and Adam.

The paper trains DQuaG with Adam (§3.1.3); SGD is provided for tests and
ablations.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.tensor import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not (0 <= betas[0] < 1 and 0 <= betas[1] < 1):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.lr = lr
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self._step
        bias2 = 1.0 - beta2**self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
