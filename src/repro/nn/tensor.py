"""A reverse-mode automatic-differentiation engine on NumPy arrays.

This module replaces PyTorch as the numerical substrate of the
reproduction (see DESIGN.md §1).  :class:`Tensor` wraps a ``numpy``
array, records the operations applied to it, and :meth:`Tensor.backward`
propagates gradients through the recorded graph in reverse topological
order.

Supported surface (everything the GNN stack needs):

* elementwise arithmetic with full NumPy broadcasting,
* (batched) matrix multiplication,
* reductions (``sum``, ``mean``, ``max``) with axis/keepdims,
* shape ops (``reshape``, ``transpose``, ``swapaxes``, slicing,
  ``concatenate``, ``stack``, ``broadcast_to``),
* activations (``relu``, ``leaky_relu``, ``elu``, ``sigmoid``, ``tanh``,
  ``exp``, ``log``, ``sqrt``, ``softmax``),
* ``detach`` and the :func:`no_grad` context manager.

Gradients of every primitive are verified against central finite
differences in ``tests/test_nn_autograd.py``.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "Parameter", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Disable graph recording inside the ``with`` block."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations are currently being recorded."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast axes."""
    if grad.shape == shape:
        return grad
    # Sum away leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were size-1 in the original shape.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _is_fancy_index(index) -> bool:
    """True when ``index`` uses advanced (array/boolean) indexing."""
    items = index if isinstance(index, tuple) else (index,)
    return any(isinstance(item, (np.ndarray, list)) for item in items)


class Tensor:
    """A NumPy-backed tensor with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64`` unless already a
        floating NumPy array.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        name: str | None = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        if not isinstance(data, np.ndarray) or not np.issubdtype(data.dtype, np.floating):
            data = np.asarray(data, dtype=np.float64)
        self.data: np.ndarray = data
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward = _backward
        self._parents = _parents if self.requires_grad or _parents else ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{flag}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but severed from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(other) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        return Tensor(np.asarray(other, dtype=np.float64))

    @classmethod
    def _make(
        cls,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = cls(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (only valid implicitly for scalars in
        spirit, but an explicit seed of any matching shape is accepted).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(f"seed gradient shape {grad.shape} != tensor shape {self.data.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(-grad)

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data**2))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log composition")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data
        a, b = self, other

        def backward(grad: np.ndarray) -> None:
            if b.data.ndim == 1:
                # (..., n) = (..., n, m) @ (m,)
                a._accumulate(np.expand_dims(grad, -1) * b.data)
                b._accumulate((np.expand_dims(grad, -1) * a.data).sum(axis=tuple(range(grad.ndim))))
                return
            if a.data.ndim == 1:
                # (..., k) = (m,) @ (..., m, k)
                a._accumulate(_unbroadcast(np.expand_dims(grad, -2) @ np.swapaxes(b.data, -1, -2), a.data.shape))
                b._accumulate(np.expand_dims(a.data, -1) @ np.expand_dims(grad, -2))
                return
            a._accumulate(grad @ np.swapaxes(b.data, -1, -2))
            b._accumulate(np.swapaxes(a.data, -1, -2) @ grad)

        return Tensor._make(out_data, (self, other), backward)

    def __rmatmul__(self, other) -> "Tensor":
        return self._coerce(other).__matmul__(self)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.mean(axis=axis, keepdims=keepdims)
        scale = self.data.size / max(out_data.size, 1)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape) / scale)

        return Tensor._make(out_data, (self,), backward)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                out = np.expand_dims(out, axis=axis)
            mask = (self.data == out).astype(self.data.dtype)
            # Split gradient evenly among ties (matches subgradient convention).
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(np.broadcast_to(g, self.data.shape) * mask / counts)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape operations
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        out_data = self.data.transpose(axes)
        inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        out_data = self.data.swapaxes(axis1, axis2)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.swapaxes(axis1, axis2))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        fancy = _is_fancy_index(index)

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            if fancy:
                # Advanced indexing may repeat positions; scatter-add.
                np.add.at(full, index, grad)
            else:
                full[index] += grad
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    def expand_dims(self, axis: int) -> "Tensor":
        out_data = np.expand_dims(self.data, axis)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.squeeze(grad, axis=axis))

        return Tensor._make(out_data, (self,), backward)

    def squeeze(self, axis: int) -> "Tensor":
        out_data = np.squeeze(self.data, axis=axis)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.expand_dims(grad, axis=axis))

        return Tensor._make(out_data, (self,), backward)

    def broadcast_to(self, shape: tuple[int, ...]) -> "Tensor":
        out_data = np.broadcast_to(self.data, shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, original))

        return Tensor._make(out_data.copy(), (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise non-linearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / np.maximum(out_data, 1e-12))

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, negative_slope * self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.where(mask, 1.0, negative_slope))

        return Tensor._make(out_data, (self,), backward)

    def elu(self, alpha: float = 1.0) -> "Tensor":
        mask = self.data > 0
        expm1 = np.expm1(np.minimum(self.data, 0.0))
        out_data = np.where(mask, self.data, alpha * expm1)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.where(mask, 1.0, alpha * (expm1 + 1.0)))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            # d softmax = s * (grad - sum(grad * s))
            inner = (grad * out_data).sum(axis=axis, keepdims=True)
            self._accumulate(out_data * (grad - inner))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Static constructors / combinators
    # ------------------------------------------------------------------
    @staticmethod
    def concatenate(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._coerce(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

        return Tensor._make(out_data, tuple(tensors), backward)

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._coerce(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            for i, tensor in enumerate(tensors):
                tensor._accumulate(np.take(grad, i, axis=axis))

        return Tensor._make(out_data, tuple(tensors), backward)

    @staticmethod
    def where(condition: np.ndarray, a: "Tensor", b: "Tensor") -> "Tensor":
        a, b = Tensor._coerce(a), Tensor._coerce(b)
        condition = np.asarray(condition, dtype=bool)
        out_data = np.where(condition, a.data, b.data)

        def backward(grad: np.ndarray) -> None:
            a._accumulate(grad * condition)
            b._accumulate(grad * ~condition)

        return Tensor._make(out_data, (a, b), backward)

    @staticmethod
    def zeros(shape: tuple[int, ...], requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(shape: tuple[int, ...], requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)


class Parameter(Tensor):
    """A tensor flagged as trainable; modules auto-register these."""

    __slots__ = ()

    def __init__(self, data, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)
        # Parameters are leaves even when created inside no_grad blocks.
        self.requires_grad = True
