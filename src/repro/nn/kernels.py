"""Workspace-backed buffer reuse for compiled inference kernels.

Compiled kernels (see ``export_kernel()`` on layers and GNN convs) are
allocation-bound on large batches: a (10k, 18, 64) float64 temporary is
~92 MB, and a fresh mmap per op costs more in page faults than the GEMM
it feeds. A :class:`Workspace` hands kernels named, reusable scratch
arrays instead — the first chunk pays the allocations, every later
chunk (and every later call) runs in warmed buffers.

Kernels accept ``ws=None`` and then fall back to plain ``np.empty``, so
exported kernels remain self-contained callables.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Workspace", "buffer"]


class Workspace:
    """Named scratch buffers, grown on demand and reused across calls.

    Buffers are keyed by caller-chosen identifiers (layer identity +
    role); a request with a larger element count reallocates, a smaller
    one returns a reshaped view of the existing capacity. Not
    thread-safe — use one workspace per thread (the inference engine
    keeps them thread-local).
    """

    def __init__(self) -> None:
        self._buffers: dict[object, np.ndarray] = {}

    def get(self, key: object, shape: tuple[int, ...]) -> np.ndarray:
        """A float64 C-contiguous scratch array of ``shape``.

        Contents are unspecified — callers must fully overwrite it.
        """
        return self.acquire(key, shape)[0]

    def acquire(self, key: object, shape: tuple[int, ...]) -> tuple[np.ndarray, bool]:
        """Like :meth:`get`, also reporting whether the buffer is fresh.

        Returns ``(array, fresh)`` — ``fresh`` is True when the backing
        storage was (re)allocated on this call. A non-fresh buffer still
        holds whatever the same key's previous (equal-or-larger) request
        wrote, letting callers skip re-writing constant regions (see
        ``InferenceEngine._node_inputs``).
        """
        size = int(np.prod(shape))
        flat = self._buffers.get(key)
        fresh = flat is None or flat.size < size
        if fresh:
            flat = np.empty(size, dtype=np.float64)
            self._buffers[key] = flat
        return flat[:size].reshape(shape), fresh

    def nbytes(self) -> int:
        return sum(buf.nbytes for buf in self._buffers.values())


def buffer(ws: Workspace | None, key: object, shape: tuple[int, ...]) -> np.ndarray:
    """Workspace scratch when available, fresh array otherwise."""
    if ws is None:
        return np.empty(shape, dtype=np.float64)
    return ws.get(key, shape)
