"""Stateless functional interface over :class:`repro.nn.tensor.Tensor`.

Mirrors the subset of ``torch.nn.functional`` the GNN stack uses, plus the
loss primitives of the paper (§3.1.2).
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = [
    "relu",
    "leaky_relu",
    "elu",
    "sigmoid",
    "tanh",
    "softmax",
    "dropout",
    "mse_loss",
    "weighted_mse_loss",
    "masked_softmax",
    "l2_regularization",
]


def relu(x: Tensor) -> Tensor:
    return x.relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    return x.leaky_relu(negative_slope)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    return x.elu(alpha)


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return x.softmax(axis=axis)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: scales kept activations by ``1/(1-p)``."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    keep = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    return x * Tensor(keep)


def mse_loss(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error over all elements (the repair loss, §3.1.2)."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target.detach()
    return (diff * diff).mean()


def weighted_mse_loss(
    prediction: Tensor,
    target: Tensor | np.ndarray,
    sample_weights: np.ndarray,
) -> Tensor:
    """Per-sample weighted MSE — the validation-decoder loss (§3.1.2).

    ``sample_weights`` has shape ``(batch,)`` and is treated as a constant
    (no gradient flows into the weighting scheme).
    """
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target.detach()
    per_sample = (diff * diff).mean(axis=tuple(range(1, prediction.ndim)))
    weights = np.asarray(sample_weights, dtype=np.float64)
    if weights.shape != per_sample.shape:
        raise ValueError(f"weights shape {weights.shape} != per-sample loss shape {per_sample.shape}")
    return (per_sample * Tensor(weights)).mean()


def masked_softmax(scores: Tensor, mask: np.ndarray, axis: int = -1) -> Tensor:
    """Softmax over ``axis`` restricted to positions where ``mask`` is true.

    Used by GAT attention: disconnected feature pairs receive a large
    negative additive bias before normalization.
    """
    bias = np.where(np.asarray(mask, dtype=bool), 0.0, -1e9)
    return (scores + Tensor(bias)).softmax(axis=axis)


def l2_regularization(parameters, coefficient: float) -> Tensor:
    """Sum of squared parameter norms scaled by ``coefficient``."""
    total: Tensor | None = None
    for param in parameters:
        term = (param * param).sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return total * coefficient
