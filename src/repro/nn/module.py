"""Module base class with automatic parameter/submodule registration.

A thin re-creation of ``torch.nn.Module``: assigning a
:class:`~repro.nn.tensor.Parameter` or another :class:`Module` to an
attribute registers it, ``parameters()`` walks the tree, and
``state_dict``/``load_state_dict`` expose flat name→array mappings for
serialization.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.tensor import Parameter

__all__ = ["Module"]


class Module:
    """Base class for all neural-network components."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    # -- registration ---------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Register a submodule that is not a direct attribute (e.g. list items)."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # -- traversal --------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters in this module and its submodules."""
        yield from self._parameters.values()
        for module in self._modules.values():
            yield from module.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- training state ----------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    # -- state dict ---------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping of dotted parameter names to array copies."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load arrays produced by :meth:`state_dict` (strict matching)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} != {param.data.shape}")
            param.data = value.copy()

    # -- call protocol --------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
