"""Save/load module state dicts as ``.npz`` archives with a JSON manifest.

Archives carry a ``format_version`` so weight files written before a
breaking change to model/preprocessing semantics are rejected with a
clear error instead of loading into a pipeline whose numerics silently
disagree with the calibration stored next to them.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.exceptions import SerializationError
from repro.nn.module import Module

__all__ = ["save_state", "load_state", "save_module", "load_into_module", "FORMAT_VERSION"]

_MANIFEST_KEY = "__manifest__"

#: Archive format history:
#: 1 — (implicit) seed archives: weights + metadata, preprocessor refit on load.
#: 2 — runtime era: preprocessor state persisted in metadata; pipelines
#:     reload standalone. Pre-runtime archives must be regenerated.
FORMAT_VERSION = 2

#: Oldest format this build can still load faithfully.
MIN_SUPPORTED_FORMAT = 2


def save_state(state: dict[str, np.ndarray], path: str | Path, metadata: dict | None = None) -> None:
    """Persist a flat name→array mapping (plus optional JSON metadata)."""
    path = Path(path)
    payload = dict(state)
    manifest = {
        "format_version": FORMAT_VERSION,
        "names": sorted(state),
        "metadata": metadata or {},
    }
    payload[_MANIFEST_KEY] = np.frombuffer(json.dumps(manifest).encode("utf-8"), dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **payload)


def load_state(path: str | Path) -> tuple[dict[str, np.ndarray], dict]:
    """Load a state dict saved with :func:`save_state`; returns (state, metadata)."""
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no such state file: {path}")
    with np.load(path, allow_pickle=False) as archive:
        if _MANIFEST_KEY not in archive:
            raise SerializationError(f"{path} is not a repro state archive (missing manifest)")
        manifest = json.loads(bytes(archive[_MANIFEST_KEY]).decode("utf-8"))
        version = manifest.get("format_version", 1)
        if version < MIN_SUPPORTED_FORMAT:
            raise SerializationError(
                f"{path} uses archive format v{version}, but this build requires "
                f">= v{MIN_SUPPORTED_FORMAT}: pre-runtime archives do not persist "
                "preprocessor state and would load inconsistently. Retrain and "
                "re-save the pipeline."
            )
        if version > FORMAT_VERSION:
            raise SerializationError(
                f"{path} uses archive format v{version}, newer than this build's "
                f"v{FORMAT_VERSION}; upgrade the library to load it."
            )
        state = {name: archive[name] for name in manifest["names"]}
    return state, manifest.get("metadata", {})


def save_module(module: Module, path: str | Path, metadata: dict | None = None) -> None:
    """Persist a module's parameters."""
    save_state(module.state_dict(), path, metadata=metadata)


def load_into_module(module: Module, path: str | Path) -> dict:
    """Load parameters into ``module`` in place; returns stored metadata."""
    state, metadata = load_state(path)
    try:
        module.load_state_dict(state)
    except (KeyError, ValueError) as exc:
        raise SerializationError(f"state in {path} does not match module: {exc}") from exc
    return metadata
