"""Core neural-network layers: Linear, MLP, Dropout, LayerNorm, Sequential."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.exceptions import KernelExportError
from repro.nn import functional as F
from repro.nn import init
from repro.nn.kernels import Workspace, buffer
from repro.nn.module import Module
from repro.nn.tensor import Parameter, Tensor
from repro.utils.rng import ensure_rng

__all__ = ["Linear", "MLP", "Dropout", "LayerNorm", "Sequential", "Identity", "ACTIVATIONS", "NUMPY_ACTIVATIONS"]

ACTIVATIONS: dict[str, Callable[[Tensor], Tensor]] = {
    "relu": F.relu,
    "leaky_relu": F.leaky_relu,
    "elu": F.elu,
    "sigmoid": F.sigmoid,
    "tanh": F.tanh,
    "identity": lambda x: x,
}

#: pure-NumPy twins of :data:`ACTIVATIONS`, numerically identical to the
#: Tensor ops so compiled kernels reproduce autograd forward passes
#: exactly (``max(x, 0)`` equals ``x * (x > 0)``; ``max(x, slope·x)``
#: equals the leaky-ReLU branch select for slope < 1; ``max(x,
#: expm1(min(x, 0)))`` equals the ELU branch select). These operate
#: IN PLACE on ``x`` — callers pass kernel-owned scratch arrays.
NUMPY_ACTIVATIONS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "relu": lambda x: np.maximum(x, 0.0, out=x),
    "leaky_relu": lambda x: np.maximum(x, np.multiply(x, 0.2), out=x),
    "elu": lambda x: np.maximum(x, np.expm1(np.minimum(x, 0.0)), out=x),
    "sigmoid": lambda x: np.reciprocal(np.add(np.exp(np.negative(x, out=x), out=x), 1.0, out=x), out=x),
    "tanh": lambda x: np.tanh(x, out=x),
    "identity": lambda x: x,
}


def resolve_activation(activation: str | Callable[[Tensor], Tensor]) -> Callable[[Tensor], Tensor]:
    """Map an activation name to its function (callables pass through)."""
    if callable(activation):
        return activation
    try:
        return ACTIVATIONS[activation]
    except KeyError:
        raise ValueError(f"unknown activation {activation!r}; choose from {sorted(ACTIVATIONS)}") from None


class Identity(Module):
    """No-op module, useful as a placeholder."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Linear(Module):
    """Affine map ``y = x W + b`` applied to the last axis."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(f"features must be positive, got ({in_features}, {out_features})")
        generator = ensure_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), generator), name="weight")
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def export_kernel(self) -> "Callable[[np.ndarray, Workspace | None], np.ndarray]":
        """Snapshot the weights into a pure-NumPy forward function.

        The kernel writes into (and returns) workspace scratch when a
        :class:`~repro.nn.kernels.Workspace` is supplied, so repeated
        calls reuse memory instead of re-faulting fresh pages.
        """
        weight = self.weight.data.copy()
        bias = None if self.bias is None else self.bias.data.copy()
        key = (id(self), "linear")

        def kernel(x: np.ndarray, ws: Workspace | None = None) -> np.ndarray:
            out = np.matmul(x, weight, out=buffer(ws, key, x.shape[:-1] + (weight.shape[1],)))
            if bias is not None:
                out += bias
            return out

        return kernel

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.5, rng: int | np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = ensure_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self._rng, training=self.training)


class LayerNorm(Module):
    """Layer normalization over the last axis with learnable scale/shift."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(np.ones(normalized_shape), name="gamma")
        self.beta = Parameter(np.zeros(normalized_shape), name="beta")

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / (var + self.eps).sqrt()
        return normalized * self.gamma + self.beta


class Sequential(Module):
    """Run modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._items: list[Module] = []
        for i, module in enumerate(modules):
            self.register_module(f"layer{i}", module)
            self._items.append(module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._items:
            x = module(x)
        return x

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)


class MLP(Module):
    """Multi-layer perceptron with configurable hidden sizes and activation.

    ``sizes = [in, h1, ..., out]``; the activation is applied between
    layers (not after the last one unless ``final_activation`` is set).
    """

    def __init__(
        self,
        sizes: Sequence[int],
        activation: str | Callable[[Tensor], Tensor] = "relu",
        final_activation: str | Callable[[Tensor], Tensor] | None = None,
        dropout: float = 0.0,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if len(sizes) < 2:
            raise ValueError(f"MLP needs at least [in, out] sizes, got {list(sizes)}")
        generator = ensure_rng(rng)
        self.sizes = list(sizes)
        self._activation = resolve_activation(activation)
        self._final_activation = resolve_activation(final_activation) if final_activation else None
        # Keep the names around: export_kernel() needs the NumPy twin of
        # each activation, which only name-based lookups can provide.
        self._activation_name = activation if isinstance(activation, str) else None
        self._final_activation_name = final_activation if isinstance(final_activation, str) else None
        self._dropout_p = dropout
        self._layers: list[Linear] = []
        self._dropouts: list[Dropout | None] = []
        for i, (n_in, n_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            layer = Linear(n_in, n_out, rng=generator)
            self.register_module(f"linear{i}", layer)
            self._layers.append(layer)
            if dropout > 0.0 and i < len(sizes) - 2:
                drop = Dropout(dropout, rng=generator)
                self.register_module(f"dropout{i}", drop)
                self._dropouts.append(drop)
            else:
                self._dropouts.append(None)

    def forward(self, x: Tensor) -> Tensor:
        last = len(self._layers) - 1
        for i, layer in enumerate(self._layers):
            x = layer(x)
            if i < last:
                x = self._activation(x)
                if self._dropouts[i] is not None:
                    x = self._dropouts[i](x)
        if self._final_activation is not None:
            x = self._final_activation(x)
        return x

    def export_kernel(self) -> Callable[[np.ndarray], np.ndarray]:
        """Compile the MLP into a pure-NumPy inference function.

        Dropout is an inference no-op, but a non-zero probability means
        the training-mode forward differs from the exported kernel, so a
        configured dropout is rejected rather than silently dropped.
        """
        if self._dropout_p > 0.0:
            raise KernelExportError("cannot export an MLP with dropout to an inference kernel")
        if self._activation_name is None or self._activation_name not in NUMPY_ACTIVATIONS:
            raise KernelExportError(
                f"activation {self._activation_name!r} has no NumPy twin; "
                f"choose from {sorted(NUMPY_ACTIVATIONS)}"
            )
        if self._final_activation is not None and (
            self._final_activation_name is None or self._final_activation_name not in NUMPY_ACTIVATIONS
        ):
            raise KernelExportError(
                f"final activation {self._final_activation_name!r} has no NumPy twin"
            )
        linears = [layer.export_kernel() for layer in self._layers]
        activation = NUMPY_ACTIVATIONS[self._activation_name]
        final = None if self._final_activation is None else NUMPY_ACTIVATIONS[self._final_activation_name]
        last = len(linears) - 1

        def kernel(x: np.ndarray, ws: Workspace | None = None) -> np.ndarray:
            for i, linear in enumerate(linears):
                x = linear(x, ws)
                if i < last:
                    x = activation(x)  # in place on the linear's scratch
            if final is not None:
                x = final(x)
            return x

        return kernel
