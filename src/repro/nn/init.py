"""Weight initialization schemes (Glorot/Xavier and Kaiming/He)."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "kaiming_uniform", "zeros", "uniform"]


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot normal: N(0, gain^2 * 2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator, negative_slope: float = 0.0) -> np.ndarray:
    """He uniform for (leaky-)ReLU fan-in scaling."""
    fan_in, _ = _fans(shape)
    gain = np.sqrt(2.0 / (1.0 + negative_slope**2))
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def uniform(shape: tuple[int, ...], rng: np.random.Generator, low: float = -0.1, high: float = 0.1) -> np.ndarray:
    return rng.uniform(low, high, size=shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[:-1]))
    fan_out = int(shape[-1])
    return fan_in, fan_out
