"""Tests for feature-graph construction: graph container, statistical
inference, and the LLM-protocol providers."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data import ColumnKind, ColumnSpec, Table, TableSchema
from repro.exceptions import GraphConstructionError
from repro.graph import (
    FeatureGraph,
    FeatureGraphBuilder,
    HybridProvider,
    KnowledgeBaseProvider,
    StatisticalProvider,
    StatisticalRelationshipInference,
    build_prompt,
    correlation_ratio,
    cramers_v,
    parse_relationships_json,
)


@pytest.fixture
def correlated_table() -> Table:
    """x and y strongly dependent; z independent noise; c determined by x."""
    rng = np.random.default_rng(0)
    n = 600
    x = rng.normal(size=n)
    y = 2.0 * x + rng.normal(scale=0.1, size=n)
    z = rng.normal(size=n)
    c = np.where(x > 0, "pos", "neg")
    schema = TableSchema(
        [
            ColumnSpec("x", ColumnKind.NUMERIC),
            ColumnSpec("y", ColumnKind.NUMERIC),
            ColumnSpec("z", ColumnKind.NUMERIC),
            ColumnSpec("c", ColumnKind.CATEGORICAL),
        ]
    )
    return Table(schema, {"x": x, "y": y, "z": z, "c": c})


class TestFeatureGraph:
    def test_basic_construction(self):
        g = FeatureGraph(["a", "b", "c"], [("a", "b")])
        assert g.n_nodes == 3 and g.n_edges == 1
        assert g.has_edge("b", "a")  # undirected

    def test_unknown_feature_edge_rejected(self):
        g = FeatureGraph(["a", "b"])
        with pytest.raises(GraphConstructionError):
            g.add_edge("a", "zzz")

    def test_self_loop_rejected(self):
        g = FeatureGraph(["a", "b"])
        with pytest.raises(GraphConstructionError):
            g.add_edge("a", "a")

    def test_duplicate_features_rejected(self):
        with pytest.raises(GraphConstructionError):
            FeatureGraph(["a", "a"])

    def test_neighbors_and_degree(self):
        g = FeatureGraph(["a", "b", "c"], [("a", "b"), ("a", "c")])
        assert g.neighbors("a") == ["b", "c"]
        assert g.degree("a") == 2 and g.degree("b") == 1

    def test_adjacency_symmetry(self):
        g = FeatureGraph(["a", "b", "c"], [("a", "c")])
        adj = g.adjacency()
        np.testing.assert_array_equal(adj, adj.T)
        assert adj[0, 2] == 1.0 and adj[0, 1] == 0.0
        assert np.trace(adj) == 0.0

    def test_adjacency_self_loops(self):
        g = FeatureGraph(["a", "b"], [("a", "b")])
        assert np.trace(g.adjacency(self_loops=True)) == 2.0

    def test_normalized_adjacency_rows(self):
        g = FeatureGraph(["a", "b", "c"], [("a", "b"), ("b", "c")])
        norm = g.normalized_adjacency()
        np.testing.assert_array_equal(norm, norm.T)
        eigenvalues = np.linalg.eigvalsh(norm)
        assert eigenvalues.max() <= 1.0 + 1e-9

    def test_attention_mask_includes_self(self):
        g = FeatureGraph(["a", "b"], [])
        mask = g.attention_mask()
        assert mask[0, 0] and mask[1, 1] and not mask[0, 1]

    def test_isolated_connection_hub(self):
        g = FeatureGraph(["a", "b", "c", "d"], [("a", "b"), ("a", "c")])
        fixed = g.with_isolated_connected()
        assert fixed.degree("d") == 1
        assert fixed.has_edge("d", "a")  # hub = highest degree

    def test_no_isolates_is_noop(self):
        g = FeatureGraph(["a", "b"], [("a", "b")])
        assert g.with_isolated_connected() is g

    def test_dict_roundtrip(self):
        g = FeatureGraph(["a", "b", "c"], [("a", "b"), ("b", "c")])
        assert FeatureGraph.from_dict(g.to_dict()) == g

    def test_networkx_roundtrip(self):
        g = FeatureGraph(["a", "b", "c"], [("a", "c")])
        g2 = FeatureGraph.from_networkx(g.to_networkx())
        assert g2.has_edge("a", "c") and g2.n_nodes == 3

    def test_density(self):
        g = FeatureGraph(["a", "b", "c"], [("a", "b")])
        assert g.density() == pytest.approx(1 / 3)


class TestAssociationMeasures:
    def test_cramers_v_perfect_dependence(self):
        a = np.array(["x", "x", "y", "y"] * 50, dtype=object)
        assert cramers_v(a, a.copy()) > 0.9

    def test_cramers_v_independence(self):
        rng = np.random.default_rng(1)
        a = np.array(rng.choice(["x", "y"], size=2000), dtype=object)
        b = np.array(rng.choice(["p", "q"], size=2000), dtype=object)
        assert cramers_v(a, b) < 0.1

    def test_cramers_v_handles_missing(self):
        a = np.array(["x", None, "y"], dtype=object)
        b = np.array(["p", "q", None], dtype=object)
        assert cramers_v(a, b) == 0.0  # one complete pair left -> degenerate

    def test_correlation_ratio_strong(self):
        cats = np.array(["a"] * 100 + ["b"] * 100, dtype=object)
        values = np.concatenate([np.zeros(100), np.ones(100)])
        assert correlation_ratio(cats, values) > 0.95

    def test_correlation_ratio_none(self):
        rng = np.random.default_rng(2)
        cats = np.array(rng.choice(["a", "b"], size=1000), dtype=object)
        values = rng.normal(size=1000)
        assert correlation_ratio(cats, values) < 0.15

    def test_correlation_ratio_constant_values(self):
        cats = np.array(["a", "b"], dtype=object)
        assert correlation_ratio(cats, np.ones(2)) == 0.0


class TestStatisticalInference:
    def test_detects_strong_pairs_only(self, correlated_table):
        graph = StatisticalRelationshipInference(threshold=0.3).infer(correlated_table)
        assert graph.has_edge("x", "y")
        assert graph.has_edge("x", "c")
        assert not graph.has_edge("x", "z") or graph.degree("z") == 1  # z only via isolate-fix

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            StatisticalRelationshipInference(threshold=1.5)

    def test_max_degree_cap(self, correlated_table):
        inference = StatisticalRelationshipInference(threshold=0.0, max_degree=1)
        graph = inference.infer(correlated_table)
        assert max(graph.degree(n) for n in graph.features) <= 2  # +1 possible via isolate fix

    def test_scores_cover_all_pairs(self, correlated_table):
        scores = StatisticalRelationshipInference().score_pairs(correlated_table)
        assert len(scores) == 6  # C(4,2)
        assert all(0.0 <= s.score <= 1.0 + 1e-9 for s in scores)

    def test_deterministic_with_sampling(self, correlated_table):
        inference = StatisticalRelationshipInference(sample_limit=100, seed=5)
        assert inference.infer(correlated_table) == inference.infer(correlated_table)


class TestLLMProtocol:
    def test_prompt_contains_all_sections(self, correlated_table):
        prompt = build_prompt(
            correlated_table.schema.names,
            correlated_table.schema.descriptions,
            [correlated_table.row(0)],
        )
        assert "Feature Names:" in prompt
        assert '"relationships"' in prompt
        assert "x" in prompt

    def test_parse_valid_payload(self):
        payload = json.dumps({"relationships": [{"feature1": "a", "feature2": "b"}, ["b", "c"]]})
        edges = parse_relationships_json(payload, ["a", "b", "c"])
        assert edges == [("a", "b"), ("b", "c")]

    def test_parse_invalid_json(self):
        with pytest.raises(GraphConstructionError):
            parse_relationships_json("not json", ["a"])

    def test_parse_missing_key(self):
        with pytest.raises(GraphConstructionError):
            parse_relationships_json(json.dumps({"edges": []}), ["a"])

    def test_parse_unknown_feature(self):
        payload = json.dumps({"relationships": [{"feature1": "a", "feature2": "zzz"}]})
        with pytest.raises(GraphConstructionError):
            parse_relationships_json(payload, ["a", "b"])

    def test_parse_self_pair(self):
        payload = json.dumps({"relationships": [{"feature1": "a", "feature2": "a"}]})
        with pytest.raises(GraphConstructionError):
            parse_relationships_json(payload, ["a"])

    def test_knowledge_provider_replays_registration(self, correlated_table):
        provider = KnowledgeBaseProvider()
        provider.register(correlated_table.schema.names, [("x", "y")])
        graph = FeatureGraphBuilder(provider).build(correlated_table)
        assert graph.has_edge("x", "y")

    def test_knowledge_provider_unknown_schema(self, correlated_table):
        provider = KnowledgeBaseProvider()
        with pytest.raises(GraphConstructionError):
            FeatureGraphBuilder(provider).build(correlated_table)

    def test_statistical_provider_end_to_end(self, correlated_table):
        graph = FeatureGraphBuilder(StatisticalProvider()).build(correlated_table)
        assert graph.has_edge("x", "y")
        assert not graph.isolated_features()

    def test_hybrid_provider_unions_edges(self, correlated_table):
        knowledge = KnowledgeBaseProvider()
        # Register a semantic edge statistics would never find (z is noise).
        knowledge.register(correlated_table.schema.names, [("z", "c")])
        graph = FeatureGraphBuilder(HybridProvider(knowledge)).build(correlated_table)
        assert graph.has_edge("z", "c")  # knowledge edge
        assert graph.has_edge("x", "y")  # statistical edge

    def test_hybrid_provider_without_knowledge_falls_back(self, correlated_table):
        graph = FeatureGraphBuilder(HybridProvider(KnowledgeBaseProvider())).build(correlated_table)
        assert graph.has_edge("x", "y")

    def test_builder_empty_table_rejected(self, correlated_table):
        empty = correlated_table.take(np.array([], dtype=int))
        with pytest.raises(GraphConstructionError):
            FeatureGraphBuilder(StatisticalProvider()).build(empty)

    def test_builder_sample_size_respected(self, correlated_table):
        captured = {}

        class SpyProvider:
            def complete(self, prompt: str, table: Table) -> str:
                captured["prompt"] = prompt
                return json.dumps({"relationships": [{"feature1": "x", "feature2": "y"}]})

        FeatureGraphBuilder(SpyProvider(), sample_size=10).build(correlated_table)
        # 10 sampled rows serialized into the prompt
        assert captured["prompt"].count('"x"') >= 1
